"""Tests for physical-connectivity analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import expected_mean_degree
from repro.metrics.analytics import engine_for_world

from .helpers import line_positions, make_world


def components(world):
    return engine_for_world(world).components(world)


def connectivity_stats(world):
    return engine_for_world(world).connectivity_stats(world)


def reachable_pair_fraction(world):
    return engine_for_world(world).reachable_pair_fraction(world)


class TestComponents:
    def test_single_component_line(self):
        _, world, _ = make_world(line_positions(5, spacing=8.0))
        comps = components(world)
        assert len(comps) == 1 and len(comps[0]) == 5

    def test_two_islands(self):
        _, world, _ = make_world([[0, 0], [8, 0], [500, 500], [508, 500]])
        comps = components(world)
        assert [len(c) for c in comps] == [2, 2]

    def test_isolated_nodes(self):
        _, world, _ = make_world([[0, 0], [300, 300], [600, 600]])
        stats = connectivity_stats(world)
        assert stats["components"] == 3
        assert stats["isolated"] == 3
        assert stats["largest_component"] == 1

    def test_largest_first(self):
        _, world, _ = make_world(
            line_positions(4, spacing=8.0) + [[700, 700], [708, 700]]
        )
        comps = components(world)
        assert len(comps[0]) == 4 and len(comps[1]) == 2

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_components_partition_nodes(self, seed):
        pts = np.random.default_rng(seed).random((15, 2)) * 60
        _, world, _ = make_world(pts, radio_range=12)
        comps = components(world)
        all_nodes = sorted(int(i) for c in comps for i in c)
        assert all_nodes == list(range(15))


class TestReachablePairs:
    def test_fully_connected(self):
        _, world, _ = make_world(line_positions(4, spacing=8.0))
        assert reachable_pair_fraction(world) == 1.0

    def test_fully_disconnected(self):
        _, world, _ = make_world([[0, 0], [300, 300], [600, 600]])
        assert reachable_pair_fraction(world) == 0.0

    def test_half_split(self):
        _, world, _ = make_world([[0, 0], [8, 0], [500, 500], [508, 500]])
        # 2 components of 2: 4 reachable ordered pairs of 12 total
        assert reachable_pair_fraction(world) == pytest.approx(4 / 12)


class TestNoCachePollution:
    """Analytics must observe the run, not perturb its caches.

    ``connectivity_stats`` used to call ``world.hops_from`` once per
    start node, evicting the protocol-hot entries (servent connection
    maintenance, routing oracle) from the topology's LRU distance
    cache.  It now runs on the uncached CSR kernel path.
    """

    def test_connectivity_stats_leaves_dist_cache_alone(self):
        pts = np.random.default_rng(7).random((30, 2)) * 80
        _, world, _ = make_world(pts, radio_range=12)
        # Protocol-hot state: a few memoized BFS vectors.
        for src in (0, 5, 9):
            world.hops_from(src)
        cached_before = set(world.topology._dist)
        hits_before = world.topology.dist_cache_hits

        connectivity_stats(world)
        components(world)
        reachable_pair_fraction(world)

        # Neither the cache contents nor the hit counter moved.
        assert set(world.topology._dist) == cached_before
        assert world.topology.dist_cache_hits == hits_before
        # The hot entries are still hits.
        world.hops_from(5)
        assert world.topology.dist_cache_hits == hits_before + 1


class TestExpectedDegree:
    def test_paper_scenarios(self):
        # 50 nodes, 100x100, r=10: ~1.54 expected neighbours -- sparse!
        assert expected_mean_degree(50, 100, 100, 10) == pytest.approx(1.539, abs=0.01)
        # 150 nodes: ~4.68
        assert expected_mean_degree(150, 100, 100, 10) == pytest.approx(4.68, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_mean_degree(0, 100, 100, 10)
        with pytest.raises(ValueError):
            expected_mean_degree(10, 100, 100, 0)

    def test_approximates_measured_degree(self):
        rng = np.random.default_rng(3)
        pts = rng.random((200, 2)) * 100
        _, world, _ = make_world(pts, radio_range=10)
        measured = connectivity_stats(world)["mean_degree"]
        predicted = expected_mean_degree(200, 100, 100, 10)
        # edge effects push measured below predicted, but same ballpark
        assert 0.5 * predicted < measured <= predicted * 1.1
