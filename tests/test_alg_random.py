"""Tests for the Random algorithm: long-range last connection."""

from repro.core import ConnectOffer, P2pConfig

from .helpers import line_positions
from .overlay_helpers import build_overlay


def two_clusters_with_chain():
    """Two 3-cliques joined by a chain of relay nodes.

    Members in each clique can reach the far clique only through
    high-hop paths, so random connections have far candidates.
    """
    pts = []
    pts += [[10, 10], [15, 10], [10, 15]]  # clique A (0,1,2)
    pts += [[10 + 8 * i, 30] for i in range(1, 8)]  # chain (3..9)
    pts += [[74, 10], [79, 10], [74, 15]]  # clique B (10,11,12)
    return pts


class TestRandomConnection:
    def test_last_slot_becomes_random(self):
        # Clique of 4: each node can fill 2 regular slots nearby, then
        # seeks a random connection (which will also be nearby here).
        pts = [[10, 10], [15, 10], [10, 15], [15, 15], [12, 12]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="random")
        overlay.start(queries=False)
        sim.run(until=600.0)
        with_random = [
            s for s in overlay.servents.values() if s.connections.has_random()
        ]
        assert len(with_random) >= 2

    def test_regular_slots_capped_at_max_minus_one(self):
        pts = [[10 + 3 * i, 10] for i in range(8)]
        sim, _, overlay, _ = build_overlay(pts, algorithm="random")
        overlay.start(queries=False)
        sim.run(until=400.0)
        for servent in overlay.servents.values():
            regular = [c for c in servent.connections if not c.random]
            # a node may hold 3 non-random conns only if others chose it
            # as THEIR random target; its own seeking stops at 2
            own_regular = [c for c in regular if c.initiator]
            assert len(own_regular) <= 2

    def test_farthest_offer_wins(self):
        sim, _, overlay, _ = build_overlay(
            line_positions(8, spacing=8.0), algorithm="random", seed=5
        )
        s0 = overlay.servents[0]
        alg = s0.algorithm
        alg._collecting = True
        alg._random_offers = [(2, 2), (6, 6), (4, 4)]
        sent = []
        s0.send = lambda peer, msg: sent.append((peer, msg))
        # Fill regular slots so _needs_random() is true.
        from repro.core import Connection

        s0.connections.add(Connection(peer=90))
        s0.connections.add(Connection(peer=91))
        alg._finish_random_collection()
        assert sent and sent[0][0] == 6  # farthest responder chosen

    def test_random_connection_flagged_on_both_ends(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15], [12, 12]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="random")
        overlay.start(queries=False)
        sim.run(until=600.0)
        for servent in overlay.servents.values():
            for conn in servent.connections:
                if conn.random and conn.initiator:
                    other = overlay.servents[conn.peer].connections.get(servent.nid)
                    assert other is not None and other.random

    def test_dropped_random_connection_is_replaced(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15], [12, 12]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="random")
        overlay.start(queries=False)
        sim.run(until=600.0)
        victim = next(
            (
                s
                for s in overlay.servents.values()
                if any(c.random and c.initiator for c in s.connections)
            ),
            None,
        )
        assert victim is not None
        rnd_peer = next(c.peer for c in victim.connections if c.random)
        victim.algorithm.close_connection(rnd_peer)
        assert not victim.connections.has_random()
        sim.run(until=sim.now + 900.0)
        assert victim.connections.has_random()

    def test_double_maxdist_allowance(self):
        cfg = P2pConfig()
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="random", config=cfg)
        alg = overlay.servents[0].algorithm
        from repro.core import Connection

        regular = Connection(peer=1)
        rand = Connection(peer=1, random=True)
        assert alg.allowed_distance(regular) == cfg.max_dist
        assert alg.allowed_distance(rand) == 2 * cfg.max_dist
