"""Tests for the newer CLI commands (sweep, map, reproduce, formats)."""

import json

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_algorithm(self, capsys):
        assert main(["sweep", "algorithm", "basic", "regular", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "basic" in out and "regular" in out and "answer_rate" in out

    def test_sweep_nodes(self, capsys):
        assert main(["sweep", "nodes", "10", "20", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "10" in out and "20" in out

    def test_sweep_rejects_bad_parameter(self):
        with pytest.raises(SystemExit):
            main(["sweep", "flux", "1"])


class TestMapCommand:
    def test_map_renders(self, capsys):
        assert main(["map", "--nodes", "12", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "+--" in out and "overlay" in out


class TestFigureFormats:
    ARGS = ["figure", "fig9", "--duration", "60", "--reps", "1", "--routing", "oracle"]

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exp_id"] == "fig9"

    def test_csv_output(self, capsys):
        assert main(self.ARGS + ["--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("exp_id,algorithm,series,index,value")

    def test_chart_and_compare(self, capsys):
        assert main(self.ARGS + ["--chart", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "|" in out  # chart axis


class TestReproduceCommand:
    def test_reproduce_subset(self, tmp_path, capsys):
        out_dir = str(tmp_path / "res")
        assert (
            main(
                [
                    "reproduce",
                    "--out",
                    out_dir,
                    "--figures",
                    "fig7",
                    "--duration",
                    "60",
                    "--reps",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "artifacts written" in out
        assert (tmp_path / "res" / "SUMMARY.md").exists()
