"""Tests for the newer CLI commands (sweep, map, reproduce, formats)."""

import json

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_algorithm(self, capsys):
        assert main(["sweep", "algorithm", "basic", "regular", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "basic" in out and "regular" in out and "answer_rate" in out

    def test_sweep_nodes(self, capsys):
        assert main(["sweep", "nodes", "10", "20", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "10" in out and "20" in out

    def test_sweep_rejects_bad_parameter(self):
        with pytest.raises(SystemExit):
            main(["sweep", "flux", "1"])


class TestMapCommand:
    def test_map_renders(self, capsys):
        assert main(["map", "--nodes", "12", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "+--" in out and "overlay" in out


class TestFigureFormats:
    ARGS = ["figure", "fig9", "--duration", "60", "--reps", "1", "--routing", "oracle"]

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exp_id"] == "fig9"

    def test_csv_output(self, capsys):
        assert main(self.ARGS + ["--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("exp_id,algorithm,series,index,value")

    def test_chart_and_compare(self, capsys):
        assert main(self.ARGS + ["--chart", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "|" in out  # chart axis


class TestReproduceCommand:
    def test_reproduce_subset(self, tmp_path, capsys):
        out_dir = str(tmp_path / "res")
        assert (
            main(
                [
                    "reproduce",
                    "--out",
                    out_dir,
                    "--figures",
                    "fig7",
                    "--duration",
                    "60",
                    "--reps",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "artifacts written" in out
        assert (tmp_path / "res" / "SUMMARY.md").exists()


class TestRunStats:
    ARGS = ["run", "--nodes", "12", "--duration", "40"]

    def test_stats_flag_prints_breakdown(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock breakdown" in out and "scenario.run" in out
        assert "counters" in out and "kernel.events_dispatched" in out

    def test_json_includes_obs(self, capsys):
        assert main(self.ARGS + ["--json", "--obs-interval", "10"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == 1
        assert len(data["obs"]["timeseries"]) == 4
        assert "manifest" in data["obs"]


class TestSweepJson:
    def test_sweep_json(self, capsys):
        assert (
            main(["sweep", "nodes", "10", "12", "--duration", "40", "--json"]) == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert [p["point"]["num_nodes"] for p in data] == [10, 12]
        assert all("answer_rate" in p for p in data)


class TestStatsCommand:
    def test_stats_reads_archived_run(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        assert (
            main(
                ["run", "--nodes", "12", "--duration", "40", "--store", path]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "run: regular, 12 nodes" in out
        assert "wall-clock breakdown" in out
        assert "provenance" in out

    def test_stats_json(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        main(["run", "--nodes", "12", "--duration", "40", "--store", path])
        capsys.readouterr()
        assert main(["stats", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 12 and data["schema_version"] == 1

    def test_stats_missing_store(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.ndjson")]) == 1
        assert "no archived runs" in capsys.readouterr().err

    def test_stats_bad_index(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        main(["run", "--nodes", "12", "--duration", "40", "--store", path])
        capsys.readouterr()
        assert main(["stats", path, "--index", "5"]) == 1
        assert "out of range" in capsys.readouterr().err
