"""Tests for the newer CLI commands (sweep, map, reproduce, formats)."""

import json

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_algorithm(self, capsys):
        assert main(["sweep", "algorithm", "basic", "regular", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "basic" in out and "regular" in out and "answer_rate" in out

    def test_sweep_nodes(self, capsys):
        assert main(["sweep", "nodes", "10", "20", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "10" in out and "20" in out

    def test_sweep_rejects_bad_parameter(self):
        with pytest.raises(SystemExit):
            main(["sweep", "flux", "1"])


class TestMapCommand:
    def test_map_renders(self, capsys):
        assert main(["map", "--nodes", "12", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "+--" in out and "overlay" in out


class TestFigureFormats:
    ARGS = ["figure", "fig9", "--duration", "60", "--reps", "1", "--routing", "oracle"]

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exp_id"] == "fig9"

    def test_csv_output(self, capsys):
        assert main(self.ARGS + ["--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("exp_id,algorithm,series,index,value")

    def test_chart_and_compare(self, capsys):
        assert main(self.ARGS + ["--chart", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "|" in out  # chart axis


class TestReproduceCommand:
    def test_reproduce_subset(self, tmp_path, capsys):
        out_dir = str(tmp_path / "res")
        assert (
            main(
                [
                    "reproduce",
                    "--out",
                    out_dir,
                    "--figures",
                    "fig7",
                    "--duration",
                    "60",
                    "--reps",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "artifacts written" in out
        assert (tmp_path / "res" / "SUMMARY.md").exists()


class TestOrchestrationFlags:
    def test_reproduce_resume_reuses_cache(self, tmp_path, capsys):
        out1 = str(tmp_path / "a")
        out2 = str(tmp_path / "b")
        base = ["--figures", "fig7", "--duration", "40", "--reps", "1"]
        assert main(["reproduce", "--out", out1] + base + ["--resume"]) == 0
        cache = str(tmp_path / "a" / "runs.ndjson")
        import os

        assert os.path.exists(cache)
        capsys.readouterr()
        assert (
            main(["reproduce", "--out", out2] + base + ["--cache", cache]) == 0
        )
        assert "cache hits" in capsys.readouterr().out
        a = open(os.path.join(out1, "fig7.json")).read()
        b = open(os.path.join(out2, "fig7.json")).read()
        assert a == b

    def test_reproduce_processes_flag(self, tmp_path, capsys):
        out = str(tmp_path / "res")
        args = [
            "reproduce", "--out", out, "--figures", "fig7",
            "--duration", "40", "--reps", "2", "--processes", "2",
        ]
        assert main(args) == 0
        assert "artifacts written" in capsys.readouterr().out

    def test_sweep_resume_needs_store_or_cache(self, capsys):
        rc = main(["sweep", "nodes", "10", "--duration", "30", "--resume"])
        assert rc == 2
        assert "--resume needs" in capsys.readouterr().err

    def test_sweep_cache_flag(self, tmp_path, capsys):
        cache = str(tmp_path / "c.ndjson")
        args = ["sweep", "nodes", "10", "--duration", "30", "--cache", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # warm: served from the cache
        assert capsys.readouterr().out == first
        import os

        assert os.path.exists(cache)

    def test_figure_policy_flags(self, capsys):
        args = [
            "figure", "fig11", "--duration", "40", "--reps", "1",
            "--rebroadcast", "counter:2", "--query-policy", "contact",
            "--json",
        ]
        assert main(args) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exp_id"] == "fig11"


class TestRunStats:
    ARGS = ["run", "--nodes", "12", "--duration", "40"]

    def test_stats_flag_prints_breakdown(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock breakdown" in out and "scenario.run" in out
        assert "counters" in out and "kernel.events_dispatched" in out

    def test_json_includes_obs(self, capsys):
        assert main(self.ARGS + ["--json", "--obs-interval", "10"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == 1
        assert len(data["obs"]["timeseries"]) == 4
        assert "manifest" in data["obs"]


class TestSweepJson:
    def test_sweep_json(self, capsys):
        assert (
            main(["sweep", "nodes", "10", "12", "--duration", "40", "--json"]) == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert [p["point"]["num_nodes"] for p in data] == [10, 12]
        assert all("answer_rate" in p for p in data)


class TestStatsCommand:
    def test_stats_reads_archived_run(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        assert (
            main(
                ["run", "--nodes", "12", "--duration", "40", "--store", path]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "run: regular, 12 nodes" in out
        assert "wall-clock breakdown" in out
        assert "provenance" in out

    def test_stats_json(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        main(["run", "--nodes", "12", "--duration", "40", "--store", path])
        capsys.readouterr()
        assert main(["stats", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 12 and data["schema_version"] == 1

    def test_stats_missing_store(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.ndjson")]) == 1
        assert "no archived runs" in capsys.readouterr().err

    def test_stats_bad_index(self, tmp_path, capsys):
        path = str(tmp_path / "runs.ndjson")
        main(["run", "--nodes", "12", "--duration", "40", "--store", path])
        capsys.readouterr()
        assert main(["stats", path, "--index", "5"]) == 1
        assert "out of range" in capsys.readouterr().err
