"""Fake overlay pieces for unit-testing the query engine and algorithms
without a radio/routing stack underneath.

``FakeFabric`` provides instantaneous, loss-free message passing between
``FakeServent`` objects over an explicitly-specified neighbour graph.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.core.config import P2pConfig
from repro.core.connection import ConnectionTable
from repro.core.files import FileStore
from repro.core.query import QueryConfig, QueryEngine
from repro.sim import Simulator


class FakeFabric:
    """Zero-latency message bus (still goes through the event queue)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.servents: Dict[int, "FakeServent"] = {}
        self.sent_log: List[tuple] = []  # (src, dst, msg)

    def add(self, servent: "FakeServent") -> None:
        self.servents[servent.nid] = servent

    def send(self, src: int, dst: int, msg) -> None:
        self.sent_log.append((src, dst, msg))
        target = self.servents.get(dst)
        if target is not None:
            self.sim.schedule(0.001, target.receive, src, msg)


class FakeServent:
    """Implements the surface QueryEngine needs."""

    def __init__(
        self,
        nid: int,
        sim: Simulator,
        fabric: FakeFabric,
        *,
        files: Set[int] | None = None,
        neighbors: List[int] | None = None,
        num_files: int = 20,
        query_config: QueryConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.nid = nid
        self.sim = sim
        self.fabric = fabric
        self.store = FileStore(nid, files or set())
        self.num_files = num_files
        self.neighbors = list(neighbors or [])
        self.connections = ConnectionTable(nid, P2pConfig().max_connections)
        self.query_engine = QueryEngine(
            self, query_config or QueryConfig(), np.random.default_rng(seed + nid)
        )
        self.adhoc = {}  # peer -> faked ad-hoc distance
        fabric.add(self)

    # ---- surface used by QueryEngine ---------------------------------
    def overlay_neighbors(self) -> List[int]:
        return list(self.neighbors)

    def send(self, peer: int, msg) -> None:
        self.fabric.send(self.nid, peer, msg)

    def adhoc_distance(self, peer: int) -> int:
        return self.adhoc.get(peer, 1)

    # ---- inbound dispatch ---------------------------------------------
    def receive(self, src: int, msg) -> None:
        from repro.core.messages import FileData, FileRequest, Query, QueryHit

        if isinstance(msg, Query):
            self.query_engine.on_query(src, msg)
        elif isinstance(msg, QueryHit):
            self.query_engine.on_hit(src, msg)
        elif isinstance(msg, FileRequest):
            self.query_engine.on_file_request(src, msg)
        elif isinstance(msg, FileData):
            self.query_engine.on_file_data(src, msg)


def make_overlay_line(sim, n, files_at=None, **kw):
    """n fake servents in a line overlay 0-1-2-...; files_at: {nid: {fid}}."""
    fabric = FakeFabric(sim)
    servents = []
    for i in range(n):
        nbrs = [j for j in (i - 1, i + 1) if 0 <= j < n]
        servents.append(
            FakeServent(
                i,
                sim,
                fabric,
                files=(files_at or {}).get(i),
                neighbors=nbrs,
                **kw,
            )
        )
    return fabric, servents
