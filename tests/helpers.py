"""Shared test fixtures: hand-placed static topologies."""

import numpy as np

from repro.mobility import Area, Static
from repro.net import Channel, EnergyModel, World
from repro.sim import Simulator


def make_world(positions, radio_range=10.0, capacity=float("inf"), area=None):
    """Build (sim, world, channel) over a static hand-placed topology."""
    pts = np.asarray(positions, dtype=float)
    n = len(pts)
    area = area or Area(1000.0, 1000.0)
    mobility = Static(n, area, np.random.default_rng(0), positions=pts)
    sim = Simulator()
    world = World(
        sim,
        mobility,
        radio_range=radio_range,
        energy=EnergyModel(n, capacity=capacity),
    )
    channel = Channel(sim, world)
    return sim, world, channel


def line_positions(n, spacing=8.0):
    """n nodes on a horizontal line, `spacing` metres apart."""
    return [[i * spacing, 0.0] for i in range(n)]
