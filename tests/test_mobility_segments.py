"""The piecewise-linear segment contract behind the kinetic horizons.

The predictive topology lane trusts two things about every mobility
model:

1. **Segment faithfulness** -- the per-node segments exposed by
   ``current_segments()`` reproduce ``positions(t)`` *bitwise* via the
   canonical lerp at any time the segment covers (interior and both
   boundaries).  A model whose ``_refresh`` drifted from its stored
   segments would silently break the closed-form horizon math.
2. **Horizon soundness** -- ``next_change_horizon`` never over-promises:
   positions are bitwise-frozen before the position-change horizon, and
   grid cells do not change before the cell-crossing horizon.

Both are checked here for every concrete model.
"""

import numpy as np
import pytest

from repro.mobility.base import Area, MobilityModel, NEVER_THRESHOLD
from repro.mobility.direction import RandomDirection
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.manhattan import ManhattanGrid
from repro.mobility.static import Static
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint

AREA = Area(100.0, 100.0)

MODELS = {
    "waypoint": lambda rng: RandomWaypoint(25, AREA, rng),
    "walk": lambda rng: RandomWalk(25, AREA, rng),
    "direction": lambda rng: RandomDirection(25, AREA, rng),
    "gauss-markov": lambda rng: GaussMarkov(25, AREA, rng),
    "manhattan": lambda rng: ManhattanGrid(25, AREA, rng),
    "static": lambda rng: Static(25, AREA, rng),
}


def _make(name, seed=7):
    return MODELS[name](np.random.default_rng(seed))


def _segment_lerp(t, t0, t1, origin, dest):
    """The canonical segment evaluation the base class promises."""
    frac = np.clip((t - t0) / (t1 - t0), 0.0, 1.0)[:, None]
    return origin + frac * (dest - origin)


@pytest.mark.parametrize("name", sorted(MODELS))
class TestSegmentContract:
    def test_segments_reproduce_positions_bitwise(self, name):
        model = _make(name)
        for t in (0.0, 3.7, 41.2, 120.0, 500.5):
            got = model.positions(t)
            t0, t1, origin, dest = model.current_segments()
            want = _segment_lerp(t, t0, t1, origin, dest)
            assert got.tobytes() == want.tobytes(), f"{name} drifts at t={t}"

    def test_segment_boundaries_are_exact(self, name):
        model = _make(name)
        model.positions(50.0)  # roll everyone somewhere interesting
        t0, t1, origin, dest = model.current_segments()
        # At the segment start the node is bitwise at origin; at the
        # (finite) end the canonical lerp lands within an ulp of dest
        # (frac hits exactly 1.0 but origin + (dest - origin) may round
        # off dest's last bit -- the contract is the lerp, not the
        # endpoint).  The model only supports forward queries, so probe
        # each boundary in ascending time order; a node's own segment
        # is still current at its own boundaries under that order.
        probes = [(float(t0[i]), i, origin[i], True) for i in range(model.n)]
        probes += [
            (float(t1[i]), i, dest[i], False)
            for i in range(model.n)
            if t1[i] < NEVER_THRESHOLD
        ]
        for t, i, want, exact in sorted(probes, key=lambda p: p[0]):
            got = model.positions(t)[i]
            if exact:
                assert got.tobytes() == want.tobytes(), (
                    f"{name} node {i} off-segment at boundary t={t}"
                )
            else:
                np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)

    def test_current_segments_rolls_to_cover_t(self, name):
        model = _make(name)
        t0, t1, _, _ = model.current_segments(t=200.0)
        assert (t0 <= 200.0).all()
        assert (t1 >= 200.0).all()

    def test_positions_of_matches_full_evaluation(self, name):
        model = _make(name)
        for t in (0.0, 12.3, 250.0):
            full = model.positions(t)
            ids = np.array([0, 3, 11, 24], dtype=np.int64)
            subset = model.positions_of(ids, t)
            assert subset.tobytes() == full[ids].tobytes()

    def test_position_horizon_is_sound(self, name):
        model = _make(name)
        t = 30.0
        ref = model.positions(t)
        horizon = model.next_change_horizon(t)
        assert horizon.shape == (model.n,)
        assert (horizon >= t).all()
        # Ascending time sweep (the model only supports forward
        # queries): while a node's horizon lies ahead its position must
        # stay bitwise-frozen.
        for probe in np.linspace(t, t + 150.0, 301):
            pos = model.positions(float(probe))
            for i in np.flatnonzero(horizon > probe):
                assert pos[i].tobytes() == ref[i].tobytes(), (
                    f"{name} node {i} moved before its horizon at t={probe}"
                )

    def test_cell_horizon_is_sound(self, name):
        model = _make(name)
        pitch = 10.0
        t = 5.0
        ref_cell = np.floor(model.positions(t) / pitch)
        horizon = model.next_change_horizon(t, pitch=pitch)
        assert (horizon >= t).all()
        # Dense time sweep: no node's cell may change strictly before
        # its predicted crossing horizon.
        for probe in np.linspace(t, t + 60.0, 121):
            cells = np.floor(model.positions(float(probe)) / pitch)
            safe = horizon > probe
            assert (cells[safe] == ref_cell[safe]).all(), (
                f"{name}: cell changed before horizon at t={probe}"
            )

    def test_subset_horizons_match_full(self, name):
        model = _make(name)
        ids = np.array([1, 8, 19], dtype=np.int64)
        t = 75.0
        full = model.next_change_horizon(t)
        sub = model.next_change_horizon(t, ids=ids)
        assert sub.tobytes() == full[ids].tobytes()
        full_c = model.next_change_horizon(t, pitch=10.0)
        sub_c = model.next_change_horizon(t, pitch=10.0, ids=ids)
        assert sub_c.tobytes() == full_c[ids].tobytes()


class TestModelSpecificHorizons:
    def test_static_horizon_is_infinite(self):
        model = _make("static")
        assert np.isinf(model.next_change_horizon(0.0)).all()
        assert np.isinf(model.next_change_horizon(0.0, pitch=10.0)).all()

    def test_paused_waypoint_horizon_is_pause_end(self):
        model = _make("waypoint")
        model.positions(10.0)
        t0, t1, origin, dest = model.current_segments()
        paused = np.flatnonzero((origin == dest).all(axis=1) & (t1 > 10.0))
        if not paused.size:
            pytest.skip("no paused node at t=10 for this seed")
        horizon = model.next_change_horizon(10.0)
        assert np.array_equal(horizon[paused], t1[paused])

    def test_moving_node_position_horizon_is_now(self):
        model = _make("walk")  # walk never pauses
        horizon = model.next_change_horizon(2.0)
        assert (horizon == 2.0).all()

    def test_cell_horizon_capped_at_segment_end(self):
        model = _make("waypoint")
        t = 1.0
        model.positions(t)
        _, t1, _, _ = model.current_segments()
        horizon = model.next_change_horizon(t, pitch=10.0)
        assert (horizon <= t1 + 1e-12).all()

    def test_cell_horizon_closed_form_straight_line(self):
        # One hand-built mover: from (2, 5) heading +x at 1 m/s, the
        # first 10 m grid line is x=10, i.e. 8 s away (up to the
        # conservative slack).
        model = _make("static")
        model._t0[0] = 0.0
        model._t1[0] = 100.0
        model._origin[0] = np.array([2.0, 5.0])
        model._dest[0] = np.array([102.0, 5.0])
        h = model.next_change_horizon(0.0, pitch=10.0)
        assert h[0] == pytest.approx(8.0, rel=1e-6)
        assert h[0] <= 8.0  # never later than the true crossing
