"""Tests for the Gnutella-like query engine over a fake overlay."""

import pytest

from repro.core import Query, QueryConfig
from repro.sim import Simulator

from .fakes import FakeFabric, FakeServent, make_overlay_line


class TestQueryConfigValidation:
    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            QueryConfig(ttl=0)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            QueryConfig(target="weird")

    def test_bad_gap(self):
        with pytest.raises(ValueError):
            QueryConfig(gap_min=50, gap_max=10)


class TestIssueAndAnswer:
    def test_neighbor_with_file_answers(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 3, files_at={1: {7}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=7)
        sim.run(until=1.0)
        assert rec.answered
        assert rec.answers[0][0] == 1  # holder
        assert rec.min_p2p_hops == 1

    def test_distance_reflects_holder_position(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 5, files_at={3: {2}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=2)
        sim.run(until=1.0)
        assert rec.min_p2p_hops == 3

    def test_min_over_multiple_holders(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 5, files_at={1: {5}, 4: {5}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=5)
        sim.run(until=1.0)
        assert len(rec.answers) == 2
        assert rec.min_p2p_hops == 1

    def test_no_answer_when_file_absent(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 4, files_at={}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=9)
        sim.run(until=1.0)
        assert not rec.answered
        assert rec.min_p2p_hops is None

    def test_no_neighbors_no_query(self):
        sim = Simulator()
        fabric = FakeFabric(sim)
        lonely = FakeServent(0, sim, fabric, neighbors=[])
        assert lonely.query_engine.issue_query(file_id=1) is None

    def test_requirer_with_file_does_not_answer_itself(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 3, files_at={0: {4}, 2: {4}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=4)
        sim.run(until=1.0)
        assert all(holder != 0 for holder, _, _ in rec.answers)


class TestTtl:
    def test_ttl_limits_reach(self):
        sim = Simulator()
        cfg = QueryConfig(ttl=2)
        _, s = make_overlay_line(sim, 6, files_at={4: {3}}, query_config=cfg, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=3)
        sim.run(until=1.0)
        assert not rec.answered  # holder is 4 p2p hops away, TTL=2

    def test_ttl_exactly_reaches(self):
        sim = Simulator()
        cfg = QueryConfig(ttl=4)
        _, s = make_overlay_line(sim, 6, files_at={4: {3}}, query_config=cfg, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=3)
        sim.run(until=1.0)
        assert rec.answered and rec.min_p2p_hops == 4


class TestForwardingRules:
    def test_forward_once_in_cyclic_overlay(self):
        # Triangle overlay: query copies must not circulate forever.
        sim = Simulator()
        fabric = FakeFabric(sim)
        s = [
            FakeServent(i, sim, fabric, neighbors=[(i + 1) % 3, (i + 2) % 3], num_files=5)
            for i in range(3)
        ]
        s[0].query_engine.issue_query(file_id=1)
        sim.run(until=5.0)
        queries_on_wire = [m for _, _, m in fabric.sent_log if isinstance(m, Query)]
        # each of nodes 1,2 forwards at most once to the one eligible peer
        assert len(queries_on_wire) <= 2 + 2

    def test_holder_forwards_even_with_file(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 4, files_at={1: {6}, 3: {6}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=6)
        sim.run(until=1.0)
        holders = sorted(h for h, _, _ in rec.answers)
        assert holders == [1, 3]  # node 1 answered AND forwarded towards 3

    def test_not_forwarded_back_to_sender(self):
        sim = Simulator()
        fabric, s = make_overlay_line(sim, 3, files_at={}, num_files=5)
        s[0].query_engine.issue_query(file_id=1)
        sim.run(until=1.0)
        backwards = [
            (a, b) for a, b, m in fabric.sent_log if isinstance(m, Query) and (a, b) == (1, 0)
        ]
        assert backwards == []

    def test_duplicate_query_ignored(self):
        sim = Simulator()
        fabric, s = make_overlay_line(sim, 2, files_at={1: {2}}, num_files=5)
        q = Query(requirer=0, file_id=2, ttl=6)
        s[1].query_engine.on_query(0, q)
        s[1].query_engine.on_query(0, q)
        sim.run(until=1.0)
        hits = [m for _, _, m in fabric.sent_log if m.__class__.__name__ == "QueryHit"]
        assert len(hits) == 1


class TestPeriodicLoop:
    def test_records_accumulate(self):
        sim = Simulator()
        cfg = QueryConfig(warmup=1.0, response_wait=2.0, gap_min=1.0, gap_max=2.0)
        _, s = make_overlay_line(sim, 3, files_at={1: {1}}, query_config=cfg, num_files=1)
        for sv in s:
            sv.query_engine.start()
        sim.run(until=60.0)
        assert len(s[0].query_engine.records) >= 5
        assert all(r.closed for r in s[0].query_engine.records)

    def test_stop_halts_queries(self):
        sim = Simulator()
        cfg = QueryConfig(warmup=1.0, response_wait=1.0, gap_min=1.0, gap_max=1.0)
        _, s = make_overlay_line(sim, 2, query_config=cfg, num_files=1)
        s[0].query_engine.start()
        sim.run(until=10.0)
        n = len(s[0].query_engine.records)
        s[0].query_engine.stop()
        sim.run(until=30.0)
        assert len(s[0].query_engine.records) == n

    def test_late_answer_discarded(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 2, files_at={1: {1}}, num_files=1)
        rec = s[0].query_engine.issue_query(file_id=1)
        sim.run(until=0.0005)  # before the answer arrives
        s[0].query_engine._close(rec)
        sim.run(until=5.0)
        assert rec.answers == []  # hit arrived after close: ignored
