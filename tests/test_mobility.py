"""Unit and property tests for mobility models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import Area, RandomWalk, RandomWaypoint, Static


def rng(seed=0):
    return np.random.default_rng(seed)


class TestArea:
    def test_dimensions(self):
        a = Area(100, 50)
        assert a.width == 100 and a.height == 50

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Area(0, 10)
        with pytest.raises(ValueError):
            Area(10, -1)

    def test_sample_inside(self):
        a = Area(30, 70)
        pts = a.sample(rng(), 500)
        assert pts.shape == (500, 2)
        assert a.contains(pts).all()

    def test_contains_boundary(self):
        a = Area(10, 10)
        assert a.contains(np.array([[0.0, 0.0], [10.0, 10.0]])).all()
        assert not a.contains(np.array([[10.1, 5.0]])).any()


class TestStatic:
    def test_positions_never_change(self):
        m = Static(5, Area(), rng())
        p0 = m.positions(0.0)
        p1 = m.positions(3600.0)
        assert np.array_equal(p0, p1)

    def test_explicit_positions(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        m = Static(2, Area(), rng(), positions=pts)
        assert np.array_equal(m.positions(100.0), pts)

    def test_explicit_positions_shape_checked(self):
        with pytest.raises(ValueError):
            Static(3, Area(), rng(), positions=np.zeros((2, 2)))

    def test_explicit_positions_in_area(self):
        with pytest.raises(ValueError):
            Static(1, Area(10, 10), rng(), positions=np.array([[50.0, 5.0]]))


class TestRandomWaypoint:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(3, Area(), rng(), max_speed=1.0, min_speed=2.0)
        with pytest.raises(ValueError):
            RandomWaypoint(3, Area(), rng(), min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(3, Area(), rng(), max_pause=-1)

    def test_positions_shape(self):
        m = RandomWaypoint(7, Area(), rng())
        assert m.positions(12.3).shape == (7, 2)

    def test_deterministic_given_seed(self):
        a = RandomWaypoint(5, Area(), rng(9)).positions(500.0)
        b = RandomWaypoint(5, Area(), rng(9)).positions(500.0)
        assert np.array_equal(a, b)

    def test_nodes_eventually_move(self):
        m = RandomWaypoint(20, Area(), rng(1), max_pause=10.0)
        p0 = m.positions(0.0)
        p1 = m.positions(600.0)
        moved = np.hypot(*(p1 - p0).T) > 1e-6
        assert moved.sum() >= 15  # overwhelming majority after 10 pause-maxes

    def test_speed_bounded(self):
        m = RandomWaypoint(10, Area(), rng(3), max_speed=1.0, max_pause=5.0)
        prev = m.positions(0.0)
        for t in np.arange(1.0, 200.0, 1.0):
            cur = m.positions(float(t))
            step = np.hypot(*(cur - prev).T)
            assert (step <= 1.0 + 1e-9).all()  # cannot exceed max_speed * dt
            prev = cur

    @given(st.integers(0, 1000), st.floats(0.0, 5000.0))
    @settings(max_examples=40, deadline=None)
    def test_stays_in_area(self, seed, t):
        area = Area(100, 100)
        m = RandomWaypoint(8, area, rng(seed))
        assert area.contains(m.positions(t)).all()

    def test_queries_can_jump_far_ahead(self):
        m = RandomWaypoint(4, Area(), rng(5), max_pause=1.0)
        p = m.positions(10_000.0)  # many segments per node in one refresh
        assert Area().contains(p).all()


class TestRandomWalk:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            RandomWalk(2, Area(), rng(), speed=0)
        with pytest.raises(ValueError):
            RandomWalk(2, Area(), rng(), epoch=0)

    @given(st.integers(0, 500), st.floats(0.0, 2000.0))
    @settings(max_examples=40, deadline=None)
    def test_stays_in_area(self, seed, t):
        area = Area(50, 50)
        m = RandomWalk(6, area, rng(seed), speed=2.0, epoch=30.0)
        assert area.contains(m.positions(t)).all()

    def test_moves_continuously(self):
        m = RandomWalk(5, Area(), rng(2), speed=1.0, epoch=20.0)
        p0 = m.positions(0.0)
        p1 = m.positions(10.0)
        assert (np.hypot(*(p1 - p0).T) > 0.1).all()


class TestPiecewiseLinearity:
    def test_position_linear_within_segment(self):
        # Within one movement segment, positions interpolate linearly:
        # p(mid) == (p(a) + p(b)) / 2 when [a,b] lies inside a segment.
        m = RandomWaypoint(1, Area(), rng(7), max_pause=0.001, min_speed=0.5)
        # t in [0.01, 1.0] is inside the first movement leg (pause <= 1ms,
        # legs last many seconds at these speeds on a 100 m area).
        pa, pm, pb = m.positions(0.2)[0], m.positions(0.5)[0], m.positions(0.8)[0]
        assert np.allclose(pm, (pa + pb) / 2, atol=1e-9)

    def test_monotone_queries_consistent_with_jump(self):
        # Stepping through time or jumping straight to t must agree.
        m1 = RandomWaypoint(6, Area(), rng(11))
        for t in np.arange(0.0, 300.0, 7.0):
            m1.positions(float(t))
        stepped = m1.positions(300.0)
        m2 = RandomWaypoint(6, Area(), rng(11))
        jumped = m2.positions(300.0)
        assert np.allclose(stepped, jumped)
