"""Tests for metrics: collector, small-world stats, aggregation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import QueryRecord
from repro.metrics import (
    AnalyticsEngine,
    MetricsCollector,
    mean_ci,
    per_file_stats,
    random_graph_pathlength,
    regular_graph_pathlength,
    sorted_curve_mean,
)

# Stateless full-recompute lane: these tests feed fresh networkx graphs,
# so epoch-keyed incremental caching has nothing to key on.
_engine = AnalyticsEngine(mode="full")


def clustering_coefficient(g):
    return _engine.clustering_coefficient(g)


def characteristic_path_length(g):
    return _engine.characteristic_path_length(g)


def smallworld_stats(g):
    return _engine.smallworld_stats(g)


class TestCollector:
    def test_count_and_total(self):
        m = MetricsCollector(5)
        m.count_received(0, "ping")
        m.count_received(0, "ping")
        m.count_received(3, "query")
        assert m.total("ping") == 2
        assert m.family_counts("ping")[0] == 2
        assert m.family_counts("query")[3] == 1

    def test_unknown_family_folds_to_other(self):
        m = MetricsCollector(2)
        m.count_received(1, "mystery")
        assert m.total("other") == 1

    def test_sorted_counts_members_only(self):
        m = MetricsCollector(6)
        for nid, k in [(0, 5), (2, 9), (4, 1)]:
            for _ in range(k):
                m.count_received(nid, "connect")
        curve = m.sorted_counts("connect", members=[0, 2, 4])
        assert list(curve) == [9, 5, 1]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MetricsCollector(0)


class TestSmallWorld:
    def test_clustering_matches_networkx(self):
        g = nx.erdos_renyi_graph(30, 0.2, seed=42)
        ours = clustering_coefficient(g)
        theirs = nx.average_clustering(g)
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_clustering_triangle(self):
        assert clustering_coefficient(nx.complete_graph(3)) == 1.0

    def test_clustering_star_is_zero(self):
        assert clustering_coefficient(nx.star_graph(5)) == 0.0

    def test_clustering_empty_graph(self):
        assert clustering_coefficient(nx.Graph()) == 0.0

    def test_path_length_line(self):
        g = nx.path_graph(4)  # distances: 1*6? pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3)
        expected = (1 + 2 + 3 + 1 + 2 + 1) / 6
        assert characteristic_path_length(g) == pytest.approx(expected)

    def test_path_length_ignores_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        assert characteristic_path_length(g) == 1.0

    def test_path_length_no_edges_is_nan(self):
        g = nx.empty_graph(3)
        assert np.isnan(characteristic_path_length(g))

    def test_reference_formulas(self):
        assert regular_graph_pathlength(100, 5) == 10.0
        assert random_graph_pathlength(100, 10) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            regular_graph_pathlength(0, 5)
        with pytest.raises(ValueError):
            random_graph_pathlength(10, 1)

    def test_smallworld_effect_detectable(self):
        # Watts-Strogatz rewiring: clustering stays high-ish while path
        # length drops -- exactly what the Random algorithm aims for.
        regular = nx.watts_strogatz_graph(200, 8, 0.0, seed=1)
        rewired = nx.watts_strogatz_graph(200, 8, 0.1, seed=1)
        assert characteristic_path_length(rewired) < 0.6 * characteristic_path_length(
            regular
        )
        assert clustering_coefficient(rewired) > 0.5 * clustering_coefficient(regular)

    def test_stats_bundle(self):
        g = nx.watts_strogatz_graph(50, 4, 0.1, seed=3)
        s = smallworld_stats(g)
        assert 0 <= s["clustering"] <= 1
        assert s["n"] == 50
        assert "regular_ref" in s and "random_ref" in s

    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_clustering_always_in_unit_interval(self, seed):
        g = nx.gnp_random_graph(20, 0.3, seed=seed)
        assert 0.0 <= clustering_coefficient(g) <= 1.0


def rec(fid, answers=(), requirer=0):
    r = QueryRecord(requirer=requirer, file_id=fid, qid=0, issued_at=0.0)
    r.answers = list(answers)
    r.closed = True
    return r


class TestPerFileStats:
    def test_basic_aggregation(self):
        records = [
            rec(1, [(5, 1, 2), (6, 2, 3)]),
            rec(1, []),
            rec(2, [(7, 3, 4)]),
        ]
        stats = per_file_stats(records, num_files=3)
        assert stats[0].queries == 2
        assert stats[0].answered == 1
        assert stats[0].avg_answers == 1.0  # (2 + 0) / 2
        assert stats[0].avg_min_p2p_hops == 1.0
        assert stats[1].avg_min_p2p_hops == 3.0
        assert stats[2].queries == 0

    def test_answer_rate(self):
        stats = per_file_stats([rec(1, [(5, 1, 1)]), rec(1, [])], num_files=1)
        assert stats[0].answer_rate == 0.5

    def test_unanswered_distance_is_nan(self):
        stats = per_file_stats([rec(1, [])], num_files=1)
        assert np.isnan(stats[0].avg_min_p2p_hops)

    def test_negative_adhoc_excluded(self):
        stats = per_file_stats([rec(1, [(5, 2, -1)])], num_files=1)
        assert np.isnan(stats[0].avg_min_adhoc_hops)
        assert stats[0].avg_min_p2p_hops == 2.0


class TestMeanCi:
    def test_scalar_samples(self):
        out = mean_ci([1.0, 2.0, 3.0])
        assert out["mean"] == pytest.approx(2.0)
        assert out["std"] == pytest.approx(1.0)
        assert out["ci"] > 0

    def test_array_samples(self):
        out = mean_ci([np.array([1.0, 10.0]), np.array([3.0, 30.0])])
        assert out["mean"] == pytest.approx([2.0, 20.0])

    def test_nan_ignored(self):
        out = mean_ci([np.array([1.0, np.nan]), np.array([3.0, 5.0])])
        assert out["mean"][1] == pytest.approx(5.0)
        assert out["n"][1] == 1

    def test_single_sample_zero_ci(self):
        out = mean_ci([np.array([4.0])])
        assert out["ci"][0] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=0.7)


class TestSortedCurveMean:
    def test_equal_lengths(self):
        out = sorted_curve_mean([np.array([4.0, 2.0]), np.array([2.0, 0.0])])
        assert list(out) == [3.0, 1.0]

    def test_ragged_padded_with_zeros(self):
        out = sorted_curve_mean([np.array([4.0, 2.0]), np.array([2.0])])
        assert list(out) == [3.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sorted_curve_mean([])
