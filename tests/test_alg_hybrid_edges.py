"""Edge-case tests for the Hybrid algorithm's state machine."""

import numpy as np

from repro.core import Capture, PeerState, SlaveAccept, SlaveConfirm, SlaveRequest

from .overlay_helpers import build_overlay


def fresh_hybrid(qualifiers=None, pts=None):
    pts = pts or [[10, 10], [15, 10], [10, 15]]
    sim, world, overlay, metrics = build_overlay(
        pts, algorithm="hybrid", qualifiers=qualifiers or {i: 0.5 for i in range(len(pts))}
    )
    return sim, world, overlay


class TestReservedState:
    def test_reserve_timeout_returns_to_initial(self):
        sim, _, overlay = fresh_hybrid({0: 0.2, 1: 0.9, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        # Manually trigger a reservation toward a peer that won't answer
        # (node 1 is not started: its servent never processes messages...
        # actually messages dispatch anyway, so reserve toward a
        # *nonexistent-member* id that will never reply).
        alg0._request_enslavement(99)
        assert alg0.state is PeerState.RESERVED
        sim.run(until=30.0)
        assert alg0.state is PeerState.INITIAL
        assert alg0._reserved_with is None

    def test_reserved_peer_ignores_other_captures(self):
        sim, _, overlay = fresh_hybrid({0: 0.2, 1: 0.9, 2: 0.95})
        alg0 = overlay.servents[0].algorithm
        alg0._request_enslavement(1)
        sent = []
        overlay.servents[0].send = lambda peer, msg: sent.append((peer, msg))
        alg0._handle_capture(2, 0.95)  # better master appears meanwhile
        # Still reserved with 1; no second SlaveRequest goes out.
        assert alg0._reserved_with == 1
        assert not any(isinstance(m, SlaveRequest) for _, m in sent)

    def test_stale_slave_accept_ignored(self):
        sim, _, overlay = fresh_hybrid({0: 0.2, 1: 0.9, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        # Accept from a node we never asked: must not enslave us.
        alg0._on_slave_accept(2, SlaveAccept(sender=2))
        assert alg0.state is PeerState.INITIAL
        assert alg0.master is None


class TestMasterSide:
    def test_lower_qualifier_request_rejected(self):
        sim, _, overlay = fresh_hybrid({0: 0.9, 1: 0.2, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        alg0._become_master()
        # A request from a HIGHER-qualifier peer must be refused
        # (masters only adopt weaker peers).
        alg0._on_slave_request(2, SlaveRequest(sender=2, qualifier=0.99))
        assert not alg0._pending_slaves

    def test_slave_confirm_without_pending_ignored(self):
        sim, _, overlay = fresh_hybrid({0: 0.9, 1: 0.2, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        alg0._become_master()
        alg0._on_slave_confirm(1, SlaveConfirm(sender=1))
        assert alg0.slaves.count == 0

    def test_initial_peer_becomes_master_on_slave_request(self):
        sim, _, overlay = fresh_hybrid({0: 0.9, 1: 0.2, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        assert alg0.state is PeerState.INITIAL
        alg0._on_slave_request(1, SlaveRequest(sender=1, qualifier=0.2))
        assert alg0.state is PeerState.MASTER
        assert 1 in alg0._pending_slaves

    def test_become_initial_drops_everything(self):
        sim, _, overlay = fresh_hybrid({0: 0.9, 1: 0.2, 2: 0.5})
        overlay.start(queries=False)
        sim.run(until=200.0)
        alg0 = overlay.servents[0].algorithm
        if alg0.state is PeerState.MASTER:
            alg0._become_initial()
            assert alg0.slaves.count == 0
            assert overlay.servents[0].connections.count == 0
            assert alg0.state is PeerState.INITIAL

    def test_capture_tie_same_qualifier_same_id_never_self(self):
        sim, _, overlay = fresh_hybrid({0: 0.5, 1: 0.5, 2: 0.5})
        alg0 = overlay.servents[0].algorithm
        # A capture from a peer with identical qualifier but higher id:
        # we do NOT outrank them, so we try to become their slave.
        alg0._handle_capture(2, 0.5)
        assert alg0.state is PeerState.RESERVED
        assert alg0._reserved_with == 2


class TestQueryPlaneIsolation:
    def test_initial_and_reserved_have_no_overlay_neighbors(self):
        sim, _, overlay = fresh_hybrid()
        alg0 = overlay.servents[0].algorithm
        assert overlay.servents[0].overlay_neighbors() == []
        alg0._request_enslavement(1)
        assert overlay.servents[0].overlay_neighbors() == []
