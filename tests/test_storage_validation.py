"""Tests for the result store and statistical validation helpers."""

import json

import numpy as np
import pytest

from repro.experiments import (
    ResultStore,
    ks_curve_test,
    means_differ,
    ordering_stability,
)
from repro.scenarios import ScenarioConfig, run_scenario


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        store.append("note", {"x": 1}, experiment="demo")
        store.append("note", {"x": 2}, experiment="other")
        assert len(store) == 2
        demo = store.load(experiment="demo")
        assert len(demo) == 1 and demo[0]["payload"]["x"] == 1

    def test_kind_filter(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        store.append("a", {})
        store.append("b", {})
        assert len(store.load(kind="a")) == 1

    def test_where_filter(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        store.append("n", {"v": 5})
        store.append("n", {"v": 50})
        big = store.load(where=lambda r: r["payload"]["v"] > 10)
        assert len(big) == 1

    def test_missing_file_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "absent.ndjson"))
        assert store.load() == []
        assert store.latest() is None

    def test_latest(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        store.append("n", {"v": 1})
        store.append("n", {"v": 2})
        assert store.latest()["payload"]["v"] == 2

    def test_run_result_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.ndjson"))
        res = run_scenario(ScenarioConfig(num_nodes=12, duration=60.0, seed=1))
        store.append_run(res, algorithm="regular", purpose="test")
        rec = store.latest(kind="run")
        assert rec["tags"]["algorithm"] == "regular"
        assert rec["payload"]["num_nodes"] == 12
        # file is valid ndjson line by line
        for line in open(store.path):
            json.loads(line)


class TestCorruptLines:
    def test_truncated_final_line_skipped_and_counted(self, tmp_path):
        from repro.obs.registry import Registry

        registry = Registry()
        store = ResultStore(str(tmp_path / "r.ndjson"), registry=registry)
        store.append("note", {"x": 1})
        store.append("note", {"x": 2})
        # chop the final line mid-record, as a killed writer would
        raw = open(store.path).read()
        with open(store.path, "w") as fh:
            fh.write(raw[:-12])
        loaded = store.load()
        assert [r["payload"]["x"] for r in loaded] == [1]
        assert registry.counter("storage.corrupt_lines").value == 1

    def test_non_object_line_skipped(self, tmp_path):
        from repro.obs.registry import Registry

        registry = Registry()
        store = ResultStore(str(tmp_path / "r.ndjson"), registry=registry)
        store.append("note", {"x": 1})
        with open(store.path, "a") as fh:
            fh.write("[1, 2, 3]\n")
            fh.write("not json at all\n")
        assert len(store.load()) == 1
        assert registry.counter("storage.corrupt_lines").value == 2


class TestBatchAppend:
    def test_batch_writes_every_record(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        with store.batch():
            for i in range(5):
                store.append("note", {"i": i})
        assert [r["payload"]["i"] for r in store.load()] == list(range(5))

    def test_batch_reentrant(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        with store.batch():
            store.append("note", {"i": 0})
            with store.batch():
                store.append("note", {"i": 1})
            # outer handle still open after the nested exit
            store.append("note", {"i": 2})
        assert len(store) == 3

    def test_appends_outside_batch_still_work(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.ndjson"))
        with store.batch():
            store.append("note", {"i": 0})
        store.append("note", {"i": 1})
        assert len(store) == 2


class TestKsTest:
    def test_identical_distributions_high_p(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=200), rng.normal(size=200)
        stat, p = ks_curve_test(a, b)
        assert p > 0.05

    def test_different_distributions_low_p(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, size=200)
        b = rng.normal(3, 1, size=200)
        stat, p = ks_curve_test(a, b)
        assert p < 0.01 and stat > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_curve_test(np.array([]), np.array([1.0]))


class TestMeansDiffer:
    def test_clearly_different(self):
        out = means_differ([1, 1.1, 0.9, 1.0], [5, 5.2, 4.9, 5.1])
        assert out["significant"] == 1.0
        assert out["mean_y"] > out["mean_x"]

    def test_same_distribution_not_significant(self):
        rng = np.random.default_rng(1)
        out = means_differ(rng.normal(size=10), rng.normal(size=10))
        assert out["significant"] == 0.0

    def test_needs_two_reps(self):
        with pytest.raises(ValueError):
            means_differ([1.0], [2.0, 3.0])


class TestOrderingStability:
    def test_always_holds(self):
        out = ordering_stability(
            lambda seed: {"a": 10 + seed, "b": 5, "c": 1},
            ("a", "b", "c"),
            seeds=range(5),
        )
        assert out["fraction_holds"] == 1.0
        assert out["per_pair"]["a>=b"] == 1.0

    def test_partial_holds(self):
        out = ordering_stability(
            lambda seed: {"a": seed % 2, "b": 0.5},
            ("a", "b"),
            seeds=range(4),
        )
        assert out["fraction_holds"] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ordering_stability(lambda s: {}, ("only",), seeds=[1])
