"""Tests for the one-call reproduction orchestrator."""

import json
import os

import pytest

from repro.experiments import ExperimentExecutor, RunCache, reproduce_all
from repro.obs.registry import Registry


class TestReproduceAll:
    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            reproduce_all(str(tmp_path), figures=["fig99"])

    def test_artifacts_written(self, tmp_path):
        out = str(tmp_path / "res")
        results = reproduce_all(
            out, figures=["fig7"], duration=100.0, reps=1, seed=2
        )
        assert set(results) == {"fig7"}
        for name in ("tables.txt", "SUMMARY.md", "fig7.txt", "fig7.json", "fig7.csv"):
            assert os.path.exists(os.path.join(out, name)), name
        with open(os.path.join(out, "fig7.json")) as fh:
            data = json.load(fh)
        assert data["exp_id"] == "fig7"
        assert set(data["series"]) == {"basic", "regular", "random", "hybrid"}

    def test_summary_counts_claims(self, tmp_path):
        out = str(tmp_path / "res")
        reproduce_all(out, figures=["fig9"], duration=100.0, reps=1, seed=2)
        summary = open(os.path.join(out, "SUMMARY.md")).read()
        assert "paper claims checked:" in summary
        assert "fig9" in summary

    def test_progress_callback(self, tmp_path):
        lines = []
        reproduce_all(
            str(tmp_path / "r"),
            figures=["fig7"],
            duration=60.0,
            reps=1,
            progress=lines.append,
        )
        assert any("fig7" in line for line in lines)

    def test_shared_figures_run_once(self, tmp_path):
        # fig5 and fig7 harvest different series from the same runs; the
        # prefetched batch must execute each underlying run exactly once.
        ex = ExperimentExecutor(registry=Registry())
        reproduce_all(
            str(tmp_path / "r"),
            figures=["fig5", "fig7"],
            duration=60.0,
            reps=1,
            executor=ex,
        )
        assert ex.stats()["jobs_executed"] == 4
        assert ex.stats()["jobs_deduped"] == 4

    def test_warm_cache_byte_identical(self, tmp_path):
        cache = str(tmp_path / "runs.ndjson")
        out_cold = str(tmp_path / "cold")
        out_warm = str(tmp_path / "warm")
        cold_ex = ExperimentExecutor(
            cache=RunCache(cache, registry=Registry()), registry=Registry()
        )
        warm_ex = ExperimentExecutor(
            cache=RunCache(cache, registry=Registry()), registry=Registry()
        )
        reproduce_all(
            out_cold, figures=["fig7"], duration=60.0, reps=1, executor=cold_ex
        )
        reproduce_all(
            out_warm, figures=["fig7"], duration=60.0, reps=1, executor=warm_ex
        )
        assert warm_ex.stats()["jobs_executed"] == 0
        assert warm_ex.stats()["cache_hits"] == 4
        for name in ("fig7.json", "fig7.csv", "fig7.txt"):
            a = open(os.path.join(out_cold, name)).read()
            b = open(os.path.join(out_warm, name)).read()
            assert a == b, name
