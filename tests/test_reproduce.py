"""Tests for the one-call reproduction orchestrator."""

import json
import os

import pytest

from repro.experiments import reproduce_all


class TestReproduceAll:
    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            reproduce_all(str(tmp_path), figures=["fig99"])

    def test_artifacts_written(self, tmp_path):
        out = str(tmp_path / "res")
        results = reproduce_all(
            out, figures=["fig7"], duration=100.0, reps=1, seed=2
        )
        assert set(results) == {"fig7"}
        for name in ("tables.txt", "SUMMARY.md", "fig7.txt", "fig7.json", "fig7.csv"):
            assert os.path.exists(os.path.join(out, name)), name
        with open(os.path.join(out, "fig7.json")) as fh:
            data = json.load(fh)
        assert data["exp_id"] == "fig7"
        assert set(data["series"]) == {"basic", "regular", "random", "hybrid"}

    def test_summary_counts_claims(self, tmp_path):
        out = str(tmp_path / "res")
        reproduce_all(out, figures=["fig9"], duration=100.0, reps=1, seed=2)
        summary = open(os.path.join(out, "SUMMARY.md")).read()
        assert "paper claims checked:" in summary
        assert "fig9" in summary

    def test_progress_callback(self, tmp_path):
        lines = []
        reproduce_all(
            str(tmp_path / "r"),
            figures=["fig7"],
            duration=60.0,
            reps=1,
            progress=lines.append,
        )
        assert any("fig7" in line for line in lines)
