"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig7", "--duration", "60", "--reps", "2"]
        )
        assert args.figure == "fig7" and args.duration == 60.0 and args.reps == 2

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_queue_arg(self):
        args = build_parser().parse_args(["run", "--nodes", "15"])
        assert args.queue == "calendar"
        args = build_parser().parse_args(["run", "--nodes", "15", "--queue", "heap"])
        assert args.queue == "heap"

    def test_bad_queue_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--queue", "fifo"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Centralized" in out and "TTL for queries" in out

    def test_run(self, capsys):
        assert main(["run", "--nodes", "15", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "received totals" in out and "events dispatched" in out

    def test_figure_scaled(self, capsys):
        assert (
            main(["figure", "fig9", "--duration", "90", "--reps", "1", "--routing", "oracle"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fig9" in out and "shape checks" in out
