"""Topology service tests: A/B backend equivalence + World edge cases.

The dense matrix backend is the reference implementation; the sparse
grid backend must agree with it *exactly* -- same neighbor sets, same
hop distances -- on randomized mobility traces.  The World edge cases
(snapshot reuse/invalidation, churn mid-snapshot, depletion, backwards
clock) run against both backends so either can be selected in any
scenario.
"""

import numpy as np
import pytest

from repro.mobility import Area, RandomWaypoint, Static
from repro.net import (
    TOPOLOGY_BACKENDS,
    DenseTopology,
    EnergyModel,
    SparseGridTopology,
    World,
    make_topology,
)
from repro.net.topology import UNREACHABLE
from repro.scenarios import ScenarioConfig, build_scenario
from repro.sim import Simulator

BACKENDS = sorted(TOPOLOGY_BACKENDS)


def make_pair(n, seed, *, radio_range=10.0, area=(100.0, 100.0), snapshot_interval=0.0):
    """Two worlds over identical mobility traces, one per backend."""
    worlds = {}
    for backend in BACKENDS:
        sim = Simulator()
        mobility = RandomWaypoint(n, Area(*area), np.random.default_rng(seed))
        worlds[backend] = World(
            sim,
            mobility,
            radio_range=radio_range,
            snapshot_interval=snapshot_interval,
            topology=backend,
        )
    return worlds


def advance(world, t):
    world.sim.schedule_at(t, lambda: None)
    world.sim.run(until=t)


def static_world(positions, backend, *, radio_range=10.0, capacity=float("inf")):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000.0, 1000.0), np.random.default_rng(0), positions=pts)
    world = World(
        sim,
        mobility,
        radio_range=radio_range,
        energy=EnergyModel(len(pts), capacity=capacity),
        topology=backend,
    )
    return sim, world


class TestEquivalence:
    """Dense and sparse must agree exactly (acceptance criterion)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_neighbors_and_hops_identical(self, seed):
        n = 60
        worlds = make_pair(n, seed)
        for t in (0.0, 90.0, 250.0, 400.0):
            for w in worlds.values():
                advance(w, t)
            dense, sparse = worlds["dense"], worlds["sparse"]
            for i in range(n):
                nd = dense.neighbors(i)
                ns = sparse.neighbors(i)
                assert np.array_equal(nd, ns), f"neighbors({i}) differ at t={t}"
                assert np.array_equal(
                    dense.hops_from(i), sparse.hops_from(i)
                ), f"hops_from({i}) differ at t={t}"

    @pytest.mark.parametrize("seed", range(3))
    def test_matrix_links_degrees_identical(self, seed):
        worlds = make_pair(40, seed, radio_range=15.0)
        for t in (0.0, 120.0, 333.0):
            for w in worlds.values():
                advance(w, t)
            dense, sparse = worlds["dense"], worlds["sparse"]
            assert np.array_equal(dense.adjacency(), sparse.adjacency())
            assert np.array_equal(dense.degrees(), sparse.degrees())
            assert dense.link_count() == sparse.link_count()
            rng = np.random.default_rng(seed)
            for _ in range(50):
                i, j = rng.integers(0, 40, size=2)
                assert dense.link(int(i), int(j)) == sparse.link(int(i), int(j))

    @pytest.mark.parametrize("seed", range(3))
    def test_equivalence_under_churn(self, seed):
        worlds = make_pair(50, seed)
        rng = np.random.default_rng(seed + 100)
        downs = rng.choice(50, size=8, replace=False)
        for t in (0.0, 60.0, 180.0):
            for w in worlds.values():
                advance(w, t)
                for i in downs[:4]:
                    w.set_down(int(i))
                for i in downs[4:]:
                    w.set_down(int(i), down=False)
            dense, sparse = worlds["dense"], worlds["sparse"]
            for i in range(50):
                assert np.array_equal(dense.neighbors(i), sparse.neighbors(i))
                assert np.array_equal(dense.hops_from(i), sparse.hops_from(i))

    def test_boundary_distance_inclusive_both(self):
        # Exactly at the radio range: both backends must include the link
        # (the grid block search must not lose boundary cells).
        for backend in BACKENDS:
            _, world = static_world([[0.0, 0.0], [10.0, 0.0]], backend)
            assert world.link(0, 1), backend
            assert list(world.neighbors(0)) == [1], backend


class TestSparseInternals:
    def test_csr_built_lazily(self):
        worlds = make_pair(30, 0)
        sparse = worlds["sparse"]
        topo = sparse.topology
        assert isinstance(topo, SparseGridTopology)
        sparse.neighbors(3)  # neighbor query must not build the CSR
        assert topo.csr_builds == 0
        sparse.hops_from(3)  # BFS does
        assert topo.csr_builds == 1
        sparse.hops_from(7)  # ... once per snapshot
        assert topo.csr_builds == 1

    def test_distance_cache_lru_bound(self):
        sim = Simulator()
        mobility = RandomWaypoint(30, Area(100, 100), np.random.default_rng(0))
        world = World(sim, mobility, topology="sparse", dist_cache_size=4)
        for src in range(10):
            world.hops_from(src)
        assert len(world.topology._dist) == 4
        # most-recently-used sources survive
        assert set(world.topology._dist) == {6, 7, 8, 9}
        world.hops_from(7)
        world.hops_from(20)
        assert 7 in world.topology._dist and 6 not in world.topology._dist

    def test_dist_cache_hit_counter(self):
        worlds = make_pair(20, 1)
        w = worlds["sparse"]
        w.hops_from(0)
        w.hops_from(0)
        assert w.topology.dist_cache_hits == 1


class TestFactory:
    def test_make_topology_by_name_and_class(self):
        sim = Simulator()
        mobility = Static(3, Area(), np.random.default_rng(0))
        world = World(sim, mobility)
        assert isinstance(make_topology("sparse", world), SparseGridTopology)
        assert isinstance(make_topology(DenseTopology, world), DenseTopology)
        with pytest.raises(ValueError):
            make_topology("quantum", world)
        with pytest.raises(TypeError):
            make_topology(42, world)

    def test_world_rejects_bad_cache_size(self):
        sim = Simulator()
        mobility = Static(3, Area(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            World(sim, mobility, dist_cache_size=0)

    def test_scenario_config_topology_knob(self):
        assert ScenarioConfig().resolved_topology == "dense"
        assert ScenarioConfig(topology="sparse").resolved_topology == "sparse"
        assert ScenarioConfig(topology="auto").resolved_topology == "dense"
        assert (
            ScenarioConfig(topology="auto", num_nodes=500).resolved_topology == "sparse"
        )
        with pytest.raises(ValueError):
            ScenarioConfig(topology="hexgrid")

    def test_builder_selects_backend(self):
        s = build_scenario(ScenarioConfig(topology="sparse", duration=10.0))
        assert isinstance(s.world.topology, SparseGridTopology)
        s = build_scenario(ScenarioConfig(duration=10.0))
        assert isinstance(s.world.topology, DenseTopology)

    def test_full_scenario_identical_across_backends(self):
        # The backends are exact-equivalent, so a whole simulation must
        # be bit-for-bit identical regardless of which one runs it.
        from repro.scenarios import run_scenario

        runs = {
            backend: run_scenario(
                ScenarioConfig(duration=60.0, seed=3, routing="oracle", topology=backend)
            )
            for backend in BACKENDS
        }
        dense, sparse = runs["dense"], runs["sparse"]
        assert dense.totals == sparse.totals
        assert dense.events == sparse.events


@pytest.mark.parametrize("backend", BACKENDS)
class TestWorldEdgeCases:
    """Satellite: World edge cases, identical across backends."""

    def test_snapshot_interval_reuses_within_quantum(self, backend):
        sim = Simulator()
        mobility = RandomWaypoint(20, Area(50, 50), np.random.default_rng(2), max_pause=0.5)
        world = World(sim, mobility, snapshot_interval=1.0, topology=backend)
        world.neighbors(0)
        t0 = world.topology.snapshot_time
        rebuilds = world.topology.rebuilds
        advance(world, 0.5)  # inside the quantum: snapshot reused
        world.neighbors(0)
        assert world.topology.snapshot_time == t0
        assert world.topology.rebuilds == rebuilds
        advance(world, 2.0)  # outside: recomputed
        world.neighbors(0)
        assert world.topology.snapshot_time == 2.0
        assert world.topology.rebuilds == rebuilds + 1

    def test_invalidate_forces_recompute_same_timestamp(self, backend):
        sim = Simulator()
        mobility = RandomWaypoint(10, Area(50, 50), np.random.default_rng(3))
        world = World(sim, mobility, snapshot_interval=5.0, topology=backend)
        world.neighbors(0)
        rebuilds = world.topology.rebuilds
        world.invalidate()
        world.neighbors(0)
        assert world.topology.rebuilds == rebuilds + 1

    def test_set_down_mid_snapshot(self, backend):
        # Killing a node must take effect immediately, even with a
        # coarse snapshot quantum and no clock movement.
        _, world = static_world([[0, 0], [8, 0], [16, 0]], backend)
        world.snapshot_interval = 10.0
        assert world.hop_distance(0, 2) == 2
        world.set_down(1)
        assert list(world.neighbors(0)) == []
        assert world.hop_distance(0, 2) == UNREACHABLE
        assert world.hops_from(1).tolist() == [UNREACHABLE] * 3
        world.set_down(1, down=False)
        assert world.hop_distance(0, 2) == 2

    def test_depleted_node_excluded_from_neighbors(self, backend):
        _, world = static_world([[0, 0], [8, 0], [16, 0]], backend, capacity=1e-4)
        assert 1 in world.neighbors(0)
        world.energy.charge_tx(1, 10_000)  # drains node 1's battery
        world.check_depletion()
        assert list(world.neighbors(0)) == []
        assert not world.link(0, 1)
        assert world.hop_distance(0, 2) == UNREACHABLE

    def test_backwards_clock_forces_rebuild(self, backend):
        # Two independent sims sharing nothing; a world re-queried at an
        # earlier time than its snapshot must rebuild, not reuse.
        sim = Simulator(start_time=100.0)
        mobility = RandomWaypoint(15, Area(50, 50), np.random.default_rng(4), max_pause=0.5)
        world = World(sim, mobility, snapshot_interval=1000.0, topology=backend)
        world.neighbors(0)
        assert world.topology.snapshot_time == 100.0
        # Simulate a fresh kernel attached at an earlier clock (resume /
        # reuse patterns): snapshot time is in the future -> stale.
        world.sim = Simulator(start_time=50.0)
        world._pos_time = -1.0
        world.neighbors(0)
        assert world.topology.snapshot_time == 50.0

    def test_neighbors_sorted_ascending(self, backend):
        pts = np.random.default_rng(5).random((40, 2)) * 60
        _, world = static_world(pts, backend, radio_range=20.0)
        for i in range(40):
            nbrs = world.neighbors(i)
            assert np.array_equal(nbrs, np.sort(nbrs))
