"""Sampler determinism and non-perturbation guarantees.

The acceptance bar for the observability layer: a run with a sampler
attached must be bit-identical to the same run without one, and two runs
of the same seeded scenario must produce identical sampled series.
"""

import json

import pytest

from repro.obs import Registry, Sampler
from repro.scenarios import ScenarioConfig, run_scenario
from repro.sim.kernel import Simulator


def _core(d):
    """A run dict with the observability-only parts stripped."""
    d = dict(d)
    d.pop("obs", None)
    d["config"] = {k: v for k, v in d["config"].items() if k != "obs_interval"}
    return json.dumps(d, sort_keys=True)


class TestSamplerMechanics:
    def test_rows_at_interval(self):
        sim = Simulator()
        reg = sim.registry
        c = reg.counter("ticks")
        sim.schedule(2.5, c.inc)
        sampler = Sampler(sim, reg, interval=1.0)
        sampler.start()
        sim.run(until=5.0)
        assert [r["t"] for r in sampler.rows] == [1.0, 2.0, 3.0, 4.0, 5.0]
        _, values = sampler.series("ticks")
        assert values == [0.0, 0.0, 1.0, 1.0, 1.0]

    def test_rate_from_cumulative(self):
        sim = Simulator()
        reg = sim.registry
        c = reg.counter("msgs")
        sim.schedule(0.5, lambda: c.inc(4))
        sampler = Sampler(sim, reg, interval=2.0)
        sampler.start()
        sim.run(until=4.0)
        _, rates = sampler.rate("msgs")
        assert rates == [2.0, 0.0]  # 4 msgs in the first 2 s window

    def test_daemon_events_excluded_from_dispatch_count(self):
        sim = Simulator()
        sampler = Sampler(sim, sim.registry, interval=1.0)
        sampler.start()
        sim.schedule(2.0, lambda: None)
        sim.run(until=5.0)
        assert sim.events_dispatched == 1  # only the payload event
        assert sim.stats()["events_daemon"] == 5

    def test_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Sampler(sim, Registry(), interval=0.0)

    def test_timers_excluded_from_rows(self):
        sim = Simulator()
        reg = sim.registry
        with reg.timed("setup"):
            pass
        sampler = Sampler(sim, reg, interval=1.0)
        sampler.start()
        sim.run(until=1.0)
        assert not any("wall" in key for key in sampler.rows[0])


class TestDeterminism:
    CFG = dict(num_nodes=15, duration=120.0)

    def test_same_seed_identical_series(self):
        a = run_scenario(ScenarioConfig(seed=5, obs_interval=10.0, **self.CFG))
        b = run_scenario(ScenarioConfig(seed=5, obs_interval=10.0, **self.CFG))
        assert a.timeseries == b.timeseries
        assert len(a.timeseries) == 12

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sampling_does_not_perturb_results(self, seed):
        plain = run_scenario(ScenarioConfig(seed=seed, **self.CFG))
        sampled = run_scenario(
            ScenarioConfig(seed=seed, obs_interval=5.0, **self.CFG)
        )
        assert _core(plain.to_dict()) == _core(sampled.to_dict())
