"""Tests for the observability registry: instruments, labels, stats()."""

import numpy as np
import pytest

from repro.obs import (
    Registry,
    registry_to_csv,
    registry_to_ndjson,
    timeseries_to_csv,
    timeseries_to_ndjson,
)
from repro.sim.kernel import Simulator


class TestInstruments:
    def test_counter_hot_path(self):
        reg = Registry()
        c = reg.counter("hits")
        c.value += 1
        c.inc(2)
        assert c.value == 3

    def test_gauge_set_and_callback(self):
        reg = Registry()
        g = reg.gauge("depth")
        g.set(4.5)
        assert g.value == 4.5
        backing = [7]
        live = reg.gauge("live", fn=lambda: backing[0])
        backing[0] = 9
        assert live.value == 9
        with pytest.raises(ValueError):
            live.set(1.0)

    def test_histogram_summary(self):
        reg = Registry()
        h = reg.histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0 and h.mean == 2.0

    def test_timer_accumulates(self):
        reg = Registry()
        t = reg.timer("wall", section="x")
        with t.time():
            pass
        t.add(0.5)
        assert t.calls == 2 and t.seconds >= 0.5


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = Registry()
        a = reg.counter("c", node=1)
        b = reg.counter("c", node=1)
        c = reg.counter("c", node=2)
        assert a is b and a is not c
        # Label order must not matter.
        x = reg.counter("d", a=1, b=2)
        y = reg.counter("d", b=2, a=1)
        assert x is y

    def test_label_aggregation(self):
        reg = Registry()
        reg.counter("msgs", family="ping", node=0).inc(3)
        reg.counter("msgs", family="ping", node=1).inc(4)
        reg.counter("msgs", family="query", node=0).inc(5)
        assert reg.value("msgs") == 12
        assert reg.value("msgs", family="ping") == 7
        assert reg.value("msgs", family="ping", node=1) == 4
        with pytest.raises(KeyError):
            reg.value("msgs", family="absent")

    def test_aggregated_folds_node_label(self):
        reg = Registry()
        reg.counter("msgs", family="ping", node=0).inc(3)
        reg.counter("msgs", family="ping", node=1).inc(4)
        agg = reg.aggregated()
        assert agg["msgs{family=ping}"] == 7
        assert not any("node=" in k for k in agg)

    def test_snapshot_keys_deterministic(self):
        reg = Registry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == sorted(reg.snapshot())

    def test_wall_times(self):
        reg = Registry()
        with reg.timed("phase.one"):
            pass
        seconds, calls = reg.wall_times()["phase.one"]
        assert calls == 1 and seconds >= 0.0


class TestExporters:
    def test_registry_ndjson_and_csv(self):
        import json

        reg = Registry()
        reg.counter("net.frames", layer="radio").inc(5)
        lines = registry_to_ndjson(reg).splitlines()
        assert json.loads(lines[0]) == {
            "name": "net.frames",
            "labels": {"layer": "radio"},
            "kind": "counter",
            "value": 5,
        }
        csv_out = registry_to_csv(reg)
        assert csv_out.startswith("metric,kind,labels,value")
        assert "net.frames,counter,layer=radio,5" in csv_out

    def test_timeseries_long_format(self):
        rows = [{"t": 0.5, "a": 1.0, "b": 2.0}]
        nd = timeseries_to_ndjson(rows).splitlines()
        assert len(nd) == 2
        csv_out = timeseries_to_csv(rows)
        assert csv_out.startswith("t,metric,value")
        assert "0.500000,a,1" in csv_out


class TestDeprecatedShims:
    """Old counter attributes must stay readable (registry-backed)."""

    def test_kernel_counters_read_through(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_dispatched == 1
        assert sim.events_dispatched == sim.registry.value("kernel.events_dispatched")
        assert sim.events_skipped == 0
        assert sim.heap_compactions == 0
        stats = sim.stats()
        assert stats["events_dispatched"] == 1 and "heap_size" in stats

    def test_channel_counters_read_through(self):
        from repro.net.packet import Frame
        from tests.helpers import line_positions, make_world

        sim, world, channel = make_world(line_positions(4), radio_range=10.0)
        channel.unicast(Frame(src=0, dst=1, kind="x", payload=None))
        sim.run(until=1.0)
        assert channel.frames_sent == 1
        assert channel.frames_sent == channel.stats()["frames_sent"]
        assert channel.registry is world.registry is sim.registry

    def test_stats_protocol_everywhere(self):
        from repro.scenarios import ScenarioConfig, build_scenario

        s = build_scenario(ScenarioConfig(num_nodes=8, duration=30.0, seed=2))
        s.run()
        for component in (
            s.sim,
            s.world,
            s.world.energy,
            s.world.topology,
            s.channel,
            s.overlay,
            s.metrics,
        ):
            out = component.stats()
            assert isinstance(out, dict) and out, type(component).__name__
        nested = s.stats()
        assert set(nested) >= {"kernel", "world", "energy", "overlay"}
        for servent in s.overlay.servents.values():
            assert isinstance(servent.stats(), dict)
            assert isinstance(servent.algorithm.stats(), dict)


class TestCollectorValidation:
    def test_count_received_rejects_out_of_range(self):
        from repro.metrics.collector import MetricsCollector

        mc = MetricsCollector(5)
        with pytest.raises(IndexError):
            mc.count_received(-1, "ping")
        with pytest.raises(IndexError):
            mc.count_received(5, "ping")
        mc.count_received(4, "ping")  # boundary ok
        assert mc.total("ping") == 1
        # the negative id must NOT have wrapped onto another node
        assert np.all(mc.family_counts("ping")[:4] == 0)
