"""Tests for Zipf file placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FileStore, place_files, zipf_frequencies


class TestZipfFrequencies:
    def test_paper_values(self):
        f = zipf_frequencies(20, 0.4)
        assert f[0] == pytest.approx(0.4)
        assert f[1] == pytest.approx(0.2)
        assert f[2] == pytest.approx(0.4 / 3)

    def test_monotone_decreasing(self):
        f = zipf_frequencies(50, 0.4)
        assert all(a > b for a, b in zip(f, f[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 0.4)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 0.0)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 1.5)


class TestPlacement:
    def test_counts_match_zipf(self):
        members = list(range(100))
        holdings = place_files(members, 20, 0.4, np.random.default_rng(0))
        counts = {k: 0 for k in range(1, 21)}
        for files in holdings.values():
            for f in files:
                counts[f] += 1
        assert counts[1] == 40  # 40% of 100
        assert counts[2] == 20
        assert counts[4] == 10

    def test_every_file_exists_somewhere(self):
        members = list(range(10))
        holdings = place_files(members, 20, 0.4, np.random.default_rng(1))
        present = set().union(*holdings.values())
        assert present == set(range(1, 21))

    def test_file_ids_one_based(self):
        holdings = place_files(range(30), 5, 0.4, np.random.default_rng(2))
        for files in holdings.values():
            assert all(1 <= f <= 5 for f in files)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            place_files([], 5, 0.4, np.random.default_rng(0))

    def test_deterministic(self):
        a = place_files(range(40), 10, 0.4, np.random.default_rng(7))
        b = place_files(range(40), 10, 0.4, np.random.default_rng(7))
        assert a == b

    @given(st.integers(2, 60), st.integers(1, 25), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_placement_counts_bounded(self, n_members, n_files, seed):
        holdings = place_files(
            range(n_members), n_files, 0.4, np.random.default_rng(seed)
        )
        counts = {}
        for files in holdings.values():
            for f in files:
                counts[f] = counts.get(f, 0) + 1
        for rank, c in counts.items():
            expected = max(1, round(0.4 / rank * n_members))
            assert c == min(expected, n_members)


class TestFileStore:
    def test_has_add(self):
        s = FileStore(0, {1, 3})
        assert s.has(1) and not s.has(2)
        s.add(2)
        assert s.has(2)
        assert s.files() == [1, 2, 3]
        assert len(s) == 3

    def test_empty_store(self):
        s = FileStore(1)
        assert not s.has(1) and len(s) == 0
