"""Vectorized graph kernels agree *exactly* with the networkx oracles.

Exactness (``==``, not ``allclose``) is the point: path-length totals
are integer sums (order-independent in float64), and clustering divides
the same integer-valued rationals the reference formulations divide, so
IEEE correct rounding makes the results bit-identical.  Random geometric
graphs over seeds 1-3, dense and sparse topology backends, fragmented
and fully-down-node graphs.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.metrics.graphfast import (
    UNREACHABLE,
    average_clustering,
    component_labels,
    graph_csr,
    local_clustering,
    multi_source_hops,
    path_length_sums,
    triangle_counts,
)
from repro.metrics import AnalyticsEngine
from repro.metrics.analytics import engine_for_world
from repro.mobility import Area, Static
from repro.net import EnergyModel, World
from repro.sim import Simulator

SEEDS = (1, 2, 3)

# Stateless full-recompute lane over throwaway graphs/worlds: these
# oracle tests compare one-shot results, not cache behaviour.
_engine = AnalyticsEngine(mode="full")


def clustering_coefficient(g):
    return _engine.clustering_coefficient(g)


def characteristic_path_length(g):
    return _engine.characteristic_path_length(g)


def components(world):
    return engine_for_world(world).components(world)


def connectivity_stats(world):
    return engine_for_world(world).connectivity_stats(world)


def reachable_pair_fraction(world):
    return engine_for_world(world).reachable_pair_fraction(world)


def rgg_world(seed, topology, *, n=40, side=80.0, radio=12.0):
    """A random-geometric-graph world on the requested backend."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * side
    mobility = Static(n, Area(side, side), rng, positions=pts)
    world = World(
        Simulator(),
        mobility,
        radio_range=radio,
        energy=EnergyModel(n),
        topology=topology,
    )
    return world


def rgg_graph(seed, *, n=40, side=80.0, radio=12.0):
    """The same geometry as a plain networkx graph."""
    pts = np.random.default_rng(seed).random((n, 2)) * side
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if float(np.sum((pts[i] - pts[j]) ** 2)) <= radio * radio:
                g.add_edge(i, j)
    return g


# ----------------------------------------------------------------------
# raw kernels vs networkx
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestKernelsVsNetworkx:
    def test_multi_source_hops(self, seed):
        g = rgg_graph(seed)
        indptr, indices, nodes = graph_csr(g)
        dist = multi_source_hops(indptr, indices, range(len(nodes)), chunk=7)
        sp = dict(nx.all_pairs_shortest_path_length(g))
        for i in range(len(nodes)):
            for j in range(len(nodes)):
                expect = sp[i].get(j, UNREACHABLE)
                assert dist[i, j] == expect

    def test_component_labels(self, seed):
        g = rgg_graph(seed)
        indptr, indices, _ = graph_csr(g)
        labels = component_labels(indptr, indices)
        for comp in nx.connected_components(g):
            want = min(comp)
            for v in comp:
                assert labels[v] == want

    def test_triangles_and_local_clustering(self, seed):
        g = rgg_graph(seed)
        indptr, indices, _ = graph_csr(g)
        tri = triangle_counts(indptr, indices)
        ctri = nx.triangles(g)
        cc = nx.clustering(g)
        mine = local_clustering(indptr, indices)
        for v in g.nodes:
            assert tri[v] == ctri[v]
            assert mine[v] == cc[v]  # exact: same rational, IEEE division

    def test_average_clustering_exact(self, seed):
        g = rgg_graph(seed)
        indptr, indices, _ = graph_csr(g)
        assert average_clustering(indptr, indices) == nx.average_clustering(g)

    def test_path_length_sums_exact(self, seed):
        g = rgg_graph(seed)
        indptr, indices, _ = graph_csr(g)
        total, pairs = path_length_sums(indptr, indices)
        want_total = 0
        want_pairs = 0
        for _, lengths in nx.all_pairs_shortest_path_length(g):
            for d in lengths.values():
                if d > 0:
                    want_total += d
                    want_pairs += 1
        assert (total, pairs) == (want_total, want_pairs)

    def test_smallworld_metrics_match_oracle(self, seed):
        g = rgg_graph(seed)
        assert clustering_coefficient(g) == nx.average_clustering(g)
        cpl = characteristic_path_length(g)
        want = nx.average_shortest_path_length(
            g.subgraph(max(nx.connected_components(g), key=len))
        )
        if nx.number_connected_components(g) == 1:
            assert cpl == want
        else:
            # Fragmented: our metric averages over every connected pair,
            # so recompute the oracle the same way.
            total = pairs = 0
            for _, lengths in nx.all_pairs_shortest_path_length(g):
                for d in lengths.values():
                    if d > 0:
                        total += d
                        pairs += 1
            assert cpl == total / pairs


def test_triangle_sparse_fallback_matches_dense():
    g = rgg_graph(5, n=60, side=70.0)
    indptr, indices, _ = graph_csr(g)
    import repro.metrics.graphfast as gf

    dense = triangle_counts(indptr, indices)
    limit = gf._DENSE_TRIANGLE_LIMIT
    try:
        gf._DENSE_TRIANGLE_LIMIT = 0  # force the bitmask path
        sparse = triangle_counts(indptr, indices)
    finally:
        gf._DENSE_TRIANGLE_LIMIT = limit
    np.testing.assert_array_equal(dense, sparse)


def isolated_tail_graph(seed, tail=3, **kw):
    """An RGG whose ``tail`` highest-id nodes are stripped of all edges.

    Produces a CSR with *trailing empty rows* (``indptr`` entries equal
    to ``len(indices)``), the shape that once broke the ``reduceat``
    segmentation by clamping the last non-empty row's segment.
    """
    g = rgg_graph(seed, **kw)
    n = g.number_of_nodes()
    for v in range(n - tail, n):
        for u in list(g.neighbors(v)):
            g.remove_edge(v, u)
    return g


def test_last_nonempty_row_keeps_all_neighbors():
    # Minimal regression: node 3 isolated -> row 2 is the last non-empty
    # CSR row and has two neighbors; a clamped reduceat start used to
    # drop neighbor 1 from its OR-reduction.
    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edges_from([(0, 2), (1, 2)])
    indptr, indices, _ = graph_csr(g)
    dist = multi_source_hops(indptr, indices, range(4))
    u = UNREACHABLE
    assert dist.tolist() == [
        [0, 2, 1, u],
        [2, 0, 1, u],
        [1, 1, 0, u],
        [u, u, u, 0],
    ]
    assert path_length_sums(indptr, indices) == (8, 6)


@pytest.mark.parametrize("seed", SEEDS)
class TestTrailingEmptyRows:
    """Oracle exactness when the max-id rows of the CSR are empty."""

    def test_hops_match_networkx(self, seed):
        g = isolated_tail_graph(seed)
        indptr, indices, nodes = graph_csr(g)
        n = len(nodes)
        # The scenario under test: trailing rows empty, and the last
        # non-empty row has >= 2 neighbors (so a dropped final neighbor
        # would be observable).
        assert indptr[-1] == len(indices)
        last = max(v for v in range(n) if g.degree[v] > 0)
        assert last < n - 1 and g.degree[last] >= 2
        dist = multi_source_hops(indptr, indices, range(n), chunk=7)
        sp = dict(nx.all_pairs_shortest_path_length(g))
        for i in range(n):
            for j in range(n):
                assert dist[i, j] == sp[i].get(j, UNREACHABLE)

    def test_path_length_sums_match_networkx(self, seed):
        g = isolated_tail_graph(seed)
        indptr, indices, _ = graph_csr(g)
        want_total = want_pairs = 0
        for _, lengths in nx.all_pairs_shortest_path_length(g):
            for d in lengths.values():
                if d > 0:
                    want_total += d
                    want_pairs += 1
        assert path_length_sums(indptr, indices) == (want_total, want_pairs)

    def test_components_and_clustering(self, seed):
        g = isolated_tail_graph(seed)
        indptr, indices, _ = graph_csr(g)
        labels = component_labels(indptr, indices)
        for comp in nx.connected_components(g):
            want = min(comp)
            for v in comp:
                assert labels[v] == want
        assert average_clustering(indptr, indices) == nx.average_clustering(g)


def test_popcount_fallback_matches_bitwise_count():
    import repro.metrics.graphfast as gf

    rng = np.random.default_rng(7)
    a = rng.integers(0, np.iinfo(np.uint64).max, size=(13, 3), dtype=np.uint64)
    want = sum(bin(int(x)).count("1") for x in a.ravel())
    assert gf._popcount(a) == want
    # The pre-NumPy-2.0 formulation must agree with the ufunc path.
    assert int(np.unpackbits(np.ascontiguousarray(a).view(np.uint8)).sum()) == want


def test_empty_and_trivial_graphs():
    g = nx.Graph()
    indptr, indices, _ = graph_csr(g)
    assert average_clustering(indptr, indices) == 0.0
    assert path_length_sums(indptr, indices) == (0, 0)
    assert math.isnan(characteristic_path_length(g))
    g.add_nodes_from(range(3))  # edgeless
    indptr, indices, _ = graph_csr(g)
    assert list(component_labels(indptr, indices)) == [0, 1, 2]
    assert multi_source_hops(indptr, indices, [1])[0].tolist() == [
        UNREACHABLE,
        0,
        UNREACHABLE,
    ]


# ----------------------------------------------------------------------
# world-level analytics vs the per-source BFS reference semantics
# ----------------------------------------------------------------------
def reference_components(world):
    """The historical per-source ``hops_from`` sweep, verbatim."""
    n = world.n
    seen = np.zeros(n, dtype=bool)
    out = []
    for start in range(n):
        if seen[start]:
            continue
        dist = world.hops_from(start)
        comp = np.flatnonzero(dist >= 0)
        seen[comp] = True
        out.append(comp)
    out.sort(key=len, reverse=True)
    return out


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
class TestWorldAnalytics:
    def test_components_match_reference(self, seed, topology):
        world = rgg_world(seed, topology)
        got = components(world)
        want = reference_components(world)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_reachable_fraction_exact(self, seed, topology):
        world = rgg_world(seed, topology)
        comps = reference_components(world)
        n = world.n
        want = sum(len(c) * (len(c) - 1) for c in comps) / (n * (n - 1))
        assert reachable_pair_fraction(world) == want

    def test_fragmented_world(self, seed, topology):
        # Huge area: mostly isolated nodes and tiny islands.
        world = rgg_world(seed, topology, n=30, side=400.0)
        got = components(world)
        want = reference_components(world)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
        stats = connectivity_stats(world)
        assert stats["components"] == len(want)

    def test_down_nodes_contribute_empty_components(self, seed, topology):
        world = rgg_world(seed, topology)
        rng = np.random.default_rng(seed)
        for i in rng.choice(world.n, size=10, replace=False):
            world.set_down(int(i))
        got = components(world)
        want = reference_components(world)
        assert [len(c) for c in got] == [len(c) for c in want]
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
        assert reachable_pair_fraction(world) == (
            sum(len(c) * (len(c) - 1) for c in want) / (world.n * (world.n - 1))
        )

    def test_down_nodes_at_max_ids(self, seed, topology):
        # Downing the highest ids empties the trailing CSR rows on the
        # analytics path -- the reduceat-segmentation regression shape.
        world = rgg_world(seed, topology)
        for i in range(world.n - 4, world.n):
            world.set_down(i)
        got = components(world)
        want = reference_components(world)
        assert [len(c) for c in got] == [len(c) for c in want]
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
        assert reachable_pair_fraction(world) == (
            sum(len(c) * (len(c) - 1) for c in want) / (world.n * (world.n - 1))
        )

    def test_all_nodes_down(self, seed, topology):
        world = rgg_world(seed, topology, n=8)
        for i in range(world.n):
            world.set_down(i)
        got = components(world)
        assert len(got) == 8 and all(len(c) == 0 for c in got)
        assert reachable_pair_fraction(world) == 0.0
        stats = connectivity_stats(world)
        assert stats["largest_component"] == 0.0
        assert stats["isolated"] == 0.0


def test_smallworld_stats_records_kernel_counters():
    from repro.obs.registry import Registry

    g = rgg_graph(1)
    reg = Registry()
    AnalyticsEngine(mode="full", registry=reg).smallworld_stats(g)
    assert reg.value("graphfast.bfs_sources") == g.number_of_nodes()
    assert reg.value("graphfast.triangle_runs") == 1.0
