"""Tests for query target policies and timing behaviour."""

import numpy as np
import pytest

from repro.core import QueryConfig
from repro.sim import Simulator

from .fakes import FakeFabric, FakeServent


class TestTargetPolicies:
    def _pick_many(self, target, num_files=10, n=4000, seed=0):
        sim = Simulator()
        fabric = FakeFabric(sim)
        servent = FakeServent(
            0,
            sim,
            fabric,
            num_files=num_files,
            query_config=QueryConfig(target=target),
            seed=seed,
        )
        engine = servent.query_engine
        return np.array([engine._pick_file() for _ in range(n)])

    def test_uniform_covers_all_files(self):
        picks = self._pick_many("uniform")
        counts = np.bincount(picks, minlength=11)[1:]
        assert (counts > 0).all()
        # roughly uniform: max/min ratio below 2 at this sample size
        assert counts.max() / counts.min() < 2.0

    def test_zipf_prefers_popular_files(self):
        picks = self._pick_many("zipf")
        counts = np.bincount(picks, minlength=11)[1:]
        assert counts[0] > counts[4] > 0
        # rank1:rank5 ratio approx 5 (weight 1 vs 1/5); generous band
        assert 2.5 < counts[0] / counts[4] < 10.0

    def test_picks_in_range(self):
        for target in ("uniform", "zipf"):
            picks = self._pick_many(target, num_files=7, n=500)
            assert picks.min() >= 1 and picks.max() <= 7


class TestQueryTiming:
    def test_first_query_after_warmup_fraction(self):
        sim = Simulator()
        fabric = FakeFabric(sim)
        cfg = QueryConfig(warmup=100.0, response_wait=5.0, gap_min=5.0, gap_max=6.0)
        s = FakeServent(0, sim, fabric, neighbors=[1], query_config=cfg, num_files=3)
        FakeServent(1, sim, fabric, neighbors=[0], num_files=3)
        s.query_engine.start()
        sim.run(until=49.0)
        assert len(s.query_engine.records) == 0  # warmup floor is 0.5*warmup
        sim.run(until=300.0)
        assert len(s.query_engine.records) > 0
        first = s.query_engine.records[0]
        assert first.issued_at >= 50.0

    def test_gap_respected_between_queries(self):
        sim = Simulator()
        fabric = FakeFabric(sim)
        cfg = QueryConfig(warmup=1.0, response_wait=10.0, gap_min=20.0, gap_max=30.0)
        s = FakeServent(0, sim, fabric, neighbors=[1], query_config=cfg, num_files=3)
        FakeServent(1, sim, fabric, neighbors=[0], num_files=3)
        s.query_engine.start()
        sim.run(until=500.0)
        times = [r.issued_at for r in s.query_engine.records]
        gaps = np.diff(times)
        # each cycle = response_wait + U(20, 30)
        assert (gaps >= 30.0 - 1e-9).all() and (gaps <= 40.0 + 1e-9).all()
