"""Tests for the extra mobility models (Gauss-Markov, Random Direction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import Area, GaussMarkov, RandomDirection


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGaussMarkov:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussMarkov(3, Area(), rng(), alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkov(3, Area(), rng(), mean_speed=0)
        with pytest.raises(ValueError):
            GaussMarkov(3, Area(), rng(), update_interval=0)

    @given(st.integers(0, 300), st.floats(0.0, 2000.0))
    @settings(max_examples=30, deadline=None)
    def test_stays_in_area(self, seed, t):
        area = Area(100, 100)
        m = GaussMarkov(6, area, rng(seed))
        assert area.contains(m.positions(t)).all()

    def test_moves_continuously(self):
        m = GaussMarkov(8, Area(), rng(1))
        p0, p1 = m.positions(0.0), m.positions(60.0)
        moved = np.hypot(*(p1 - p0).T)
        assert (moved > 0.5).sum() >= 6

    def test_temporal_correlation(self):
        # With alpha near 1, consecutive segments point the same way far
        # more often than with alpha near 0.
        def mean_turn(alpha, seed=3):
            m = GaussMarkov(
                1, Area(10_000, 10_000), rng(seed), alpha=alpha, update_interval=5.0,
                margin=0.0,
            )
            # place node at the centre so boundary steering never kicks in
            m._origin[0] = m._dest[0] = np.array([5000.0, 5000.0])
            pts = [m.positions(t)[0].copy() for t in np.arange(0, 400, 5.0)]
            headings = [
                np.arctan2(b[1] - a[1], b[0] - a[0])
                for a, b in zip(pts, pts[1:])
                if np.hypot(*(b - a)) > 1e-9
            ]
            turns = np.abs(np.diff(np.unwrap(headings)))
            return turns.mean()

        assert mean_turn(0.95) < mean_turn(0.05)

    def test_speed_clipped_positive(self):
        m = GaussMarkov(5, Area(), rng(2), speed_sigma=5.0)
        m.positions(500.0)  # drive many updates
        assert (m._speed > 0).all()


class TestRandomDirection:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomDirection(2, Area(), rng(), min_speed=0)
        with pytest.raises(ValueError):
            RandomDirection(2, Area(), rng(), max_pause=-1)

    @given(st.integers(0, 300), st.floats(0.0, 3000.0))
    @settings(max_examples=30, deadline=None)
    def test_stays_in_area(self, seed, t):
        area = Area(60, 60)
        m = RandomDirection(5, area, rng(seed))
        assert area.contains(m.positions(t)).all()

    def test_legs_end_on_boundary(self):
        m = RandomDirection(1, Area(50, 50), rng(7), max_pause=0.001)
        # run through several segments; destinations of moving legs must
        # lie on the boundary
        boundary_hits = 0
        for _ in range(40):
            t_end = float(m._t1[0])
            m.positions(t_end + 1e-6)  # force the next segment
            dest = m._dest[0]
            on_edge = (
                dest[0] < 1e-6
                or dest[0] > 50 - 1e-6
                or dest[1] < 1e-6
                or dest[1] > 50 - 1e-6
            )
            if on_edge:
                boundary_hits += 1
        assert boundary_hits >= 15  # moving legs all end at edges

    def test_deterministic(self):
        a = RandomDirection(4, Area(), rng(9)).positions(777.0)
        b = RandomDirection(4, Area(), rng(9)).positions(777.0)
        assert np.array_equal(a, b)


class TestScenarioIntegration:
    def test_all_mobility_options_build(self):
        from repro.mobility import GaussMarkov as GM
        from repro.mobility import RandomDirection as RD
        from repro.scenarios import ScenarioConfig, build_scenario

        for name, cls in (
            ("direction", RD),
            ("gauss-markov", GM),
        ):
            s = build_scenario(ScenarioConfig(num_nodes=10, mobility=name))
            assert isinstance(s.mobility, cls)
