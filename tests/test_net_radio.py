"""Tests for the radio channel, frames and energy accounting."""

import pytest

from repro.net import BROADCAST, EnergyModel, Frame

from .helpers import line_positions, make_world


def collect(node, kind="t"):
    got = []
    node.register(kind, got.append)
    return got


class TestUnicast:
    def test_in_range_delivery(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        got = collect(ch.nodes[1])
        ok = ch.unicast(Frame(src=0, dst=1, kind="t", payload="hi"))
        assert ok
        sim.run()
        assert [f.payload for f in got] == ["hi"]

    def test_out_of_range_fails(self):
        sim, world, ch = make_world([[0, 0], [50, 0]])
        got = collect(ch.nodes[1])
        ok = ch.unicast(Frame(src=0, dst=1, kind="t", payload="hi"))
        assert not ok
        sim.run()
        assert got == []

    def test_latency_applied(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        times = []
        ch.nodes[1].register("t", lambda f: times.append(sim.now))
        ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        sim.run()
        assert times == [ch.latency]

    def test_broadcast_dst_rejected_in_unicast(self):
        _, _, ch = make_world(line_positions(2))
        with pytest.raises(ValueError):
            ch.unicast(Frame(src=0, dst=BROADCAST, kind="t", payload=None))

    def test_sender_pays_even_on_miss(self):
        _, world, ch = make_world([[0, 0], [99, 0]])
        before = world.energy.consumed[0]
        ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        assert world.energy.consumed[0] > before
        assert world.energy.consumed[1] == 0.0

    def test_down_sender_sends_nothing(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        got = collect(ch.nodes[1])
        world.set_down(0)
        assert not ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        sim.run()
        assert got == []


class TestBroadcast:
    def test_reaches_all_neighbors(self):
        # star: node 0 centre, 3 nodes in range, 1 far away
        sim, world, ch = make_world([[10, 10], [15, 10], [10, 15], [5, 10], [90, 10]])
        received = [collect(n) for n in ch.nodes]
        n = ch.broadcast(Frame(src=0, dst=BROADCAST, kind="t", payload="x"))
        assert n == 3
        sim.run()
        assert [len(r) for r in received] == [0, 1, 1, 1, 0]

    def test_energy_charged_tx_once_rx_per_listener(self):
        sim, world, ch = make_world([[0, 0], [5, 0], [0, 5]])
        ch.broadcast(Frame(src=0, dst=BROADCAST, kind="t", payload=None, size=100))
        sim.run()
        e = world.energy
        assert e.tx_count[0] == 1 and e.rx_count[0] == 0
        assert e.rx_count[1] == 1 and e.rx_count[2] == 1

    def test_receiver_died_in_flight(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        got = collect(ch.nodes[1])
        ch.broadcast(Frame(src=0, dst=BROADCAST, kind="t", payload=None))
        world.set_down(1)  # dies before the latency elapses
        sim.run()
        assert got == []


class TestDispatch:
    def test_unknown_kind_ignored(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        ch.unicast(Frame(src=0, dst=1, kind="nobody", payload=None))
        sim.run()  # no handler: dropped silently, no exception

    def test_duplicate_handler_rejected(self):
        _, _, ch = make_world(line_positions(2))
        ch.nodes[0].register("k", lambda f: None)
        with pytest.raises(ValueError):
            ch.nodes[0].register("k", lambda f: None)

    def test_observer_sees_all_deliveries(self):
        sim, world, ch = make_world([[0, 0], [5, 0], [0, 5]])
        seen = []
        ch.on_deliver = lambda nid, f: seen.append(nid)
        ch.broadcast(Frame(src=0, dst=BROADCAST, kind="t", payload=None))
        sim.run()
        assert sorted(seen) == [1, 2]


class TestEnergyModel:
    def test_costs_scale_with_size(self):
        e = EnergyModel(2)
        e.charge_tx(0, 100)
        e.charge_tx(1, 1000)
        assert e.consumed[1] > e.consumed[0]

    def test_depletion(self):
        e = EnergyModel(1, capacity=1e-4)
        assert e.alive(0)
        e.charge_rx(0, 10_000)
        assert not e.alive(0)
        assert e.depleted()[0]
        assert e.remaining(0) <= 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EnergyModel(0)
        with pytest.raises(ValueError):
            EnergyModel(1, capacity=0)

    def test_total(self):
        e = EnergyModel(3)
        e.charge_tx(0, 10)
        e.charge_rx(1, 10)
        assert e.total_consumed() == pytest.approx(
            e.consumed[0] + e.consumed[1]
        )
