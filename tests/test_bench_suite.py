"""Tests for the perf-suite harness and the BENCH document schema."""

import json
import os

import pytest

from benchmarks.perf_suite import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    bench_broadcast_fanout,
    bench_kernel_throughput,
    bench_queue_kernel,
    bench_topology_refresh,
    compare_fanout_lanes,
    compare_metrics_kernels,
    compare_queue_kernel,
    compare_topology_refresh,
    run_suite,
    validate_bench_dict,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


class TestWorkloads:
    def test_kernel_throughput(self):
        r = bench_kernel_throughput(n_events=2_000)
        assert r["events_dispatched"] == 2_000
        assert r["events_per_sec"] > 0

    def test_queue_kernel_lanes_agree(self):
        ref = bench_queue_kernel(500, n_events=10_000, queue="heap")
        cal = bench_queue_kernel(500, n_events=10_000, queue="calendar")
        # Identical schedule -> identical logical work on both lanes.
        assert ref["events_dispatched"] == cal["events_dispatched"]
        assert ref["heap_pushes"] == cal["heap_pushes"]
        assert cal["events_per_sec"] > 0
        # Only the calendar lane reports calibration telemetry.
        assert "calq_buckets" in cal and "calq_buckets" not in ref

    def test_compare_queue_kernel_trace_identical(self):
        cmp_ = compare_queue_kernel(500, n_events=10_000, seeds=(1, 2))
        assert cmp_["semantically_identical"] is True
        assert cmp_["seeds_checked"] == [1, 2]
        assert cmp_["speedup"] > 0

    def test_fanout_lanes_report_heap_traffic(self):
        ref = bench_broadcast_fanout(60, rounds=5, batched=False)
        bat = bench_broadcast_fanout(60, rounds=5, batched=True)
        # Logical event counts match; the heap traffic is what shrinks.
        assert ref["events_dispatched"] == bat["events_dispatched"]
        assert ref["frames_delivered"] == bat["frames_delivered"]
        assert bat["heap_pushes"] < ref["heap_pushes"]

    def test_compare_fanout_lanes_identical(self):
        cmp_ = compare_fanout_lanes(60, rounds=5, seeds=(1,))
        assert cmp_["semantically_identical"] is True
        assert cmp_["push_reduction"] > 1.0
        assert cmp_["seeds_checked"] == [1]

    def test_repeats_keep_deterministic_counters(self):
        once = bench_broadcast_fanout(60, rounds=5, repeats=1)
        thrice = bench_broadcast_fanout(60, rounds=5, repeats=3)
        assert once["events_dispatched"] == thrice["events_dispatched"]
        assert once["heap_pushes"] == thrice["heap_pushes"]
        assert thrice["reps"] == 3
        assert thrice["wall_seconds"] <= thrice["wall_mean"] <= thrice["wall_max"]

    def test_topology_refresh_lanes_diverge_in_effort_only(self):
        full = bench_topology_refresh(30, duration=3.0, lane="full")
        fast = bench_topology_refresh(30, duration=3.0, lane="delta")
        kin = bench_topology_refresh(30, duration=3.0, lane="predictive")
        # Same query stream, bit-identical answers...
        assert full["params"]["fingerprint"] == fast["params"]["fingerprint"]
        assert kin["params"]["fingerprint"] == full["params"]["fingerprint"]
        # ...but only the incremental lanes refreshed incrementally, and
        # only the predictive lane served refreshes from horizons.
        assert fast["delta_rebuilds"] > 0
        assert full["delta_rebuilds"] == 0
        assert kin["kinetic_skips"] + kin["kinetic_refreshes"] > 0
        assert fast["kinetic_refreshes"] == 0
        assert full["kinetic_refreshes"] == 0

    def test_compare_topology_refresh_identical(self):
        cmp_ = compare_topology_refresh(30, duration=3.0, seeds=(1, 2))
        assert cmp_["semantically_identical"] is True
        assert cmp_["seeds_checked"] == [1, 2]
        assert cmp_["speedup"] > 0
        assert cmp_["speedup_predictive"] > 0
        assert {r["params"]["lane"] for r in
                (cmp_["full"], cmp_["delta"], cmp_["predictive"])} == {
                    "full", "delta", "predictive"}

    def test_compare_metrics_kernels_exact(self):
        cmp_ = compare_metrics_kernels(60)
        assert cmp_["semantically_identical"] is True
        assert cmp_["speedup"] > 0
        assert cmp_["networkx"]["params"]["edges"] == cmp_["numpy"]["params"]["edges"]


class TestSuiteDocument:
    def test_quick_suite_valid_and_json_safe(self):
        doc = run_suite(quick=True, sizes=(30,))
        validate_bench_dict(doc)  # no raise
        json.dumps(doc)  # round-trips without custom encoders
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["kind"] == BENCH_KIND
        names = {r["name"] for r in doc["results"]}
        assert names == {
            "kernel_throughput",
            "queue_kernel",
            "broadcast_fanout",
            "scenario_e2e",
            "topology_refresh",
            "metrics_kernels",
            "analytics_plane",
            "query_plane",
            "experiment_plane",
        }
        # The metro flagship is skipped on quick unless asked for.
        assert "metro_flagship" not in names

    def test_quick_suite_metro_opt_in(self):
        doc = run_suite(quick=True, sizes=(30,), metro=40, metro_duration=2.0)
        validate_bench_dict(doc)
        metro = [r for r in doc["results"] if r["name"] == "metro_flagship"]
        assert {r["params"]["lane"] for r in metro} == {"heap", "calendar"}
        cmp_ = [c for c in doc["comparisons"] if c["name"] == "metro_flagship"]
        assert cmp_ and cmp_[0]["n"] == 40
        assert cmp_[0]["semantically_identical"] is True

    def test_committed_document_is_valid(self):
        path = os.path.join(REPO_ROOT, "BENCH_substrate.json")
        with open(path) as fh:
            doc = json.load(fh)
        validate_bench_dict(doc)

        def comparison(name, n):
            found = [
                c for c in doc["comparisons"] if c["name"] == name and c["n"] == n
            ]
            assert found, f"missing {name} comparison at n={n}"
            return found[0]

        # The ISSUE 4 acceptance bar: >= 2x heap-event reduction at
        # n=600 with bit-identical semantics over the checked seeds.
        fanout = comparison("broadcast_fanout", 600)
        assert fanout["push_reduction"] >= 2.0
        assert fanout["semantically_identical"] is True
        # ISSUE 5: both refresh lanes answer the query stream
        # identically, and the vectorized metric kernels beat networkx
        # by >= 5x at n=600.
        refresh = comparison("topology_refresh", 600)
        assert refresh["semantically_identical"] is True
        # ISSUE 7: all three refresh lanes (full/delta/predictive)
        # answer identically on every ladder rung, and the metro-scale
        # refresh tier serves (nearly) every snapshot from mobility
        # horizons -- the O(n) position diff never runs steady-state.
        assert refresh["speedup_predictive"] > 0
        for n in doc["sizes"]:
            assert comparison("topology_refresh", n)["semantically_identical"]
        metro_refresh = comparison("topology_refresh", 10_000)
        assert metro_refresh["semantically_identical"] is True
        kin = [
            r
            for r in doc["results"]
            if r["name"] == "topology_refresh"
            and r["params"]["n"] == 10_000
            and r["params"]["lane"] == "predictive"
        ][0]
        snapshots = kin["rebuilds"] + kin["kinetic_skips"]
        kinetic = kin["kinetic_skips"] + kin["kinetic_refreshes"]
        assert kinetic >= 0.9 * snapshots
        # The metro refresh workload is query-dominated, so lane wall
        # ratios wander +/- 5% between recordings (delta/predictive have
        # measured 0.89/1.02, 1.21/1.43 and 1.05/0.98 on the same code);
        # the structural claim is the kinetic-snapshot fraction above.
        # Gate only that the predictive lane is never a real regression
        # against full rebuilds or the delta lane.
        assert metro_refresh["speedup_predictive"] >= 0.95
        assert (
            metro_refresh["speedup_predictive"]
            >= 0.9 * metro_refresh["speedup"]
        )
        kernels = comparison("metrics_kernels", 600)
        assert kernels["semantically_identical"] is True
        assert kernels["speedup"] >= 5.0
        # ISSUE 6: the calendar lane wins >= 1.5x on the flood-heavy
        # queue workload at n >= 2000 with trace-identical dispatch,
        # and the n=10000 metro-flagship tier completes on both lanes.
        queue_cmps = [
            c
            for c in doc["comparisons"]
            if c["name"] == "queue_kernel" and c["n"] >= 2000
        ]
        assert queue_cmps, "missing queue_kernel comparison at n>=2000"
        assert all(c["semantically_identical"] for c in queue_cmps)
        assert max(c["speedup"] for c in queue_cmps) >= 1.5
        # ISSUE 9: at least one suppressing policy cuts dispatched
        # events >= 2x at the dense n=600 query rung while keeping the
        # answer rate within 5 points of the flood reference, and the
        # metro query rung records both lanes.
        qp = comparison("query_plane", 600)
        assert qp["best_events_reduction"] >= 2.0
        assert qp["events_reduction_counter_2"] >= 2.0
        assert abs(qp["answer_rate_delta_counter_2"]) <= 0.05
        qp_metro = comparison("query_plane", 10_000)
        assert qp_metro["best_events_reduction"] > 0
        qp_lanes = {
            r["params"]["lane"]
            for r in doc["results"]
            if r["name"] == "query_plane" and r["params"]["n"] == 600
        }
        assert qp_lanes == {"flood", "probabilistic", "counter:2", "contact"}
        # ISSUE 10: per suppression policy, the warm-cache reproduce
        # pass replays the figure ladder >= 10x faster than cold with
        # digest-identical artifacts across the serial/parallel/cached
        # lanes, cross-figure dedup collapses figs 5/7/9/11 onto one
        # simulation per (duration, seed), and the warm pass serves
        # every lookup from the archive.
        ep_cmps = [c for c in doc["comparisons"] if c["name"] == "experiment_plane"]
        assert {c["policy"] for c in ep_cmps} == {
            "flood", "probabilistic", "counter:2", "contact"
        }
        for c in ep_cmps:
            assert c["semantically_identical"] is True
            assert c["speedup"] >= 10.0
            assert c["dedup_ratio"] == 4.0
            assert c["hit_rate"] == 1.0
        metro = comparison("metro_flagship", 10_000)
        assert metro["semantically_identical"] is True
        metro_results = [r for r in doc["results"] if r["name"] == "metro_flagship"]
        assert {r["params"]["lane"] for r in metro_results} == {"heap", "calendar"}
        assert all(r["wall_seconds"] > 0 for r in metro_results)
        # Multi-rep timing: the full ladder records spread, not one shot
        # (the metro flagship deliberately runs once per lane).
        for r in doc["results"]:
            if r["name"] in (
                "kernel_throughput",
                "metro_flagship",
                "query_plane",
                "experiment_plane",
            ):
                # query_plane / experiment_plane lanes run once:
                # counters are deterministic and the cold/warm contrast
                # needs a virgin archive per rep anyway.
                continue
            if r["name"] == "topology_refresh" and r["params"]["n"] not in doc["sizes"]:
                continue  # the metro refresh tier runs once per lane
            assert r["reps"] >= 3


class TestValidator:
    def _minimal(self):
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": BENCH_KIND,
            "quick": True,
            "sizes": [30],
            "host": {"platform": "p", "python": "3", "numpy": "2"},
            "git_revision": None,
            "results": [
                {"name": "kernel_throughput", "params": {}, "wall_seconds": 0.1}
            ],
            "comparisons": [],
        }

    def test_minimal_document_accepted(self):
        validate_bench_dict(self._minimal())

    def test_wrong_version_rejected(self):
        doc = self._minimal()
        doc["schema_version"] = 99
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)

    def test_wrong_kind_rejected(self):
        doc = self._minimal()
        doc["kind"] = "topology"
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)

    def test_non_numeric_metric_rejected(self):
        doc = self._minimal()
        doc["results"][0]["events_per_sec"] = "fast"
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)

    def test_negative_wall_rejected(self):
        doc = self._minimal()
        doc["results"][0]["wall_seconds"] = -1.0
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)

    def test_bad_comparison_rejected(self):
        doc = self._minimal()
        doc["comparisons"] = [{"name": "x", "n": 5, "push_reduction": 2.0}]
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)

    def test_comparison_without_push_reduction_accepted(self):
        # Refresh/kernel comparisons are wall-clock only.
        doc = self._minimal()
        doc["comparisons"] = [{"name": "topology_refresh", "n": 5, "speedup": 1.4}]
        validate_bench_dict(doc)

    def test_non_numeric_push_reduction_rejected(self):
        doc = self._minimal()
        doc["comparisons"] = [
            {"name": "x", "n": 5, "push_reduction": "big", "speedup": 1.0}
        ]
        with pytest.raises(BenchSchemaError):
            validate_bench_dict(doc)
