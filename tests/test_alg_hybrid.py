"""Tests for the Hybrid algorithm: master/slave self-organization."""

from repro.core import PeerState

from .overlay_helpers import build_overlay, cluster_positions


def states(overlay):
    return {nid: s.algorithm.state for nid, s in overlay.servents.items()}


class TestRoleAssignment:
    def test_highest_qualifier_becomes_master(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15]]
        quals = {0: 0.9, 1: 0.2, 2: 0.3, 3: 0.1}
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers=quals
        )
        overlay.start(queries=False)
        sim.run(until=300.0)
        st = states(overlay)
        assert st[0] is PeerState.MASTER
        # Everyone else enslaved to node 0.
        for nid in (1, 2, 3):
            assert st[nid] is PeerState.SLAVE
            assert overlay.servents[nid].algorithm.master == 0

    def test_isolated_peer_becomes_master(self):
        pts = [[10, 10], [500, 500]]
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers={0: 0.5, 1: 0.5}
        )
        overlay.start(queries=False)
        sim.run(until=400.0)
        st = states(overlay)
        # Both exhausted the capture ring alone: both masters (and the
        # no-slave demotion cycles them INITIAL <-> MASTER).
        assert st[0] in (PeerState.MASTER, PeerState.INITIAL)
        assert st[1] in (PeerState.MASTER, PeerState.INITIAL)

    def test_max_slaves_respected(self):
        # 6 peers in range of a single strong master.
        pts = [[10 + 2 * i, 10] for i in range(7)]
        quals = {i: 0.1 + 0.01 * i for i in range(1, 7)}
        quals[0] = 0.99
        sim, _, overlay, _ = build_overlay(pts, algorithm="hybrid", qualifiers=quals)
        overlay.start(queries=False)
        sim.run(until=400.0)
        master = overlay.servents[0].algorithm
        assert master.state is PeerState.MASTER
        assert master.slaves.count <= 3

    def test_equal_qualifiers_break_ties_by_id(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers={0: 0.5, 1: 0.5}
        )
        overlay.start(queries=False)
        sim.run(until=300.0)
        st = states(overlay)
        assert (st[0], st[1]) in (
            (PeerState.SLAVE, PeerState.MASTER),
            (PeerState.MASTER, PeerState.SLAVE),
        )
        # the higher id wins the tie
        if st[1] is PeerState.MASTER:
            assert overlay.servents[0].algorithm.master == 1


class TestMasterInterconnect:
    def test_masters_connect_to_each_other(self):
        pts = cluster_positions(n_clusters=2, per_cluster=3, gap=20.0)
        quals = {0: 0.9, 1: 0.1, 2: 0.2, 3: 0.95, 4: 0.15, 5: 0.25}
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers=quals, radio_range=15.0
        )
        overlay.start(queries=False)
        sim.run(until=600.0)
        st = states(overlay)
        masters = [nid for nid, s in st.items() if s is PeerState.MASTER]
        assert 0 in masters and 3 in masters
        assert overlay.servents[0].connections.has(3) or overlay.servents[
            3
        ].connections.has(0)

    def test_slaves_only_neighbor_is_master(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        quals = {0: 0.9, 1: 0.1, 2: 0.2}
        sim, _, overlay, _ = build_overlay(pts, algorithm="hybrid", qualifiers=quals)
        overlay.start(queries=False)
        sim.run(until=300.0)
        for nid in (1, 2):
            alg = overlay.servents[nid].algorithm
            if alg.state is PeerState.SLAVE:
                assert overlay.servents[nid].overlay_neighbors() == [0]

    def test_master_overlay_neighbors_include_slaves(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        quals = {0: 0.9, 1: 0.1, 2: 0.2}
        sim, _, overlay, _ = build_overlay(pts, algorithm="hybrid", qualifiers=quals)
        overlay.start(queries=False)
        sim.run(until=300.0)
        nbrs = set(overlay.servents[0].overlay_neighbors())
        assert {1, 2} <= nbrs


class TestReconfiguration:
    def test_slave_resets_when_master_dies(self):
        pts = [[10, 10], [15, 10]]
        quals = {0: 0.9, 1: 0.1}
        sim, world, overlay, _ = build_overlay(pts, algorithm="hybrid", qualifiers=quals)
        overlay.start(queries=False)
        sim.run(until=200.0)
        assert overlay.servents[1].algorithm.state is PeerState.SLAVE
        world.set_down(0)
        sim.run(until=600.0)
        alg1 = overlay.servents[1].algorithm
        assert alg1.master != 0
        assert alg1.state in (PeerState.INITIAL, PeerState.MASTER)

    def test_master_without_slaves_demotes(self):
        # A master alone in radio range: after MAXTIMERMASTER it resets.
        pts = [[10, 10], [500, 500]]
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers={0: 0.9, 1: 0.1}
        )
        overlay.start(queries=False)
        # Wait until node 0 first becomes master.
        became_master = demoted = False
        for _ in range(600):
            sim.run(until=sim.now + 5.0)
            st = overlay.servents[0].algorithm.state
            if st is PeerState.MASTER:
                became_master = True
            if became_master and st is PeerState.INITIAL:
                demoted = True
                break
        assert became_master and demoted

    def test_new_master_elected_after_old_dies(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        quals = {0: 0.9, 1: 0.5, 2: 0.2}
        sim, world, overlay, _ = build_overlay(pts, algorithm="hybrid", qualifiers=quals)
        overlay.start(queries=False)
        sim.run(until=300.0)
        world.set_down(0)
        sim.run(until=1500.0)
        st = states(overlay)
        # The survivors reorganize: node 1 (higher qualifier) masters 2.
        assert st[1] is PeerState.MASTER
        assert st[2] is PeerState.SLAVE
        assert overlay.servents[2].algorithm.master == 1
