"""Tests for generator-based processes."""

import pytest

from repro.sim import WAIT, Process, Simulator


class TestProcess:
    def test_periodic_loop(self):
        sim = Simulator()
        ticks = []

        def loop():
            while True:
                ticks.append(sim.now)
                yield 2.0

        Process(sim, loop())
        sim.run(until=5.0)
        assert ticks == [0.0, 2.0, 4.0]

    def test_process_ends_normally(self):
        sim = Simulator()
        out = []

        def once():
            yield 1.0
            out.append("done")

        p = Process(sim, once())
        sim.run()
        assert out == ["done"]
        assert not p.alive

    def test_wait_and_wake(self):
        sim = Simulator()
        out = []

        def waiter():
            got = yield WAIT
            out.append((sim.now, got))

        p = Process(sim, waiter(), name="w")
        sim.schedule(3.0, p.wake, "signal")
        sim.run()
        assert out == [(3.0, "signal")]

    def test_wake_when_not_waiting_is_noop(self):
        sim = Simulator()

        def loop():
            while True:
                yield 1.0

        p = Process(sim, loop())
        sim.run(until=0.5)
        p.wake()  # parked on a delay, not WAIT: must be ignored
        sim.run(until=2.5)
        assert p.alive

    def test_kill_stops_process(self):
        sim = Simulator()
        ticks = []

        def loop():
            while True:
                ticks.append(sim.now)
                yield 1.0

        p = Process(sim, loop())
        sim.run(until=2.0)
        p.kill()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not p.alive

    def test_negative_yield_raises(self):
        sim = Simulator()

        def bad():
            yield -1.0

        Process(sim, bad())
        with pytest.raises(ValueError):
            sim.run()

    def test_non_numeric_yield_raises(self):
        sim = Simulator()

        def bad():
            yield "soon"

        Process(sim, bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        out = []

        def mk(tag, period):
            def loop():
                while True:
                    out.append((sim.now, tag))
                    yield period

            return loop

        Process(sim, mk("a", 2.0)())
        Process(sim, mk("b", 3.0)())
        sim.run(until=6.0)
        assert out == [
            (0.0, "a"),
            (0.0, "b"),
            (2.0, "a"),
            (3.0, "b"),
            (4.0, "a"),
            # b's t=6 wake-up was scheduled at t=3, a's at t=4, so b fires first
            (6.0, "b"),
            (6.0, "a"),
        ]
