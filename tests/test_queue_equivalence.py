"""Calendar-queue lane is bit-identical to the heap lane, end to end.

tests/test_calqueue.py proves exact dispatch-trace equality at the
kernel level; this suite closes the loop at the *scenario* level: full
runs -- churn, finite energy, lossy/CSMA channels, dense and sparse
topologies, several seeds -- must produce semantically identical
evidence on ``queue="heap"`` and ``queue="calendar"``.  The comparison
surface is ``repro.obs.compare``: everything except the scheduler/
topology/analytics *cost* metrics (the calendar lane's calq_* telemetry
among them) must agree to the last bit.
"""

import numpy as np
import pytest

from repro.obs.compare import (
    is_scheduler_cost_key,
    semantic_snapshot,
    semantic_timeseries,
    snapshot_diff,
)
from repro.scenarios.builder import build_scenario
from repro.scenarios.churn import ChurnProcess
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import harvest

SEEDS = (1, 2, 3)


def _run_lane(seed: int, topology: str, queue: str):
    """One full scenario on one queue lane; returns harvested evidence."""
    cfg = ScenarioConfig(
        num_nodes=40,
        duration=40.0,
        seed=seed,
        # Exercise both non-ideal channels across the grid: collisions on
        # the dense backend, probabilistic loss on the sparse one.
        mac="csma" if topology == "dense" else "lossy",
        energy_capacity=0.05,
        topology=topology,
        obs_interval=10.0,
        queue=queue,
    )
    simulation = build_scenario(cfg)
    # Attach churn on a dedicated stream so both lanes draw identical
    # death/revival sequences.
    ChurnProcess(
        simulation.sim,
        simulation.world,
        np.random.default_rng(10_000 + seed),
        death_rate=0.05,
        mean_downtime=10.0,
    ).start()
    simulation.run()
    result = harvest(simulation)
    return {
        "snapshot": semantic_snapshot(simulation.registry),
        "timeseries": semantic_timeseries(result.timeseries),
        "events": result.events,
        "energy": result.energy,
        "totals": result.totals,
        "stats": simulation.sim.stats(),
    }


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_queue_lanes_bit_identical(seed, topology):
    ref = _run_lane(seed, topology, queue="heap")
    cal = _run_lane(seed, topology, queue="calendar")
    # Full semantic registry snapshot: equal key sets, equal values.
    assert snapshot_diff(ref["snapshot"], cal["snapshot"]) == {}
    # Sampled time-series rows match bit-for-bit too.
    assert ref["timeseries"] == cal["timeseries"]
    # Derived figures agree exactly.
    assert ref["events"] == cal["events"]
    assert ref["totals"] == cal["totals"]
    np.testing.assert_array_equal(ref["energy"], cal["energy"])
    # Identical op sequences: even the raw scheduler-cost counters agree
    # between lanes (the calendar lane just reports extra calq_* keys).
    shared = {k: v for k, v in cal["stats"].items() if not k.startswith("calq_")}
    assert shared == ref["stats"]
    # The calendar lane actually calibrated on a 40-node scenario.
    assert cal["stats"]["calq_buckets"] >= 8


def test_calq_metrics_classified_as_cost():
    assert is_scheduler_cost_key("kernel.calq_resizes")
    assert is_scheduler_cost_key("kernel.calq_spills")
    assert is_scheduler_cost_key("kernel.calq_buckets")
    assert is_scheduler_cost_key("kernel.calq_occupancy")
    assert not is_scheduler_cost_key("kernel.events_dispatched")


def test_config_rejects_unknown_queue():
    with pytest.raises(ValueError):
        ScenarioConfig(queue="splay")


def test_config_roundtrip_preserves_queue():
    cfg = ScenarioConfig(queue="heap")
    assert ScenarioConfig.from_dict(cfg.to_dict()).queue == "heap"
    assert ScenarioConfig().queue == "calendar"
