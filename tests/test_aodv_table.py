"""Tests for the AODV route table freshness rules."""

from repro.aodv import SEQ_UNKNOWN, RouteTable


def make_table():
    return RouteTable(owner=0)


class TestOffer:
    def test_first_offer_installs(self):
        t = make_table()
        assert t.offer(5, next_hop=1, hop_count=3, dest_seq=10, expires_at=100.0)
        entry = t.lookup(5, now=0.0)
        assert entry is not None and entry.next_hop == 1 and entry.hop_count == 3

    def test_newer_seq_wins(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        assert t.offer(5, 2, 9, 11, 100.0)  # worse hops but fresher seq
        assert t.lookup(5, 0.0).next_hop == 2

    def test_older_seq_rejected(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        assert not t.offer(5, 2, 1, 9, 100.0)
        assert t.lookup(5, 0.0).next_hop == 1

    def test_equal_seq_fewer_hops_wins(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        assert t.offer(5, 2, 2, 10, 100.0)
        assert not t.offer(5, 3, 2, 10, 100.0)  # ties lose
        assert t.lookup(5, 0.0).next_hop == 2

    def test_unknown_seq_only_fills_holes(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        assert not t.offer(5, 2, 1, SEQ_UNKNOWN, 100.0)
        t.invalidate(5)
        assert t.offer(5, 2, 1, SEQ_UNKNOWN, 100.0)

    def test_known_seq_replaces_unknown(self):
        t = make_table()
        t.offer(5, 1, 3, SEQ_UNKNOWN, 100.0)
        assert t.offer(5, 2, 5, 1, 100.0)


class TestLifetime:
    def test_expired_route_invisible(self):
        t = make_table()
        t.offer(5, 1, 3, 10, expires_at=50.0)
        assert t.lookup(5, now=49.0) is not None
        assert t.lookup(5, now=51.0) is None

    def test_refresh_extends(self):
        t = make_table()
        t.offer(5, 1, 3, 10, expires_at=50.0)
        t.refresh(5, expires_at=80.0)
        assert t.lookup(5, now=70.0) is not None

    def test_refresh_never_shortens(self):
        t = make_table()
        t.offer(5, 1, 3, 10, expires_at=50.0)
        t.refresh(5, expires_at=10.0)
        assert t.lookup(5, now=40.0) is not None


class TestInvalidation:
    def test_invalidate_bumps_seq(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        entry = t.invalidate(5)
        assert entry is not None and entry.dest_seq == 11
        assert t.lookup(5, 0.0) is None

    def test_invalidate_missing_is_none(self):
        assert make_table().invalidate(99) is None

    def test_invalidate_via_next_hop(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        t.offer(6, 1, 2, 4, 100.0)
        t.offer(7, 2, 2, 4, 100.0)
        broken = t.invalidate_via(1)
        assert sorted(e.dest for e in broken) == [5, 6]
        assert t.lookup(7, 0.0) is not None

    def test_reinstall_after_invalidation_needs_fresher_seq(self):
        t = make_table()
        t.offer(5, 1, 3, 10, 100.0)
        t.invalidate(5)  # seq now 11
        assert not t.offer(5, 2, 1, 10, 100.0)  # stale
        assert t.offer(5, 2, 1, 11, 100.0)

    def test_len_and_iter(self):
        t = make_table()
        t.offer(5, 1, 1, 1, 10.0)
        t.offer(6, 1, 1, 1, 10.0)
        assert len(t) == 2
        assert sorted(e.dest for e in t) == [5, 6]
