"""Integration: every routing protocol sustains the overlay under the
paper's mobility (not just on static line topologies)."""

import pytest

from repro.scenarios import ScenarioConfig, run_scenario


@pytest.mark.parametrize("routing", ("aodv", "dsdv", "dsr", "oracle"))
def test_protocol_sustains_overlay_under_waypoint_mobility(routing):
    res = run_scenario(
        ScenarioConfig(
            num_nodes=40,
            duration=400.0,
            algorithm="regular",
            routing=routing,
            seed=47,
        )
    )
    # The overlay forms...
    assert res.overlay_stats["mean_degree"] > 0.3, routing
    # ...pings flow (maintenance works over this router)...
    assert res.totals["ping"] > 0, routing
    # ...and at least some queries get answered.
    answered = sum(s.answered for s in res.file_stats)
    assert answered > 0, routing


@pytest.mark.parametrize("routing", ("aodv", "dsdv", "dsr"))
def test_protocols_deterministic(routing):
    cfg = ScenarioConfig(
        num_nodes=25, duration=200.0, algorithm="regular", routing=routing, seed=53
    )
    a, b = run_scenario(cfg), run_scenario(cfg)
    assert a.totals == b.totals
    assert a.events == b.events
