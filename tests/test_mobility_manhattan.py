"""Tests for Manhattan-grid mobility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import Area, ManhattanGrid


def rng(seed=0):
    return np.random.default_rng(seed)


class TestManhattan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ManhattanGrid(2, Area(), rng(), blocks_x=0)
        with pytest.raises(ValueError):
            ManhattanGrid(2, Area(), rng(), min_speed=0)
        with pytest.raises(ValueError):
            ManhattanGrid(2, Area(), rng(), p_straight=1.5)

    @given(st.integers(0, 200), st.floats(0.0, 2000.0))
    @settings(max_examples=25, deadline=None)
    def test_stays_in_area(self, seed, t):
        area = Area(100, 100)
        m = ManhattanGrid(6, area, rng(seed))
        assert area.contains(m.positions(t)).all()

    def test_positions_on_grid_lines(self):
        area = Area(100, 100)
        m = ManhattanGrid(8, area, rng(3), blocks_x=4, blocks_y=4)
        sx, sy = 25.0, 25.0
        for t in np.arange(0.0, 500.0, 13.0):
            pos = m.positions(float(t))
            on_vertical = np.isclose(pos[:, 0] % sx, 0) | np.isclose(pos[:, 0] % sx, sx)
            on_horizontal = np.isclose(pos[:, 1] % sy, 0) | np.isclose(pos[:, 1] % sy, sy)
            assert (on_vertical | on_horizontal).all()

    def test_segment_endpoints_are_intersections(self):
        area = Area(100, 100)
        m = ManhattanGrid(4, area, rng(5), blocks_x=4, blocks_y=4)
        m.positions(300.0)  # drive several segments
        sx, sy = 25.0, 25.0
        dest = m._dest
        assert np.allclose(dest[:, 0] % sx, 0, atol=1e-6) | np.allclose(
            dest[:, 0] % sx, sx, atol=1e-6
        )
        # both coordinates snap to the lattice
        for d in dest:
            assert min(d[0] % sx, sx - d[0] % sx) < 1e-6
            assert min(d[1] % sy, sy - d[1] % sy) < 1e-6

    def test_nodes_move(self):
        m = ManhattanGrid(10, Area(), rng(7))
        p0, p1 = m.positions(0.0), m.positions(200.0)
        assert (np.hypot(*(p1 - p0).T) > 1.0).sum() >= 8

    def test_straight_preference(self):
        # With p_straight=1, a node in the middle keeps direction until
        # it must turn at the boundary: direction changes are rare.
        def turns(p_straight, seed=11):
            m = ManhattanGrid(
                1, Area(1000, 1000), rng(seed), blocks_x=20, blocks_y=20,
                p_straight=p_straight,
            )
            headings = []
            prev = m.positions(0.0)[0].copy()
            for t in np.arange(5.0, 2000.0, 5.0):
                cur = m.positions(float(t))[0]
                d = cur - prev
                if np.hypot(*d) > 1e-9:
                    headings.append(np.arctan2(d[1], d[0]).round(3))
                prev = cur.copy()
            return sum(1 for a, b in zip(headings, headings[1:]) if a != b)

        assert turns(1.0) < turns(0.0)

    def test_scenario_integration(self):
        from repro.scenarios import ScenarioConfig, build_scenario

        s = build_scenario(ScenarioConfig(num_nodes=10, mobility="manhattan"))
        assert isinstance(s.mobility, ManhattanGrid)
