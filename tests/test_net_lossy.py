"""Tests for the lossy (smooth-disk) radio channel."""

import numpy as np
import pytest

from repro.mobility import Area, Static
from repro.net import Frame, World
from repro.net.lossy import LossyChannel
from repro.sim import Simulator


def make_lossy(positions, radio_range=10.0, **kw):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    ch = LossyChannel(sim, world, **kw)
    return sim, world, ch


class TestDeliveryProbability:
    def test_solid_core_certain(self):
        _, _, ch = make_lossy([[0, 0], [5, 0]], solid=0.8)  # 5 m < 8 m core
        assert ch.delivery_probability(0, 1) == 1.0

    def test_edge_probability(self):
        _, _, ch = make_lossy([[0, 0], [10, 0]], solid=0.8, edge_p=0.3)
        assert ch.delivery_probability(0, 1) == pytest.approx(0.3)

    def test_midway_linear(self):
        _, _, ch = make_lossy([[0, 0], [9, 0]], solid=0.8, edge_p=0.0)
        # d=9: halfway between s=8 and r=10 -> p = 0.5
        assert ch.delivery_probability(0, 1) == pytest.approx(0.5)

    def test_beyond_range_zero(self):
        _, _, ch = make_lossy([[0, 0], [15, 0]])
        assert ch.delivery_probability(0, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_lossy([[0, 0], [5, 0]], solid=0.0)
        with pytest.raises(ValueError):
            make_lossy([[0, 0], [5, 0]], edge_p=2.0)


class TestLossBehaviour:
    def test_core_links_always_deliver(self):
        sim, _, ch = make_lossy([[0, 0], [5, 0]])
        got = []
        ch.nodes[1].register("t", got.append)
        for _ in range(50):
            ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        sim.run()
        assert len(got) == 50
        assert ch.losses == 0

    def test_edge_links_lose_roughly_expected_fraction(self):
        sim, _, ch = make_lossy([[0, 0], [9.9, 0]], solid=0.8, edge_p=0.3, seed=4)
        got = []
        ch.nodes[1].register("t", got.append)
        n = 400
        for _ in range(n):
            ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        sim.run()
        p = ch.delivery_probability(0, 1)
        assert 0.3 <= p <= 0.4
        assert abs(len(got) / n - p) < 0.1  # matches the model
        assert ch.losses == n - len(got)

    def test_broadcast_losses_independent_per_receiver(self):
        # two edge receivers: some broadcasts reach one but not the other
        sim, _, ch = make_lossy(
            [[0, 0], [9.5, 0], [0, 9.5]], solid=0.5, edge_p=0.5, seed=9
        )
        got1, got2 = [], []
        ch.nodes[1].register("t", got1.append)
        ch.nodes[2].register("t", got2.append)
        for _ in range(200):
            ch.broadcast(Frame(src=0, dst=-1, kind="t", payload=None))
        sim.run()
        assert 0 < len(got1) < 200 and 0 < len(got2) < 200
        assert len(got1) != len(got2)  # independent draws

    def test_deterministic_given_seed(self):
        def run(seed):
            sim, _, ch = make_lossy([[0, 0], [9.5, 0]], seed=seed)
            got = []
            ch.nodes[1].register("t", got.append)
            for _ in range(100):
                ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
            sim.run()
            return len(got)

        assert run(7) == run(7)


class TestScenarioOnLossy:
    def test_overlay_survives_lossy_links(self):
        from repro.scenarios import ScenarioConfig, run_scenario

        res = run_scenario(
            ScenarioConfig(
                num_nodes=30, duration=300.0, algorithm="regular", mac="lossy", seed=61
            )
        )
        assert res.overlay_stats["mean_degree"] > 0.2
        assert res.totals["ping"] > 0
