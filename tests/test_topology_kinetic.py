"""The predictive (kinetic) topology lane is bit-identical to full/delta.

The predictive lane never diffs the full position array: the mobility
plane publishes closed-form per-node horizons (earliest position change,
earliest grid-cell crossing) and the backend re-examines only nodes
whose horizon passed.  Refreshes while *every* horizon lies ahead are
O(1) skips -- no position evaluation, epoch stands still.

Proof obligations covered here:

* full-scenario A/B equivalence (predictive vs full and vs delta) over
  dense/sparse backends, csma/lossy channels, churn, finite energy and
  several seeds -- semantic registry snapshots, time series, energy
  ledgers and totals must match exactly;
* lockstep query identity at every step under sustained mobility;
* a paused-heavy waypoint scenario actually exercises the O(1) skip
  gate (``topology.kinetic_skips > 0``);
* the dist-cache/horizon edge case: a node dying (churn or energy
  depletion) *before its predicted crossing* must disarm the horizons,
  bump the epoch, and disappear from answers immediately;
* graceful degradation for mobility sources without horizon support;
* legacy ``topology_delta`` config mapping.
"""

import numpy as np
import pytest

from repro.mobility import Area, RandomWaypoint
from repro.net import World
from repro.obs.compare import semantic_snapshot, semantic_timeseries, snapshot_diff
from repro.scenarios.builder import build_scenario
from repro.scenarios.churn import ChurnProcess
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import harvest
from repro.sim import Simulator

SEEDS = (1, 2, 3)


def advance(world, t):
    world.sim.schedule_at(t, lambda: None)
    world.sim.run(until=t)


def _run_lane(seed: int, topology: str, lane: str, *, churn: bool = True):
    """One full scenario on one refresh lane; returns harvested evidence."""
    cfg = ScenarioConfig(
        num_nodes=40,
        duration=40.0,
        seed=seed,
        # Exercise both non-ideal channels across the grid: collisions on
        # the dense backend, probabilistic loss on the sparse one.
        mac="csma" if topology == "dense" else "lossy",
        energy_capacity=0.05,
        topology=topology,
        obs_interval=10.0,
        topology_refresh=lane,
    )
    simulation = build_scenario(cfg)
    if churn:
        ChurnProcess(
            simulation.sim,
            simulation.world,
            np.random.default_rng(10_000 + seed),
            death_rate=0.05,
            mean_downtime=10.0,
        ).start()
    simulation.run()
    result = harvest(simulation)
    return {
        "snapshot": semantic_snapshot(simulation.registry),
        "timeseries": semantic_timeseries(result.timeseries),
        "events": result.events,
        "energy": result.energy,
        "totals": result.totals,
        "topology": simulation.world.topology,
    }


def _assert_equivalent(ref, kin):
    assert snapshot_diff(ref["snapshot"], kin["snapshot"]) == {}
    assert ref["timeseries"] == kin["timeseries"]
    assert ref["events"] == kin["events"]
    assert ref["totals"] == kin["totals"]
    np.testing.assert_array_equal(ref["energy"], kin["energy"])


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_predictive_bit_identical_to_full(seed, topology):
    full = _run_lane(seed, topology, "full")
    kin = _run_lane(seed, topology, "predictive")
    _assert_equivalent(full, kin)
    # The kinetic machinery really engaged on the predictive lane:
    # every incremental refresh was served from mobility horizons.
    assert kin["topology"].delta_rebuilds > 0
    assert kin["topology"].kinetic_refreshes + kin["topology"].kinetic_skips > 0
    assert kin["topology"].horizon_recomputes > 0
    assert full["topology"].delta_rebuilds == 0
    assert full["topology"].kinetic_refreshes == 0


@pytest.mark.parametrize("topology", ["dense", "sparse"])
def test_predictive_bit_identical_to_delta(topology):
    delta = _run_lane(1, topology, "delta")
    kin = _run_lane(1, topology, "predictive")
    _assert_equivalent(delta, kin)
    assert delta["topology"].kinetic_refreshes == 0


# ----------------------------------------------------------------------
# unit level: skip gate, horizons, churn interaction
# ----------------------------------------------------------------------
def _waypoint_world(
    n,
    topology="sparse",
    lane="predictive",
    seed=0,
    *,
    max_speed=8.0,
    min_speed=2.0,
    max_pause=1.0,
    snapshot_interval=0.0,
):
    mobility = RandomWaypoint(
        n,
        Area(60.0, 60.0),
        np.random.default_rng(seed),
        max_speed=max_speed,
        min_speed=min_speed,
        max_pause=max_pause,
    )
    sim = Simulator()
    return World(
        sim,
        mobility,
        radio_range=12.0,
        topology=topology,
        topology_refresh=lane,
        snapshot_interval=snapshot_interval,
    )


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_lockstep_queries_identical_under_mobility(seed, topology):
    """Every query answer matches the full-rebuild lane at every step."""
    kin = _waypoint_world(25, topology, "predictive", seed)
    full = _waypoint_world(25, topology, "full", seed)
    for t in np.linspace(0.5, 20.0, 14):
        advance(kin, float(t))
        advance(full, float(t))
        for i in range(25):
            np.testing.assert_array_equal(kin.neighbors(i), full.neighbors(i))
        for src in (0, 7, 19):
            np.testing.assert_array_equal(kin.hops_from(src), full.hops_from(src))
        np.testing.assert_array_equal(kin.degrees(), full.degrees())
        np.testing.assert_array_equal(kin.adjacency(), full.adjacency())
    assert kin.topology.kinetic_refreshes > 0


class TestKineticSkipGate:
    def test_all_paused_refreshes_skip_at_o1(self):
        # Waypoint nodes start paused (uniform [0, max_pause] pauses):
        # with a long max_pause every early refresh falls before the
        # min position-change horizon and must skip without touching
        # positions, and the epoch must stand still.
        world = _waypoint_world(12, "sparse", "predictive", seed=5, max_pause=200.0)
        world.hops_from(0)  # build + arm
        e0 = world.adjacency_epoch
        rebuilds0 = world.topology.rebuilds
        for t in (0.05, 0.1, 0.15, 0.2):
            advance(world, t)
            world.neighbors(3)
        assert world.topology.kinetic_skips == 4
        assert world.topology.rebuilds == rebuilds0  # skips are not rebuilds
        assert world.adjacency_epoch == e0
        # The memoized BFS vector survived every skip.
        hits0 = world.topology.dist_cache_hits
        world.hops_from(0)
        assert world.topology.dist_cache_hits == hits0 + 1

    def test_skip_gate_reopens_after_first_mover(self):
        world = _waypoint_world(6, "sparse", "predictive", seed=2, max_pause=3.0)
        world.neighbors(0)
        # Past every pause end somebody moves: refreshes must not skip
        # forever, and answers keep matching the reference (covered by
        # the lockstep test); here we check the lane keeps refreshing.
        advance(world, 30.0)
        world.neighbors(0)
        kin0 = world.topology.kinetic_refreshes
        advance(world, 31.0)
        world.neighbors(0)
        assert world.topology.kinetic_refreshes > 0
        assert world.topology.kinetic_refreshes >= kin0

    def test_paused_heavy_scenario_skips_majority(self):
        # Scenario-level: long pauses, brisk trips -- most snapshots in
        # the run fall inside all-paused windows and skip outright.
        cfg = ScenarioConfig(
            num_nodes=30,
            duration=60.0,
            seed=4,
            topology="sparse",
            mobility="waypoint",
            max_speed=10.0,
            max_pause=500.0,
            topology_refresh="predictive",
        )
        simulation = build_scenario(cfg)
        simulation.run()
        topo = simulation.world.topology
        assert topo.kinetic_skips > 0
        # Diff-free refreshes + skips account for every incremental
        # refresh: the O(n) position diff never ran on this lane.
        assert topo.kinetic_refreshes == topo.delta_rebuilds


class TestDeathBeforePredictedCrossing:
    def test_churn_death_disarms_horizons_and_bumps_epoch(self):
        world = _waypoint_world(12, "sparse", "predictive", seed=5, max_pause=200.0)
        world.hops_from(0)
        advance(world, 0.1)
        world.neighbors(0)
        assert world.topology.kinetic_skips > 0  # deep inside a skip window
        assert world.topology._change_at is not None
        e0 = world.adjacency_epoch
        victim = int(world.neighbors(0)[0]) if world.neighbors(0).size else 1
        world.set_down(victim)
        # The death invalidated the snapshot: horizons disarmed, epoch
        # bumped, and the node vanishes from answers immediately even
        # though its predicted crossing is far in the future.
        assert world.topology._change_at is None
        assert world.adjacency_epoch > e0
        advance(world, 0.2)
        assert victim not in world.neighbors(0)
        assert world.hops_from(victim).max() == -1  # UNREACHABLE everywhere
        # The lane re-arms on the rebuild and keeps skipping afterwards.
        skips0 = world.topology.kinetic_skips
        advance(world, 0.3)
        world.neighbors(0)
        assert world.topology.kinetic_skips == skips0 + 1

    def test_energy_depletion_death_matches_full_lane(self):
        # Finite energy + churn on the predictive lane, lockstep against
        # the reference: depletion deaths arrive via invalidate() and
        # must never leave a stale kinetic snapshot behind.
        def build(lane):
            cfg = ScenarioConfig(
                num_nodes=30,
                duration=30.0,
                seed=2,
                topology="sparse",
                energy_capacity=0.02,
                topology_refresh=lane,
            )
            simulation = build_scenario(cfg)
            churn = ChurnProcess(
                simulation.sim,
                simulation.world,
                np.random.default_rng(77),
                death_rate=0.1,
                mean_downtime=5.0,
            )
            churn.start()
            return simulation, churn

        (kin, kin_churn), (full, _) = build("predictive"), build("full")
        kin.run()
        full.run()
        assert (
            snapshot_diff(
                semantic_snapshot(kin.registry), semantic_snapshot(full.registry)
            )
            == {}
        )
        # Deaths really happened under kinetic maintenance (some may
        # have been revived again by the horizon -- the counter, not the
        # final mask, is the witness).
        assert kin_churn.deaths > 0


class TestGracefulDegradation:
    def test_mobility_without_horizons_falls_back_to_delta(self):
        class Trace:  # minimal mobility source: no horizon support
            def __init__(self, n):
                self.n = n
                self._base = np.linspace(0.0, 50.0, 2 * n).reshape(n, 2)

            def positions(self, t):
                return self._base + 0.01 * t

        sim = Simulator()
        world = World(
            sim, Trace(10), radio_range=12.0, topology="sparse",
            topology_refresh="predictive",
        )
        world.neighbors(0)
        for t in (1.0, 2.0):
            advance(world, t)
            world.neighbors(0)
        # No horizons -> never kinetic, but the delta diff still runs
        # and answers stay live.
        assert world.topology.kinetic_refreshes == 0
        assert world.topology.kinetic_skips == 0
        assert world.topology.delta_rebuilds == 2

    def test_backwards_clock_takes_the_safe_path(self):
        world = _waypoint_world(10, "sparse", "predictive", seed=3)
        advance(world, 5.0)
        world.neighbors(0)
        ref = _waypoint_world(10, "sparse", "full", seed=3)
        advance(ref, 5.0)
        ref.neighbors(0)
        # A backwards jump must not be served from kinetic state (the
        # kernel never rewinds on its own; poke the clock directly).
        world.sim._now = 2.0
        ref.sim._now = 2.0
        for i in range(10):
            np.testing.assert_array_equal(world.neighbors(i), ref.neighbors(i))


class TestConfigLaneResolution:
    def test_default_is_predictive(self):
        assert ScenarioConfig().topology_refresh == "predictive"
        assert ScenarioConfig().topology_delta is True

    def test_legacy_false_pins_full(self):
        cfg = ScenarioConfig(topology_delta=False)
        assert cfg.topology_refresh == "full"
        assert cfg.topology_delta is False

    def test_explicit_lane_wins_over_legacy_bool(self):
        cfg = ScenarioConfig(topology_delta=False, topology_refresh="delta")
        assert cfg.topology_refresh == "delta"
        assert cfg.topology_delta is True  # rewritten to mirror the lane

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="refresh lane"):
            ScenarioConfig(topology_refresh="psychic")

    def test_round_trip_preserves_lane(self):
        for lane in ("predictive", "delta", "full"):
            cfg = ScenarioConfig(topology_refresh=lane)
            again = ScenarioConfig.from_dict(cfg.to_dict())
            assert again.topology_refresh == lane

    def test_archived_legacy_dict_resolves(self):
        # Pre-lane archives carry only the bool.
        d = ScenarioConfig().to_dict()
        del d["topology_refresh"]
        d["topology_delta"] = False
        assert ScenarioConfig.from_dict(d).topology_refresh == "full"
        d["topology_delta"] = True
        assert ScenarioConfig.from_dict(d).topology_refresh == "predictive"

    def test_world_legacy_bool_still_selects_delta(self):
        world = _waypoint_world(6, "sparse", "predictive", seed=1)
        assert world.topology.refresh_lane == "predictive"
        mobility = RandomWaypoint(6, Area(60.0, 60.0), np.random.default_rng(1))
        legacy = World(Simulator(), mobility, topology="sparse", topology_delta=True)
        assert legacy.topology.refresh_lane == "delta"
        legacy_full = World(
            Simulator(), mobility, topology="sparse", topology_delta=False
        )
        assert legacy_full.topology.refresh_lane == "full"


class TestProofGateController:
    def test_gate_seeds_at_historical_bound(self):
        world = _waypoint_world(40, "sparse", "predictive", seed=1)
        world.neighbors(0)
        assert world.topology._gate == pytest.approx(10.0)  # max(8, 25% of 40)

    def test_sustained_failures_shrink_the_gate(self):
        # n=60 seeds the gate at 15 (above its floor of 8) so failures
        # have room to back it off; long pauses keep the simultaneous
        # mover count under the gate so proofs are actually attempted,
        # while the fast trips that do run keep flipping links.
        world = _waypoint_world(60, "sparse", "predictive", seed=1, max_pause=100.0)
        world.hops_from(0)  # cache exists -> proofs attempted
        g0 = world.topology._gate
        assert g0 == pytest.approx(15.0)
        for t in np.linspace(0.5, 30.0, 60):
            advance(world, float(t))
            world.hops_from(0)
        # Dense fast motion: proofs keep failing, the gate backs off
        # and the exponential backoff window opens.
        assert world.topology._gate < g0
        assert world.topology._prove_fail_streak > 0 or world.topology._prove_skip > 0

    def test_successful_proofs_widen_the_gate(self):
        # Long pauses + glacial trips: few nodes move at once (so the
        # mover count stays under the gate) and motion is far too small
        # to flip a link, so proofs succeed and the gate grows.
        world = _waypoint_world(
            20, "sparse", "predictive", seed=7,
            max_speed=0.02, min_speed=0.01, max_pause=20.0,
        )
        world.hops_from(0)
        g0 = world.topology._gate
        for t in np.linspace(0.5, 40.0, 80):
            advance(world, float(t))
            world.hops_from(0)
        assert world.topology._gate > g0

    def test_gate_gauge_registered(self):
        world = _waypoint_world(10, "sparse", "predictive", seed=1)
        snap = world.registry.aggregated()
        key = "topology.proof_gate{backend=sparse,layer=topology}"
        matches = [k for k in snap if k.startswith("topology.proof_gate")]
        assert matches, f"gauge missing (have {sorted(snap)})"
        assert snap.get(key, snap[matches[0]]) == world.topology._gate
