"""Unit and property tests for the discrete-event kernel.

Every test runs on both queue lanes (``queue="calendar"`` and
``queue="heap"``) via the ``make_sim`` fixture: the kernel contract --
dispatch order, cancellation accounting, run control, weights -- is
lane-independent by design, and these tests are the first line of the
bit-identity proof obligation (see tests/test_calqueue.py for the
trace-equality fuzzing).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Priority, SimulationError, Simulator


@pytest.fixture(params=["calendar", "heap"])
def make_sim(request):
    """Simulator factory pinned to one queue lane per parametrization."""

    def _make(*args, **kwargs):
        kwargs.setdefault("queue", request.param)
        return Simulator(*args, **kwargs)

    _make.queue = request.param
    return _make


def test_unknown_queue_kind_rejected():
    with pytest.raises(SimulationError):
        Simulator(queue="fibonacci")


def test_queue_kind_exposed(make_sim):
    assert make_sim().queue_kind == make_sim.queue


class TestScheduling:
    def test_clock_starts_at_zero(self, make_sim):
        assert make_sim().now == 0.0

    def test_custom_start_time(self, make_sim):
        assert make_sim(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self, make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, make_sim):
        sim = make_sim()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_same_time_fifo_order(self, make_sim):
        sim = make_sim()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties(self, make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(1.0, fired.append, "low", priority=Priority.LOW)
        sim.schedule(1.0, fired.append, "high", priority=Priority.HIGH)
        sim.schedule(1.0, fired.append, "normal", priority=Priority.NORMAL)
        sim.run()
        assert fired == ["high", "normal", "low"]

    def test_negative_delay_rejected(self, make_sim):
        with pytest.raises(SimulationError):
            make_sim().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_zero_delay_event_fires(self, make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_run_fire(self, make_sim):
        sim = make_sim()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, make_sim):
        sim = make_sim()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []
        assert sim.events_skipped == 1

    def test_cancel_mid_run(self, make_sim):
        sim = make_sim()
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self, make_sim):
        sim = make_sim()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        ev.cancel()
        assert sim.pending() == 1

    def test_heap_compacts_when_cancelled_dominate(self, make_sim):
        sim = make_sim()
        events = [sim.schedule(10.0, lambda: None) for _ in range(200)]
        for ev in events[:150]:
            ev.cancel()
        # cancelled entries exceeded half the queue -> compacted away
        assert sim.heap_compactions >= 1
        assert sim.heap_size < 200
        assert sim.pending() == 50
        sim.run()
        assert sim.events_dispatched == 50
        assert sim.events_skipped == 150  # skipped-on-pop + purged

    def test_double_cancel_counted_once(self, make_sim):
        sim = make_sim()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim._cancelled_pending == 1
        sim.run()
        assert sim.events_skipped == 1

    def test_manual_compact_noop_when_clean(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        sim.compact()
        assert sim.heap_compactions == 0
        assert sim.pending() == 1


class TestRunControl:
    def test_until_inclusive(self, make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 2, 3]

    def test_until_advances_clock_without_events(self, make_sim):
        sim = make_sim()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_stop_halts_run(self, make_sim):
        sim = make_sim()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(1.5, sim.stop)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_max_events(self, make_sim):
        sim = make_sim()
        fired = []
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_event_or_none(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        assert sim.step() is not None
        assert sim.step() is None

    def test_run_not_reentrant(self, make_sim):
        sim = make_sim()
        err = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                err.append(e)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(err) == 1

    def test_peek_time(self, make_sim):
        sim = make_sim()
        assert sim.peek_time() is None
        ev = sim.schedule(4.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        assert sim.peek_time() == 4.0
        ev.cancel()
        assert sim.peek_time() == 7.0


class TestPendingFastPath:
    """pending() is an O(1) incremental count; it must always agree with
    the brute-force queue scan, including around cancellation edge cases."""

    def test_agrees_with_brute_force(self, make_sim):
        sim = make_sim()
        events = [sim.schedule(float(i % 7), lambda: None) for i in range(50)]
        assert sim.pending() == sim._brute_pending() == 50
        for ev in events[::3]:
            ev.cancel()
        assert sim.pending() == sim._brute_pending()
        sim.run()
        assert sim.pending() == sim._brute_pending() == 0

    def test_agrees_while_stepping(self, make_sim):
        sim = make_sim()
        for i in range(20):
            sim.schedule(float(i), lambda: None)
        while sim.step() is not None:
            assert sim.pending() == sim._brute_pending()

    def test_cancel_after_dispatch_is_noop(self, make_sim):
        # Timeout handles are routinely cancelled after firing; the done
        # flag must keep that from corrupting the incremental count.
        sim = make_sim()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1)
        ev.cancel()
        ev.cancel()
        assert sim.pending() == sim._brute_pending() == 1
        assert sim.events_skipped == 0

    def test_cancel_survives_compaction(self, make_sim):
        sim = make_sim()
        events = [sim.schedule(10.0, lambda: None) for _ in range(200)]
        for ev in events[:150]:
            ev.cancel()
        assert sim.heap_compactions >= 1
        assert sim.pending() == sim._brute_pending() == 50

    def test_stats_pending_matches(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None)
        assert sim.stats()["pending"] == 1
        assert sim.stats()["heap_pushes"] == 1


class TestEventWeight:
    """Batched delivery events carry weight=k so events_dispatched stays
    identical to the per-receiver reference lane."""

    def test_weight_counts_as_k_dispatches(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None, weight=5)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 6
        assert sim.heap_pushes == 2

    def test_daemon_weight_excluded_from_dispatched(self, make_sim):
        sim = make_sim()
        sim.schedule(1.0, lambda: None, weight=3, daemon=True)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 1
        assert sim.stats()["events_daemon"] == 3

    def test_weight_below_one_rejected(self, make_sim):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None, weight=0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None, weight=-2)


class TestProperties:
    @given(
        st.sampled_from(["calendar", "heap"]),
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_dispatch_order_is_sorted(self, queue, delays):
        sim = Simulator(queue=queue)
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.sampled_from(["calendar", "heap"]),
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 2)),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_total_order_time_priority_seq(self, queue, items):
        sim = Simulator(queue=queue)
        keys = []
        for i, (d, p) in enumerate(items):
            ev = sim.schedule(d, lambda: None, priority=p)
            keys.append((ev, i))
        order = []
        while True:
            ev = sim.step()
            if ev is None:
                break
            order.append(ev.sort_key())
        assert order == sorted(order)

    @given(st.sampled_from(["calendar", "heap"]), st.integers(0, 2**31), st.data())
    @settings(max_examples=25, deadline=None)
    def test_clock_monotone(self, queue, seed, data):
        sim = Simulator(queue=queue)
        times = []
        n = data.draw(st.integers(1, 30))
        import numpy as np

        rng = np.random.default_rng(seed)
        for d in rng.random(n) * 50:
            sim.schedule(float(d), lambda: times.append(sim.now))
        sim.run()
        assert all(a <= b for a, b in zip(times, times[1:]))
