"""Tests for the encoded paper figure content and comparison helper."""

import numpy as np
import pytest

from repro.experiments import PAPER_FIGURES, compare_with_paper
from repro.experiments.figures import FigureResult


class TestPaperRecords:
    def test_all_eight_figures_recorded(self):
        assert set(PAPER_FIGURES) == {f"fig{i}" for i in range(5, 13)}

    def test_every_figure_has_claims(self):
        for fig in PAPER_FIGURES.values():
            assert fig.claims, f"{fig.exp_id} has no recorded claims"
            lo, hi = fig.y_range
            assert lo < hi

    def test_150_node_ranges_exceed_50_node_ranges(self):
        # the paper's 150-node figures show more traffic
        assert PAPER_FIGURES["fig8"].y_range[1] > PAPER_FIGURES["fig7"].y_range[1]
        assert PAPER_FIGURES["fig10"].y_range[1] > PAPER_FIGURES["fig9"].y_range[1]
        assert PAPER_FIGURES["fig12"].y_range[1] > PAPER_FIGURES["fig11"].y_range[1]


def curve_result(totals):
    res = FigureResult(
        exp_id="fig7",
        kind="message_curve",
        num_nodes=50,
        duration=100.0,
        reps=1,
        family="connect",
    )
    res.series = {
        alg: {"curve": np.array([float(t), float(t) / 2])} for alg, t in totals.items()
    }
    res.totals = {k: float(v) for k, v in totals.items()}
    return res


class TestCompare:
    def test_agreeing_result(self):
        res = curve_result({"basic": 100, "regular": 40, "random": 60, "hybrid": 40})
        rows = compare_with_paper(res)
        assert all(r["holds"] for r in rows)
        claims = {r["claim"] for r in rows}
        assert "basic generates the most connect traffic" in claims

    def test_disagreeing_result_flagged(self):
        res = curve_result({"basic": 10, "regular": 400, "random": 60, "hybrid": 40})
        rows = compare_with_paper(res)
        basic_row = next(
            r for r in rows if r["claim"] == "basic generates the most connect traffic"
        )
        assert basic_row["holds"] is False

    def test_unknown_figure_rejected(self):
        res = curve_result({"basic": 1, "regular": 1, "random": 1, "hybrid": 1})
        res.exp_id = "fig99"
        with pytest.raises(ValueError):
            compare_with_paper(res)

    def test_rows_carry_paper_prose(self):
        res = curve_result({"basic": 100, "regular": 40, "random": 60, "hybrid": 40})
        rows = compare_with_paper(res)
        assert all(r["paper_says"] for r in rows)
