"""Tests for the churn (death/birth) process."""

import numpy as np
import pytest

from repro.scenarios import ChurnProcess, ScenarioConfig, build_scenario

from .helpers import make_world


def make_churn(death_rate, mean_downtime=10.0, n=5, immune=(), seed=0):
    positions = [[10.0 + 5 * i, 10.0] for i in range(n)]
    sim, world, _ = make_world(positions)
    churn = ChurnProcess(
        sim,
        world,
        np.random.default_rng(seed),
        death_rate=death_rate,
        mean_downtime=mean_downtime,
        immune=immune,
    )
    return sim, world, churn


class TestChurnProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_churn(death_rate=-1.0)
        with pytest.raises(ValueError):
            make_churn(death_rate=0.1, mean_downtime=0.0)

    def test_zero_rate_is_noop(self):
        sim, world, churn = make_churn(death_rate=0.0)
        churn.start()
        sim.run(until=500.0)
        assert churn.deaths == 0
        assert all(world.is_up(i) for i in range(world.n))

    def test_deaths_happen_at_expected_scale(self):
        sim, world, churn = make_churn(death_rate=0.1, mean_downtime=1e9, n=100)
        churn.start()
        sim.run(until=200.0)
        # ~0.1 deaths/s * 200 s = ~20; allow wide slack
        assert 5 <= churn.deaths <= 60

    def test_dead_nodes_are_down(self):
        sim, world, churn = make_churn(death_rate=0.5, mean_downtime=1e9)
        churn.start()
        sim.run(until=50.0)
        assert churn.deaths > 0
        for _, node, kind in churn.timeline():
            if kind == "death":
                assert not world.is_up(node)

    def test_rebirth(self):
        sim, world, churn = make_churn(death_rate=0.2, mean_downtime=5.0)
        churn.start()
        sim.run(until=300.0)
        assert churn.births > 0
        # every birth follows a death of the same node
        dead = set()
        for t, node, kind in churn.timeline():
            if kind == "death":
                dead.add(node)
            else:
                assert node in dead

    def test_immune_nodes_never_die(self):
        sim, world, churn = make_churn(death_rate=1.0, immune=(0,), mean_downtime=1e9)
        churn.start()
        sim.run(until=100.0)
        assert all(node != 0 for _, node, kind in churn.timeline())
        assert world.is_up(0)

    def test_start_idempotent(self):
        sim, world, churn = make_churn(death_rate=0.1)
        churn.start()
        churn.start()
        sim.run(until=20.0)  # would double-kill if armed twice
        # no assertion beyond "it runs"; the death count sanity is above

    def test_events_have_monotone_times(self):
        sim, _, churn = make_churn(death_rate=0.3, mean_downtime=3.0)
        churn.start()
        sim.run(until=100.0)
        times = [t for t, _, _ in churn.timeline()]
        assert times == sorted(times)


class TestChurnWithOverlay:
    def test_overlay_survives_churn(self):
        cfg = ScenarioConfig(num_nodes=30, duration=400.0, algorithm="regular", seed=3)
        s = build_scenario(cfg)
        churn = ChurnProcess(
            s.sim,
            s.world,
            s.rng.stream("churn"),
            death_rate=0.02,
            mean_downtime=60.0,
        )
        s.overlay.start()
        churn.start()
        s.sim.run(until=cfg.duration)
        assert churn.deaths > 0
        answered = sum(1 for r in s.overlay.query_records() if r.answered)
        assert answered > 0, "overlay must keep answering under churn"

    def test_dead_peers_references_cleaned(self):
        cfg = ScenarioConfig(
            num_nodes=20, duration=400.0, algorithm="regular", seed=5, queries=False
        )
        s = build_scenario(cfg)
        s.overlay.start(queries=False)
        s.sim.run(until=200.0)
        # kill one connected member permanently
        victim = next(
            (m for m in s.members if s.overlay.servents[m].connections.count > 0),
            None,
        )
        if victim is None:
            return  # sparse run formed no connections; nothing to assert
        s.world.set_down(victim)
        s.sim.run(until=400.0)
        for m in s.members:
            if m != victim:
                assert not s.overlay.servents[m].connections.has(victim)
