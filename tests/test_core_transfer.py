"""Tests for the optional file-transfer (download/replication) plane."""

import numpy as np
import pytest

from repro.core import QueryConfig
from repro.core.messages import FileData, FileRequest
from repro.scenarios import ScenarioConfig, run_scenario
from repro.sim import Simulator

from .fakes import make_overlay_line


def dl_config(**kw):
    defaults = dict(download=True, warmup=1.0, response_wait=2.0, gap_min=1.0, gap_max=2.0)
    defaults.update(kw)
    return QueryConfig(**defaults)


class TestTransferPlane:
    def test_answered_query_triggers_download(self):
        sim = Simulator()
        _, s = make_overlay_line(
            sim, 3, files_at={2: {5}}, query_config=dl_config(), num_files=10
        )
        rec = s[0].query_engine.issue_query(file_id=5)
        sim.run(until=0.5)
        s[0].query_engine._close(rec)
        sim.run(until=2.0)
        assert s[0].store.has(5)
        assert s[0].query_engine.downloads == [5]
        assert s[2].query_engine.uploads == [5]

    def test_nearest_holder_chosen(self):
        sim = Simulator()
        _, s = make_overlay_line(
            sim, 5, files_at={1: {3}, 4: {3}}, query_config=dl_config(), num_files=10
        )
        rec = s[0].query_engine.issue_query(file_id=3)
        sim.run(until=0.5)
        s[0].query_engine._close(rec)
        sim.run(until=2.0)
        assert s[1].query_engine.uploads == [3]
        assert s[4].query_engine.uploads == []

    def test_no_download_when_already_held(self):
        sim = Simulator()
        _, s = make_overlay_line(
            sim, 3, files_at={0: {7}, 2: {7}}, query_config=dl_config(), num_files=10
        )
        rec = s[0].query_engine.issue_query(file_id=7)
        sim.run(until=0.5)
        s[0].query_engine._close(rec)
        sim.run(until=2.0)
        assert s[0].query_engine.downloads == []

    def test_disabled_by_default(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 3, files_at={2: {5}}, num_files=10)
        rec = s[0].query_engine.issue_query(file_id=5)
        sim.run(until=0.5)
        s[0].query_engine._close(rec)
        sim.run(until=2.0)
        assert not s[0].store.has(5)

    def test_request_for_missing_file_ignored(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 2, query_config=dl_config(), num_files=5)
        s[1].query_engine.on_file_request(0, FileRequest(requirer=0, file_id=9, qid=1))
        sim.run(until=1.0)
        assert s[1].query_engine.uploads == []

    def test_duplicate_file_data_not_double_counted(self):
        sim = Simulator()
        _, s = make_overlay_line(sim, 2, query_config=dl_config(), num_files=5)
        s[0].query_engine.on_file_data(1, FileData(holder=1, file_id=2, qid=1))
        s[0].query_engine.on_file_data(1, FileData(holder=1, file_id=2, qid=1))
        assert s[0].query_engine.downloads == [2]


class TestReplicationEffect:
    def test_popular_files_spread_in_full_scenario(self):
        cfg = ScenarioConfig(
            num_nodes=40,
            duration=500.0,
            algorithm="regular",
            seed=8,
        )
        from dataclasses import replace

        cfg = cfg.with_(query=dl_config(warmup=60.0, response_wait=15.0, gap_min=10.0, gap_max=20.0))
        res = run_scenario(cfg)
        # Transfers happened and were counted in their own family.
        assert res.totals["transfer"] > 0
