"""Versioned RunResult schema: round-trips, validation, storage."""

import json
import math

import numpy as np
import pytest

from repro.experiments import ResultStore
from repro.obs import RUN_SCHEMA_VERSION, RunManifest, SchemaError, validate_run_dict
from repro.obs.manifest import config_hash
from repro.scenarios import ScenarioConfig, run_scenario
from repro.scenarios.runner import RunResult


@pytest.fixture(scope="module")
def small_result():
    return run_scenario(
        ScenarioConfig(num_nodes=12, duration=90.0, seed=4, obs_interval=15.0)
    )


class TestRoundTrip:
    def test_dict_is_json_safe_and_valid(self, small_result):
        d = small_result.to_dict()
        assert d["schema_version"] == RUN_SCHEMA_VERSION
        json.dumps(d)  # raises on anything non-plain
        validate_run_dict(d)

    def test_arrays_round_trip(self, small_result):
        d = small_result.to_dict()
        back = RunResult.from_dict(d)
        assert isinstance(back.energy, np.ndarray)
        np.testing.assert_array_equal(back.energy, small_result.energy)
        for fam, curve in small_result.sorted_received.items():
            np.testing.assert_array_equal(back.sorted_received[fam], curve)
        assert back.totals == small_result.totals
        assert back.members == small_result.members
        assert back.config == small_result.config

    def test_nan_and_inf_round_trip(self, small_result):
        d = small_result.to_dict()
        # default energy capacity is inf -> encoded as a string
        assert d["config"]["energy_capacity"] == "Infinity"
        back = RunResult.from_dict(d)
        assert back.config.energy_capacity == float("inf")
        for s_in, s_out in zip(small_result.file_stats, back.file_stats):
            if math.isnan(s_in.avg_min_p2p_hops):
                assert math.isnan(s_out.avg_min_p2p_hops)
            else:
                assert s_out.avg_min_p2p_hops == s_in.avg_min_p2p_hops

    def test_obs_sections_round_trip(self, small_result):
        back = RunResult.from_dict(small_result.to_dict())
        assert back.counters == small_result.counters
        assert back.timeseries == small_result.timeseries
        assert back.manifest is not None
        assert back.manifest.config_sha256 == small_result.manifest.config_sha256
        assert back.wall.keys() == small_result.wall.keys()

    def test_second_serialization_identical(self, small_result):
        a = json.dumps(small_result.to_dict(), sort_keys=True)
        b = json.dumps(small_result.to_dict(), sort_keys=True)
        assert a == b


class TestValidator:
    def test_rejects_bad_version(self, small_result):
        d = small_result.to_dict()
        d["schema_version"] = 99
        with pytest.raises(SchemaError, match="schema_version"):
            validate_run_dict(d)

    def test_rejects_missing_family(self, small_result):
        d = small_result.to_dict()
        del d["totals"]["ping"]
        with pytest.raises(SchemaError, match="totals"):
            validate_run_dict(d)

    def test_rejects_member_out_of_range(self, small_result):
        d = small_result.to_dict()
        d["members"][0] = 999
        with pytest.raises(SchemaError, match="members"):
            validate_run_dict(d)

    def test_rejects_unsorted_curve(self, small_result):
        d = small_result.to_dict()
        curve = d["sorted_received"]["connect"]
        if len(curve) >= 2:
            curve[0], curve[-1] = 0, curve[0] + 1
            with pytest.raises(SchemaError, match="sorted decreasing"):
                validate_run_dict(d)

    def test_rejects_energy_length_mismatch(self, small_result):
        d = small_result.to_dict()
        d["energy"] = d["energy"][:-1]
        with pytest.raises(SchemaError, match="energy"):
            validate_run_dict(d)

    def test_rejects_non_dict(self):
        with pytest.raises(SchemaError):
            validate_run_dict([])


class TestConfigSerialization:
    def test_round_trip(self):
        cfg = ScenarioConfig(num_nodes=30, algorithm="hybrid", obs_interval=2.0)
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_ignored(self):
        d = ScenarioConfig().to_dict()
        d["future_field"] = 1
        assert ScenarioConfig.from_dict(d) == ScenarioConfig()

    def test_rejects_negative_obs_interval(self):
        with pytest.raises(ValueError):
            ScenarioConfig(obs_interval=-1.0)


class TestManifest:
    def test_begin_finish(self):
        from repro.obs import Registry

        m = RunManifest.begin({"num_nodes": 5}, seed=3)
        assert m.config_sha256 == config_hash({"num_nodes": 5})
        assert m.python and m.numpy_version
        reg = Registry()
        reg.counter("c").inc(2)
        m.finish(reg)
        assert m.wall_seconds >= 0.0 and m.peaks["c"] == 2
        back = RunManifest.from_dict(m.to_dict())
        assert back.config_sha256 == m.config_sha256 and back.seed == 3


class TestStorage:
    def test_store_round_trip(self, tmp_path, small_result):
        store = ResultStore(str(tmp_path / "runs.ndjson"))
        store.append_run(small_result, purpose="test")
        runs = store.load_runs()
        assert len(runs) == 1
        np.testing.assert_array_equal(runs[0].energy, small_result.energy)
        assert runs[0].manifest is not None

    def test_store_rejects_invalid_payloads_on_load(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.ndjson"))
        store.append("run", {"schema_version": 1})  # malformed by hand
        with pytest.raises(SchemaError):
            store.load_runs()
