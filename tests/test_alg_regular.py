"""Tests for the Regular algorithm: expanding ring, handshake, back-off."""

import numpy as np

from repro.core import ConnectOffer, Discover, P2pConfig

from .helpers import line_positions
from .overlay_helpers import build_overlay


class TestEstablishment:
    def test_symmetric_connections_in_clique(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=120.0)
        # Symmetry: if A references B, B references A.
        for servent in overlay.servents.values():
            for peer in servent.connections.peers():
                assert overlay.servents[peer].connections.has(servent.nid)

    def test_connections_marked_symmetric(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        conn01 = overlay.servents[0].connections.get(1)
        conn10 = overlay.servents[1].connections.get(0)
        assert conn01 is not None and conn10 is not None
        assert conn01.symmetric and conn10.symmetric
        # Exactly one endpoint is the initiator (pinger).
        assert conn01.initiator != conn10.initiator

    def test_cap_never_exceeded(self):
        pts = [[10 + 3 * i, 10] for i in range(8)]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=300.0)
        for servent in overlay.servents.values():
            assert servent.connections.count <= 3

    def test_expanding_ring_cycles(self):
        pts = [[10, 10], [500, 500]]  # isolated: never connects
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        alg = overlay.servents[0].algorithm
        seen = set()
        for _ in range(400):
            seen.add(alg.nhops)
            sim.run(until=sim.now + 5.0)
        # nhops must cycle through 2, 4, 6 and the 0 marker.
        assert seen == {0, 2, 4, 6}

    def test_timer_backoff_doubles_and_caps(self):
        cfg = P2pConfig(timer_initial=10.0, max_timer=40.0)
        pts = [[10, 10], [500, 500]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular", config=cfg)
        overlay.start(queries=False)
        alg = overlay.servents[0].algorithm
        timers = set()
        for _ in range(200):
            sim.run(until=sim.now + 10.0)
            timers.add(alg.timer)
        assert 40.0 in timers  # reached the cap
        assert max(timers) == 40.0  # never beyond MAXTIMER

    def test_timer_resets_on_connection(self):
        # max_connections=1 so the node is satisfied after one connect
        # (otherwise back-off resumes for the still-missing slots).
        cfg = P2pConfig(max_connections=1, timer_initial=10.0, max_timer=160.0)
        # Two isolated groups; bring node 1 into range later.
        pts = [[10, 10], [500, 500]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="regular", config=cfg)
        overlay.start(queries=False)
        sim.run(until=600.0)
        alg0 = overlay.servents[0].algorithm
        assert alg0.timer > cfg.timer_initial  # backed off while lonely
        # Teleport node 1 next to node 0 (static model: poke positions).
        mob = overlay.servents[0].world.mobility
        mob._origin[1] = mob._dest[1] = np.array([15.0, 10.0])
        world.invalidate()  # invalidate snapshot cache
        sim.run(until=sim.now + 900.0)
        assert overlay.servents[0].connections.has(1)
        assert alg0.timer == cfg.timer_initial


class TestWillingness:
    def test_full_node_does_not_offer(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        full_like = overlay.servents[0]
        sent = []
        full_like.send = lambda peer, msg: sent.append((peer, msg))
        # Simulate saturation by filling remaining capacity.
        while not full_like.connections.is_full:
            from repro.core import Connection

            full_like.connections.add(
                Connection(peer=90 + full_like.connections.count, symmetric=True)
            )
        full_like.algorithm.on_discovery(5, Discover(seeker=5), hops=2)
        assert not any(isinstance(m, ConnectOffer) for _, m in sent)

    def test_already_connected_peer_not_offered(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        s0 = overlay.servents[0]
        assert s0.connections.has(1)
        sent = []
        s0.send = lambda peer, msg: sent.append((peer, msg))
        s0.algorithm.on_discovery(1, Discover(seeker=1), hops=1)
        assert sent == []

    def test_basic_discovery_ignored_by_regular(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        s0 = overlay.servents[0]
        sent = []
        s0.send = lambda peer, msg: sent.append((peer, msg))
        s0.algorithm.on_discovery(1, Discover(seeker=1, basic=True), hops=1)
        assert sent == []


class TestMaintenance:
    def test_connection_closed_when_peer_dies(self):
        pts = [[10, 10], [15, 10]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        assert overlay.servents[0].connections.has(1)
        world.set_down(1)
        sim.run(until=200.0)
        assert not overlay.servents[0].connections.has(1)

    def test_acceptor_times_out_without_pings(self):
        pts = [[10, 10], [15, 10]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        # Identify the acceptor endpoint.
        c0 = overlay.servents[0].connections.get(1)
        acceptor = overlay.servents[1] if c0.initiator else overlay.servents[0]
        initiator = overlay.servents[0] if c0.initiator else overlay.servents[1]
        world.set_down(initiator.nid)
        sim.run(until=sim.now + 120.0)
        assert not acceptor.connections.has(initiator.nid)

    def test_ping_traffic_only_from_initiator(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=300.0)
        c0 = overlay.servents[0].connections.get(1)
        assert c0 is not None
        initiator = 0 if c0.initiator else 1
        acceptor = 1 - initiator
        # The acceptor receives pings; the initiator receives pongs.
        # Received "ping"-family counts are ~equal (each ping begets a
        # pong), so instead check that closing works: kill the acceptor's
        # pong path by downing it and watch the initiator close.
        pings = metrics.family_counts("ping")
        assert pings[initiator] > 0 and pings[acceptor] > 0
