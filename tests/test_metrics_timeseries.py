"""Tests for time-series sampling."""

import numpy as np
import pytest

from repro.metrics import (
    Sampler,
    probe_alive,
    probe_family_total,
    probe_mean_degree,
)
from repro.sim import Simulator

from .overlay_helpers import build_overlay


class TestSampler:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Sampler(sim, 0.0, {"x": lambda: 1.0})
        with pytest.raises(ValueError):
            Sampler(sim, 1.0, {})

    def test_samples_at_period(self):
        sim = Simulator()
        s = Sampler(sim, 10.0, {"clock": lambda: sim.now})
        sim.run(until=35.0)
        t, v = s.series("clock")
        assert list(t) == [0.0, 10.0, 20.0, 30.0]
        assert np.array_equal(t, v)

    def test_stop(self):
        sim = Simulator()
        s = Sampler(sim, 5.0, {"x": lambda: 1.0})
        sim.run(until=12.0)
        s.stop()
        sim.run(until=50.0)
        assert len(s.times) == 3  # 0, 5, 10

    def test_rate_of_cumulative(self):
        sim = Simulator()
        counter = {"v": 0.0}

        def bump():
            counter["v"] += 30.0

        for t in np.arange(1.0, 40.0, 1.0):
            sim.schedule(float(t), bump)
        s = Sampler(sim, 10.0, {"total": lambda: counter["v"]})
        sim.run(until=35.0)
        mid, rate = s.rate("total")
        assert len(rate) == 3
        assert rate[1] == pytest.approx(30.0)  # 30 units/s in steady state

    def test_rate_too_short(self):
        sim = Simulator()
        s = Sampler(sim, 10.0, {"x": lambda: 1.0})
        sim.run(until=5.0)
        mid, rate = s.rate("x")
        assert len(mid) == 0

    def test_settled_after(self):
        sim = Simulator()
        # value ramps to 10 by t=30, flat afterwards
        s = Sampler(sim, 10.0, {"ramp": lambda: min(sim.now / 3.0, 10.0)})
        sim.run(until=80.0)
        settle = s.settled_after("ramp", tolerance=0.05)
        assert 20.0 <= settle <= 40.0

    def test_never_settles_is_nan(self):
        sim = Simulator()
        s = Sampler(sim, 10.0, {"grow": lambda: sim.now})
        sim.run(until=60.0)
        assert np.isnan(s.settled_after("grow", tolerance=0.01))


class TestStockProbes:
    def test_overlay_formation_curve(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15]]
        sim, world, overlay, metrics = build_overlay(pts, algorithm="regular")
        sampler = Sampler(
            sim,
            20.0,
            {
                "degree": probe_mean_degree(overlay),
                "alive": probe_alive(world),
                "pings": probe_family_total(metrics, "ping"),
            },
        )
        overlay.start(queries=False)
        sim.run(until=200.0)
        t, deg = sampler.series("degree")
        assert deg[0] == 0.0  # nothing formed at t=0
        assert deg[-1] > 0.0  # overlay formed
        _, alive = sampler.series("alive")
        assert (alive == 4).all()
        _, pings = sampler.series("pings")
        assert pings[-1] > 0
        assert (np.diff(pings) >= 0).all()  # cumulative
