"""Smoke tests: every example runs end to end (scaled down).

Examples honour ``REPRO_EXAMPLE_SCALE`` so the suite stays fast; what
matters here is that the public API usage in each script works, not the
numbers it prints.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    # The deliverable requires a quickstart plus domain scenarios.
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 4


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    env = dict(os.environ, REPRO_EXAMPLE_SCALE="0.08")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} printed nothing"
