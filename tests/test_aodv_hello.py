"""Tests for AODV HELLO link sensing (optional feature)."""

import numpy as np

from repro.aodv import AodvConfig, AodvRouter
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator

from .helpers import line_positions


def make(positions, hello_interval=1.0):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=10.0)
    channel = Channel(sim, world)
    cfg = AodvConfig(hello_interval=hello_interval)
    router = AodvRouter(sim, channel, config=cfg)
    inbox = []
    router.register("app", lambda dst, src, p, h: inbox.append((dst, src, p, h)))
    return sim, world, router, inbox


class TestHello:
    def test_hellos_sent_when_enabled(self):
        sim, _, router, _ = make(line_positions(3, spacing=8.0))
        sim.run(until=10.0)
        assert all(a.hello_sent >= 8 for a in router.agents)

    def test_disabled_by_default(self):
        pts = np.asarray(line_positions(2), dtype=float)
        sim = Simulator()
        mobility = Static(2, Area(1000, 1000), np.random.default_rng(0), positions=pts)
        world = World(sim, mobility)
        channel = Channel(sim, world)
        router = AodvRouter(sim, channel)
        sim.run(until=10.0)
        assert all(a.hello_sent == 0 for a in router.agents)

    def test_silent_neighbor_invalidates_routes(self):
        sim, world, router, inbox = make(line_positions(3, spacing=8.0))
        router.send(0, 2, "x", kind="app")
        sim.run(until=3.0)
        assert (2, 0, "x", 2) in inbox
        assert router.route_hops(0, 2) == 2
        # Node 1 (the relay) dies; HELLO silence tears the route down
        # WITHOUT any data transmission attempt.
        world.set_down(1)
        sim.run(until=15.0)
        assert router.route_hops(0, 2) == AodvRouter.UNKNOWN

    def test_delivery_still_works_with_hellos(self):
        sim, _, router, inbox = make(line_positions(4, spacing=8.0))
        router.send(0, 3, "y", kind="app")
        sim.run(until=5.0)
        assert (3, 0, "y", 3) in inbox

    def test_hello_traffic_counts_in_energy(self):
        sim, world, router, _ = make(line_positions(2, spacing=5.0))
        sim.run(until=20.0)
        assert world.energy.consumed[0] > 0
        assert world.energy.consumed[1] > 0
