"""Tests for TTL-limited controlled flooding with dedup cache."""

import pytest

from repro.net import FloodManager

from .helpers import line_positions, make_world


def setup_flood(positions, radio_range=10.0, kind="flood"):
    sim, world, ch = make_world(positions, radio_range=radio_range)
    inboxes = [[] for _ in ch.nodes]
    dups = [[] for _ in ch.nodes]
    mgrs = [
        FloodManager(
            node,
            ch,
            kind,
            deliver=lambda o, p, h, i=i: inboxes[i].append((o, p, h)),
            count_duplicate=lambda o, p, i=i: dups[i].append((o, p)),
        )
        for i, node in enumerate(ch.nodes)
    ]
    return sim, world, ch, mgrs, inboxes, dups


class TestFloodReach:
    def test_ttl_limits_reach_on_line(self):
        # 6 nodes in a line; flood with budget 3 reaches nodes 1..3 only.
        sim, _, _, mgrs, inboxes, _ = setup_flood(line_positions(6, spacing=8.0))
        mgrs[0].originate("hello", nhops=3)
        sim.run()
        reached = [i for i, box in enumerate(inboxes) if box]
        assert reached == [1, 2, 3]

    def test_hop_counts_reported(self):
        sim, _, _, mgrs, inboxes, _ = setup_flood(line_positions(5, spacing=8.0))
        mgrs[0].originate("x", nhops=4)
        sim.run()
        for i in (1, 2, 3, 4):
            (origin, payload, hops) = inboxes[i][0]
            assert origin == 0 and payload == "x" and hops == i

    def test_nhops_one_is_neighbors_only(self):
        sim, _, _, mgrs, inboxes, _ = setup_flood(line_positions(4, spacing=8.0))
        mgrs[1].originate("y", nhops=1)
        sim.run()
        assert [bool(b) for b in inboxes] == [True, False, True, False]

    def test_zero_nhops_rejected(self):
        _, _, _, mgrs, _, _ = setup_flood(line_positions(2))
        with pytest.raises(ValueError):
            mgrs[0].originate("z", nhops=0)

    def test_origin_does_not_deliver_to_itself(self):
        sim, _, _, mgrs, inboxes, _ = setup_flood([[0, 0], [5, 0], [0, 5]])
        mgrs[0].originate("p", nhops=6)
        sim.run()
        assert inboxes[0] == []


class TestDedup:
    def test_each_node_delivers_once_in_dense_mesh(self):
        # fully connected 5-clique: plenty of duplicate copies fly around
        pts = [[0, 0], [3, 0], [0, 3], [3, 3], [1, 1]]
        sim, _, _, mgrs, inboxes, dups = setup_flood(pts)
        mgrs[0].originate("m", nhops=5)
        sim.run()
        for i in (1, 2, 3, 4):
            assert len(inboxes[i]) == 1
        # duplicates were actually suppressed somewhere
        assert sum(len(d) for d in dups) > 0

    def test_forwarding_bounded(self):
        # Each node forwards each flood at most once: in a clique of k
        # nodes a single flood causes at most k transmissions.
        pts = [[0, 0], [3, 0], [0, 3], [3, 3], [1, 1]]
        sim, _, ch, mgrs, _, _ = setup_flood(pts)
        before = ch.frames_sent
        mgrs[0].originate("m", nhops=10)
        sim.run()
        assert ch.frames_sent - before <= len(pts)

    def test_two_floods_independent(self):
        sim, _, _, mgrs, inboxes, _ = setup_flood(line_positions(3, spacing=8.0))
        mgrs[0].originate("a", nhops=2)
        mgrs[0].originate("b", nhops=2)
        sim.run()
        assert [p for _, p, _ in inboxes[1]] == ["a", "b"]

    def test_cache_size_and_reset(self):
        sim, _, _, mgrs, _, _ = setup_flood(line_positions(3, spacing=8.0))
        mgrs[0].originate("a", nhops=2)
        sim.run()
        assert mgrs[1].cache_size == 1
        mgrs[1].reset_cache()
        assert mgrs[1].cache_size == 0

    def test_seen_cache_bounded_fifo(self):
        # Long runs must not grow the dedup cache without limit: the
        # oldest ids are evicted first and cache_size stays accurate.
        sim, world, ch = make_world(line_positions(2, spacing=8.0))
        mgr = FloodManager(ch.nodes[0], ch, "bounded", seen_limit=5)
        for _ in range(12):
            mgr.originate("x", nhops=1)
        sim.run()
        assert mgr.cache_size == 5
        assert mgr.evictions == 7
        # survivors are the 5 most recent ids
        assert list(mgr._seen) == [(0, s) for s in range(7, 12)]

    def test_seen_limit_validated(self):
        _, _, ch = make_world(line_positions(2, spacing=8.0))
        with pytest.raises(ValueError):
            FloodManager(ch.nodes[0], ch, "bad", seen_limit=0)


class TestMultiplePlanes:
    def test_independent_kinds_do_not_interfere(self):
        sim, world, ch = make_world(line_positions(3, spacing=8.0))
        got_a, got_b = [], []
        fa = [
            FloodManager(n, ch, "plane.a", deliver=lambda o, p, h: got_a.append(p))
            for n in ch.nodes
        ]
        fb = [
            FloodManager(n, ch, "plane.b", deliver=lambda o, p, h: got_b.append(p))
            for n in ch.nodes
        ]
        fa[0].originate("A", nhops=2)
        fb[0].originate("B", nhops=2)
        sim.run()
        assert set(got_a) == {"A"} and set(got_b) == {"B"}
