"""Tests for experiment definitions, tables and the report renderer."""

import numpy as np
import pytest

from repro.experiments import (
    FigureResult,
    render_checks,
    render_figure,
    render_table,
    run_figure,
    shape_checks,
    table1_rows,
    table2_rows,
)
from repro.scenarios import ScenarioConfig


class TestTables:
    def test_table1_matches_paper(self):
        rows = table1_rows()
        header = rows[0]
        assert header == ["", "Centralized", "Decentralized", "Hybrid"]
        as_dict = {r[0]: r[1:] for r in rows[1:]}
        assert as_dict["Manageable"] == ["yes", "no", "no"]
        assert as_dict["Extensible"] == ["no", "yes", "yes"]
        assert as_dict["Fault-Tolerant"] == ["no", "yes", "yes"]
        assert as_dict["Secure"] == ["yes", "no", "no"]
        assert as_dict["Lawsuit-proof"] == ["no", "yes", "yes"]
        assert as_dict["Scalable"] == ["depend", "maybe", "apparently"]

    def test_table2_matches_paper(self):
        rows = dict(r for r in table2_rows()[1:])
        assert rows["transmission range"] == "10 m"
        assert rows["number of distinct searchable files"] == "20"
        assert rows["frequency of the most popular file"] == "40%"
        assert rows["NHOPS_INITIAL"] == "2 ad-hoc hops"
        assert rows["MAXNHOPS"] == "6 ad-hoc hops"
        assert rows["NHOPS (Basic Algorithm)"] == "6 ad-hoc hops"
        assert rows["MAXDIST"] == "6 ad-hoc hops"
        assert rows["MAXNCONN"] == "3"
        assert rows["MAXNSLAVES"] == "3"
        assert rows["TTL for queries"] == "6 p2p hops"

    def test_table2_tracks_config(self):
        rows = dict(r for r in table2_rows(ScenarioConfig(radio_range=25.0))[1:])
        assert rows["transmission range"] == "25 m"


class TestRunFigure:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_message_curve_figure_small(self):
        res = run_figure("fig7", duration=120.0, reps=1, seed=4)
        assert res.kind == "message_curve"
        assert res.family == "connect"
        assert res.num_nodes == 50
        assert set(res.series) == {"basic", "regular", "random", "hybrid"}
        for alg, payload in res.series.items():
            curve = payload["curve"]
            assert len(curve) == 38  # members of a 50-node scenario
            assert (np.diff(curve) <= 1e-9).all()

    def test_distance_answers_figure_small(self):
        res = run_figure("fig5", duration=150.0, reps=1, seed=4, routing="oracle")
        assert res.kind == "distance_answers"
        for alg, payload in res.series.items():
            assert len(payload["distance"]) == 10
            assert len(payload["answers"]) == 10


class TestRender:
    def test_render_table_alignment(self):
        out = render_table([["a", "bb"], ["ccc", "d"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "ccc" in lines[3]

    def test_render_empty(self):
        assert render_table([]) == ""

    def test_render_figure_curve(self):
        res = FigureResult(
            exp_id="figX",
            kind="message_curve",
            num_nodes=4,
            duration=10.0,
            reps=1,
            family="ping",
        )
        res.series = {
            "basic": {"curve": np.array([5.0, 1.0])},
            "regular": {"curve": np.array([2.0, 1.0])},
        }
        res.totals = {"basic": 6.0, "regular": 3.0}
        out = render_figure(res)
        assert "figX" in out and "5.00" in out and "totals" in out

    def test_render_checks_marks(self):
        res = FigureResult(
            exp_id="figY",
            kind="message_curve",
            num_nodes=4,
            duration=10.0,
            reps=1,
            family="ping",
        )
        res.series = {
            "basic": {"curve": np.array([5.0, 1.0])},
            "regular": {"curve": np.array([2.0, 1.0])},
            "random": {"curve": np.array([2.0, 1.0])},
            "hybrid": {"curve": np.array([3.0, 0.5])},
        }
        res.totals = {"basic": 6.0, "regular": 3.0, "random": 3.0, "hybrid": 3.5}
        out = render_checks(res)
        assert "PASS" in out


class TestShapeChecks:
    def test_connect_shape_detects_violation(self):
        res = FigureResult(
            exp_id="fig7",
            kind="message_curve",
            num_nodes=4,
            duration=1.0,
            reps=1,
            family="connect",
        )
        res.series = {
            a: {"curve": np.array([1.0])} for a in ("basic", "regular", "random", "hybrid")
        }
        res.totals = {"basic": 1.0, "regular": 100.0, "random": 1.0, "hybrid": 1.0}
        checks = {c[0]: c[1] for c in shape_checks(res)}
        assert checks["basic generates the most connect traffic"] is False
