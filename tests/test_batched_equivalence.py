"""Batched delivery lane is bit-identical to the per-receiver reference.

The batched lane collapses a broadcast's k per-receiver heap entries
into one batch event dispatched in ascending-nid order (DESIGN.md §5).
These tests are the proof obligation: for full scenarios -- churn,
finite energy, lossy/CSMA channels, dense and sparse topologies, several
seeds -- the *semantic* registry snapshot (everything except the
scheduler-cost metrics enumerated in ``repro.obs.compare``) and the
sampled time-series must be equal to the last bit between the two lanes,
while heap traffic must strictly drop.
"""

import numpy as np
import pytest

from repro.obs.compare import (
    is_scheduler_cost_key,
    semantic_snapshot,
    semantic_timeseries,
    snapshot_diff,
)
from repro.scenarios.builder import build_scenario
from repro.scenarios.churn import ChurnProcess
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import harvest

SEEDS = (1, 2, 3)


def _run_lane(seed: int, topology: str, batched: bool, *, churn: bool = True):
    """One full scenario on one delivery lane; returns harvested evidence."""
    cfg = ScenarioConfig(
        num_nodes=40,
        duration=40.0,
        seed=seed,
        # Exercise both non-ideal channels across the grid: collisions on
        # the dense backend, probabilistic loss on the sparse one.
        mac="csma" if topology == "dense" else "lossy",
        energy_capacity=0.05,
        topology=topology,
        obs_interval=10.0,
        batched_delivery=batched,
    )
    simulation = build_scenario(cfg)
    if churn:
        # The builder does not wire churn; attach it on a dedicated
        # stream so both lanes draw identical death/revival sequences.
        ChurnProcess(
            simulation.sim,
            simulation.world,
            np.random.default_rng(10_000 + seed),
            death_rate=0.05,
            mean_downtime=10.0,
        ).start()
    simulation.run()
    result = harvest(simulation)
    return {
        "snapshot": semantic_snapshot(simulation.registry),
        "timeseries": semantic_timeseries(result.timeseries),
        "events": result.events,
        "heap_pushes": simulation.sim.heap_pushes,
        "energy": result.energy,
        "totals": result.totals,
    }


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_lanes_bit_identical(seed, topology):
    ref = _run_lane(seed, topology, batched=False)
    bat = _run_lane(seed, topology, batched=True)
    # Full semantic registry snapshot: equal key sets, equal values.
    assert snapshot_diff(ref["snapshot"], bat["snapshot"]) == {}
    # Sampled time-series rows match bit-for-bit too.
    assert ref["timeseries"] == bat["timeseries"]
    # Derived figures agree exactly.
    assert ref["events"] == bat["events"]
    assert ref["totals"] == bat["totals"]
    np.testing.assert_array_equal(ref["energy"], bat["energy"])
    # The batching is real: strictly fewer heap entries on the fast lane.
    assert bat["heap_pushes"] < ref["heap_pushes"]


def test_scheduler_cost_keys_classified():
    assert is_scheduler_cost_key("kernel.heap_pushes")
    assert is_scheduler_cost_key('kernel.heap{node="3"}')
    assert not is_scheduler_cost_key("kernel.events_dispatched")
    assert not is_scheduler_cost_key("radio.frames_delivered")


def test_snapshot_diff_reports_mismatches():
    a = {"x": 1.0, "y": 2.0}
    b = {"x": 1.0, "y": 3.0, "z": 4.0}
    diff = snapshot_diff(a, b)
    assert diff == {"y": (2.0, 3.0), "z": (None, 4.0)}
