"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry
from repro.sim.rng import stable_key


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("mobility") == stable_key("mobility")

    def test_distinct_names_distinct_keys(self):
        names = ["mobility", "query", "files", "jitter", "placement"]
        keys = {stable_key(n) for n in names}
        assert len(keys) == len(names)

    def test_fits_in_63_bits(self):
        for n in ("", "a", "x" * 1000):
            assert 0 <= stable_key(n) < 2**63


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("m").random(8)
        b = RngRegistry(42).stream("m").random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("m").random(8)
        b = RngRegistry(2).stream("m").random(8)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        assert not np.array_equal(reg.stream("a").random(8), reg.stream("b").random(8))

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(5)
        r1.stream("first")
        v1 = r1.stream("second").random()
        r2 = RngRegistry(5)
        v2 = r2.stream("second").random()
        assert v1 == v2

    def test_spawn_offsets_seed(self):
        reg = RngRegistry(100)
        rep3 = reg.spawn(3)
        assert rep3.seed == 103
        direct = RngRegistry(103)
        assert rep3.stream("m").random() == direct.stream("m").random()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("abc")  # type: ignore[arg-type]

    @given(st.integers(0, 2**32), st.text(min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_reproducible_for_any_seed_and_name(self, seed, name):
        a = RngRegistry(seed).stream(name).integers(0, 1 << 30, size=4)
        b = RngRegistry(seed).stream(name).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)
