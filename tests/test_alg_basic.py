"""Tests for the Basic (re)configuration algorithm."""

from repro.core import Discover, DiscoverReply

from .helpers import line_positions
from .overlay_helpers import build_overlay


class TestEstablishment:
    def test_references_form_in_a_clique(self):
        pts = [[10, 10], [15, 10], [10, 15], [15, 15]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=60.0)
        # Everyone is 1 hop from everyone: all nodes reach MAXNCONN refs.
        for servent in overlay.servents.values():
            assert servent.connections.count == 3

    def test_references_are_asymmetric(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=60.0)
        for servent in overlay.servents.values():
            for conn in servent.connections:
                assert not conn.symmetric
                assert conn.initiator

    def test_cap_respected_in_dense_neighborhood(self):
        # 7 nodes all in range: still only MAXNCONN references each.
        pts = [[10 + 2 * i, 10] for i in range(7)]
        sim, _, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=120.0)
        for servent in overlay.servents.values():
            assert servent.connections.count <= 3

    def test_nonmembers_never_connect(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="basic", members=[0, 1])
        overlay.start(queries=False)
        sim.run(until=60.0)
        assert 2 not in overlay.servents
        for servent in overlay.servents.values():
            assert 2 not in servent.connections.peers()

    def test_discovery_radius_limits_reach(self):
        # Line of members spaced 8 m: node 0's flood (NHOPS=6) reaches
        # node 6 at most; node 8 can never be referenced by node 0.
        pts = line_positions(9, spacing=8.0)
        sim, _, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=120.0)
        assert all(p <= 6 for p in overlay.servents[0].connections.peers())


class TestMaintenance:
    def test_dead_peer_reference_closed(self):
        pts = [[10, 10], [15, 10]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=30.0)
        assert overlay.servents[0].connections.has(1)
        world.set_down(1)
        sim.run(until=120.0)
        assert not overlay.servents[0].connections.has(1)

    def test_reference_reestablished_after_revival(self):
        pts = [[10, 10], [15, 10]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=30.0)
        world.set_down(1)
        sim.run(until=120.0)
        world.set_down(1, down=False)
        sim.run(until=240.0)
        assert overlay.servents[0].connections.has(1)

    def test_both_sides_ping_mutual_references(self):
        # Two nodes that reference each other both send pings: ping
        # traffic is roughly symmetric (the paper's 2x effect).
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=300.0)
        pings = metrics.family_counts("ping")
        assert pings[0] > 0 and pings[1] > 0
        assert 0.5 < pings[0] / pings[1] < 2.0


class TestMessages:
    def test_full_node_still_answers_discovery(self):
        # Paper: "Every node that listens to this message answers it" --
        # even a node already at MAXNCONN references replies.
        pts = [[10 + 2 * i, 10] for i in range(5)]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="basic")
        overlay.start(queries=False)
        sim.run(until=120.0)
        full = overlay.servents[0]
        assert full.connections.is_full
        sent = []
        original = full.send
        full.send = lambda peer, msg: (sent.append((peer, msg)), original(peer, msg))
        full.algorithm.on_discovery(3, Discover(seeker=3, basic=True), hops=2)
        assert any(isinstance(m, DiscoverReply) for _, m in sent)
