"""Tests for the small-world theory module."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import AnalyticsEngine
from repro.theory import (
    lattice_clustering,
    lattice_pathlength,
    nmw_pathlength,
    overlay_smallworldness,
    random_clustering,
    random_pathlength,
    rewiring_sweep,
    ring_lattice,
    smallworld_sigma,
    watts_strogatz,
    ws_rewire,
)

# Stateless full-recompute lane over throwaway networkx graphs.
_engine = AnalyticsEngine(mode="full")


def clustering_coefficient(g):
    return _engine.clustering_coefficient(g)


def characteristic_path_length(g):
    return _engine.characteristic_path_length(g)


class TestRingLattice:
    def test_structure(self):
        g = ring_lattice(10, 4)
        assert g.number_of_nodes() == 10
        assert all(d == 4 for _, d in g.degree)
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and not g.has_edge(0, 3)

    def test_matches_networkx_ws_at_p0(self):
        ours = ring_lattice(20, 6)
        theirs = nx.watts_strogatz_graph(20, 6, 0.0)
        assert set(ours.edges) == set(theirs.edges)

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_lattice(10, 3)  # odd k
        with pytest.raises(ValueError):
            ring_lattice(4, 4)  # k >= n
        with pytest.raises(ValueError):
            ring_lattice(4, 0)

    def test_clustering_matches_formula(self):
        for k in (4, 6, 8):
            g = ring_lattice(60, k)
            assert clustering_coefficient(g) == pytest.approx(
                lattice_clustering(k), abs=1e-9
            )


class TestRewiring:
    def test_p_zero_is_identity(self):
        g = ring_lattice(20, 4)
        h = ws_rewire(g, 0.0, np.random.default_rng(0))
        assert set(g.edges) == set(h.edges)

    def test_edge_count_preserved(self):
        g = ring_lattice(40, 6)
        h = ws_rewire(g, 0.5, np.random.default_rng(1))
        assert h.number_of_edges() == g.number_of_edges()

    def test_no_self_loops_or_duplicates(self):
        g = watts_strogatz(50, 6, 1.0, np.random.default_rng(2))
        assert all(u != v for u, v in g.edges)

    def test_input_untouched(self):
        g = ring_lattice(20, 4)
        before = set(g.edges)
        ws_rewire(g, 1.0, np.random.default_rng(3))
        assert set(g.edges) == before

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ws_rewire(ring_lattice(10, 2), 1.5, np.random.default_rng(0))

    def test_small_world_window(self):
        # Modest rewiring collapses path length but keeps clustering.
        rng = np.random.default_rng(4)
        lattice = watts_strogatz(200, 8, 0.0, rng)
        rewired = watts_strogatz(200, 8, 0.05, rng)
        assert characteristic_path_length(rewired) < 0.7 * characteristic_path_length(
            lattice
        )
        assert clustering_coefficient(rewired) > 0.6 * clustering_coefficient(lattice)


class TestPredictions:
    def test_lattice_clustering_values(self):
        assert lattice_clustering(2) == 0.0
        assert lattice_clustering(4) == pytest.approx(0.5)
        # k -> inf limit is 3/4
        assert lattice_clustering(1000) == pytest.approx(0.75, abs=1e-2)
        with pytest.raises(ValueError):
            lattice_clustering(1)

    def test_lattice_pathlength(self):
        assert lattice_pathlength(100, 10) == 5.0
        with pytest.raises(ValueError):
            lattice_pathlength(0, 2)

    def test_random_refs(self):
        assert random_clustering(100, 5) == pytest.approx(0.05)
        assert random_pathlength(100, 10) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            random_clustering(1, 2)
        with pytest.raises(ValueError):
            random_pathlength(10, 1)

    def test_sigma_of_lattice_vs_random(self):
        rng = np.random.default_rng(5)
        small_world = watts_strogatz(300, 10, 0.05, rng)
        c = clustering_coefficient(small_world)
        l = characteristic_path_length(small_world)
        sigma = smallworld_sigma(c, l, 300, 10)
        assert sigma > 3.0  # clearly small-world
        random_g = watts_strogatz(300, 10, 1.0, rng)
        sigma_rand = smallworld_sigma(
            clustering_coefficient(random_g),
            characteristic_path_length(random_g),
            300,
            10,
        )
        assert sigma_rand < sigma

    def test_sigma_degenerate_is_nan(self):
        assert np.isnan(smallworld_sigma(0.5, float("nan"), 100, 8))
        assert np.isnan(smallworld_sigma(0.5, 2.0, 1, 8))

    def test_nmw_limits(self):
        # p=0 reduces to the lattice value.
        assert nmw_pathlength(200, 8, 0.0) == pytest.approx(
            lattice_pathlength(200, 8)
        )
        # more shortcuts -> shorter expected paths, monotonically
        values = [nmw_pathlength(200, 8, p) for p in (0.0, 0.01, 0.1, 1.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_nmw_validation(self):
        with pytest.raises(ValueError):
            nmw_pathlength(0, 8, 0.1)
        with pytest.raises(ValueError):
            nmw_pathlength(100, 8, 2.0)


class TestSweep:
    def test_sweep_shape(self):
        points = rewiring_sweep(n=100, k=6, ps=(0.0, 0.1, 1.0), reps=2, seed=0)
        assert [p.p for p in points] == [0.0, 0.1, 1.0]
        assert points[0].clustering_norm == pytest.approx(1.0)
        assert points[0].path_length_norm == pytest.approx(1.0)
        # path length collapses faster than clustering at p=0.1
        assert points[1].path_length_norm < points[1].clustering_norm

    def test_full_rewire_near_random_refs(self):
        points = rewiring_sweep(n=200, k=8, ps=(1.0,), reps=2, seed=1)
        p1 = points[0]
        assert p1.path_length == pytest.approx(random_pathlength(200, 8), rel=0.35)


class TestOverlayScore:
    def test_scores_simulated_like_graph(self):
        g = watts_strogatz(80, 6, 0.1, np.random.default_rng(6))
        out = overlay_smallworldness(g)
        assert out["n"] == 80
        assert out["sigma"] > 1.0
        assert "lattice_clustering" in out and "random_pathlength" in out

    def test_empty_graph(self):
        out = overlay_smallworldness(nx.Graph())
        assert np.isnan(out["sigma"])
