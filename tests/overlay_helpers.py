"""Helpers for full-stack overlay tests: static topologies + overlay."""

import numpy as np

from repro.aodv import AodvRouter
from repro.core import OverlayNetwork, P2pConfig, QueryConfig
from repro.metrics import MetricsCollector
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.routing import OracleRouter
from repro.sim import RngRegistry, Simulator


def build_overlay(
    positions,
    *,
    algorithm="regular",
    members=None,
    radio_range=10.0,
    routing="aodv",
    config=None,
    query_config=None,
    qualifiers=None,
    seed=0,
    num_files=5,
):
    """Full stack over a hand-placed static topology.

    Returns (sim, world, overlay, metrics).
    """
    pts = np.asarray(positions, dtype=float)
    n = len(pts)
    sim = Simulator()
    rng = RngRegistry(seed)
    mobility = Static(n, Area(1000, 1000), rng.stream("mobility"), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    channel = Channel(sim, world)
    router = (
        AodvRouter(sim, channel) if routing == "aodv" else OracleRouter(sim, world)
    )
    metrics = MetricsCollector(n)
    overlay = OverlayNetwork(
        sim,
        world,
        channel,
        router,
        members=members if members is not None else list(range(n)),
        algorithm=algorithm,
        config=config or P2pConfig(),
        query_config=query_config or QueryConfig(warmup=30.0),
        num_files=num_files,
        rng=rng,
        qualifiers=qualifiers,
        count_received=metrics.count_received,
    )
    return sim, world, overlay, metrics


def cluster_positions(n_clusters=2, per_cluster=4, gap=50.0, spacing=5.0):
    """Clusters of tightly packed nodes, clusters `gap` apart."""
    pts = []
    for c in range(n_clusters):
        cx = 10.0 + c * gap
        for i in range(per_cluster):
            pts.append([cx + (i % 2) * spacing, 10.0 + (i // 2) * spacing])
    return pts
