"""Integration tests for AODV route discovery, forwarding and repair."""

import numpy as np
import pytest

from repro.aodv import AodvConfig, AodvRouter
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator

from .helpers import line_positions


def make_aodv(positions, radio_range=10.0, config=None):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    channel = Channel(sim, world)
    router = AodvRouter(sim, channel, config=config)
    inbox = []
    router.register("app", lambda dst, src, payload, hops: inbox.append((dst, src, payload, hops)))
    return sim, world, channel, router, inbox


class TestDiscoveryAndDelivery:
    def test_multihop_delivery_on_line(self):
        sim, _, _, router, inbox = make_aodv(line_positions(5, spacing=8.0))
        router.send(0, 4, "hello", kind="app")
        sim.run(until=5.0)
        assert inbox == [(4, 0, "hello", 4)]

    def test_loopback(self):
        sim, _, _, router, inbox = make_aodv(line_positions(2, spacing=8.0))
        router.send(1, 1, "self", kind="app")
        sim.run(until=1.0)
        assert inbox == [(1, 1, "self", 0)]

    def test_single_hop(self):
        sim, _, _, router, inbox = make_aodv(line_positions(2, spacing=8.0))
        router.send(0, 1, "hi", kind="app")
        sim.run(until=2.0)
        assert inbox == [(1, 0, "hi", 1)]

    def test_route_cached_after_discovery(self):
        sim, _, _, router, inbox = make_aodv(line_positions(4, spacing=8.0))
        router.send(0, 3, "a", kind="app")
        sim.run(until=2.0)
        rreqs_after_first = router.control_overhead()["rreq_sent"]
        router.send(0, 3, "b", kind="app")
        sim.run(until=2.5)
        assert [p for _, _, p, _ in inbox] == ["a", "b"]
        # Second send reused the cached route: no new RREQ.
        assert router.control_overhead()["rreq_sent"] == rreqs_after_first

    def test_route_hops_reported(self):
        sim, _, _, router, _ = make_aodv(line_positions(4, spacing=8.0))
        assert router.route_hops(0, 3) == AodvRouter.UNKNOWN
        router.send(0, 3, "x", kind="app")
        sim.run(until=2.0)
        assert router.route_hops(0, 3) == 3
        assert router.route_hops(2, 2) == 0

    def test_expanding_ring_eventually_reaches_far_node(self):
        # 9 hops away: beyond ttl_start and threshold, needs net_diameter ring
        sim, _, _, router, inbox = make_aodv(line_positions(10, spacing=8.0))
        router.send(0, 9, "far", kind="app")
        sim.run(until=20.0)
        assert inbox == [(9, 0, "far", 9)]

    def test_unreachable_calls_on_fail(self):
        sim, _, _, router, inbox = make_aodv([[0, 0], [8, 0], [500, 500]])
        failed = []
        router.send(0, 2, "nope", kind="app", on_fail=failed.append)
        sim.run(until=60.0)
        assert failed == ["nope"]
        assert inbox == []

    def test_bidirectional_traffic(self):
        sim, _, _, router, inbox = make_aodv(line_positions(4, spacing=8.0))
        router.send(0, 3, "fwd", kind="app")
        sim.run(until=2.0)
        router.send(3, 0, "rev", kind="app")
        sim.run(until=4.0)
        assert (3, 0, "fwd", 3) in inbox and (0, 3, "rev", 3) in inbox


class TestIntermediateReply:
    def test_intermediate_node_with_route_replies(self):
        sim, _, _, router, inbox = make_aodv(line_positions(5, spacing=8.0))
        # Prime node 2's table with a route to 4.
        router.send(2, 4, "prime", kind="app")
        sim.run(until=2.0)
        rreqs_before = sum(a.rreq_sent for a in router.agents)
        router.send(0, 4, "main", kind="app")
        sim.run(until=4.0)
        assert (4, 0, "main", 4) in inbox
        # Node 0 originated a RREQ but node 2 answered from its cache:
        # only ONE new rreq origination (node 0's ring), and node 2
        # produced an intermediate RREP.
        assert sum(a.rreq_sent for a in router.agents) == rreqs_before + 1

    def test_intermediate_reply_can_be_disabled(self):
        cfg = AodvConfig(intermediate_reply=False)
        sim, _, _, router, inbox = make_aodv(line_positions(5, spacing=8.0), config=cfg)
        router.send(2, 4, "prime", kind="app")
        sim.run(until=2.0)
        router.send(0, 4, "main", kind="app")
        sim.run(until=4.0)
        assert (4, 0, "main", 4) in inbox


class TestRepair:
    def test_broken_route_triggers_rediscovery(self):
        sim, world, _, router, inbox = make_aodv(
        [[0, 0], [8, 0], [16, 0], [8, 6], [24, 0]]
        )
        # Path 0-1-2... wait for initial route, then kill node 1.
        router.send(0, 2, "first", kind="app")
        sim.run(until=2.0)
        assert (2, 0, "first", 2) in inbox
        world.set_down(1)
        router.send(0, 2, "second", kind="app")
        sim.run(until=10.0)
        # 0 -> 3 -> 2 detour (node 3 bridges at distance 10 from both)
        assert any(p == "second" for _, _, p, _ in inbox)

    def test_rerr_invalidates_neighbor_routes(self):
        sim, world, _, router, _ = make_aodv(line_positions(4, spacing=8.0))
        router.send(0, 3, "x", kind="app")
        sim.run(until=2.0)
        assert router.route_hops(1, 3) == 2  # relay learned the route
        world.set_down(2)
        router.send(0, 3, "y", kind="app")
        sim.run(until=1000.0)
        # After the failed forward + RERR, upstream routes through 2 die.
        assert router.route_hops(1, 3) == AodvRouter.UNKNOWN

    def test_queue_overflow_fails_packets(self):
        cfg = AodvConfig(queue_per_dest=2)
        sim, _, _, router, _ = make_aodv([[0, 0], [8, 0], [500, 500]], config=cfg)
        failed = []
        for i in range(5):
            router.send(0, 2, f"m{i}", kind="app", on_fail=failed.append)
        sim.run(until=60.0)
        assert sorted(failed) == [f"m{i}" for i in range(5)]


class TestLoopFreedom:
    def test_no_forwarding_loops_under_churn(self):
        # Random topology with churn: every delivered packet must have
        # travelled at most n hops (a loop would exceed it / never end).
        rng = np.random.default_rng(42)
        pts = rng.random((25, 2)) * 40
        sim, world, _, router, inbox = make_aodv(pts, radio_range=12)
        for k, (a, b) in enumerate([(0, 20), (5, 15), (3, 22), (7, 19)]):
            router.send(a, b, f"pkt{k}", kind="app")
        sim.schedule(1.0, world.set_down, 10)
        sim.schedule(1.5, world.set_down, 11)
        for k, (a, b) in enumerate([(0, 20), (5, 15)]):
            sim.schedule(
                2.0, lambda a=a, b=b, k=k: router.send(a, b, f"late{k}", kind="app")
            )
        sim.run(until=30.0)
        for dst, src, payload, hops in inbox:
            assert 0 < hops <= 25


class TestConfig:
    def test_ring_ttls_monotone_then_capped(self):
        cfg = AodvConfig(ttl_start=2, ttl_increment=2, ttl_threshold=7, net_diameter=20, rreq_retries=2)
        ttls = cfg.ring_ttls()
        assert ttls == [2, 4, 6, 20, 20, 20]

    def test_discovery_timeout_scales_with_ttl(self):
        cfg = AodvConfig()
        assert cfg.discovery_timeout(10) > cfg.discovery_timeout(2)
