"""Tests for scenario config, builder and runner."""

import numpy as np
import pytest

from repro.scenarios import (
    ScenarioConfig,
    build_scenario,
    run_repetitions,
    run_scenario,
)


class TestConfig:
    def test_paper_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.num_nodes == 50
        assert cfg.area_width == cfg.area_height == 100.0
        assert cfg.radio_range == 10.0
        assert cfg.p2p_fraction == 0.75
        assert cfg.num_files == 20
        assert cfg.max_freq == 0.4
        assert cfg.duration == 3600.0
        assert cfg.p2p.nhops_initial == 2
        assert cfg.p2p.max_nhops == 6
        assert cfg.p2p.nhops_basic == 6
        assert cfg.p2p.max_dist == 6
        assert cfg.p2p.max_connections == 3
        assert cfg.p2p.max_slaves == 3
        assert cfg.query.ttl == 6

    def test_num_members_rounding(self):
        assert ScenarioConfig(num_nodes=50).num_members == 38  # round(37.5)
        assert ScenarioConfig(num_nodes=150).num_members == 112  # round(112.5)

    def test_with_override(self):
        cfg = ScenarioConfig().with_(num_nodes=150, algorithm="hybrid")
        assert cfg.num_nodes == 150 and cfg.algorithm == "hybrid"
        assert cfg.radio_range == 10.0

    def test_repetition_seed(self):
        cfg = ScenarioConfig(seed=10)
        assert cfg.for_repetition(3).seed == 13

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(num_nodes=1)
        with pytest.raises(ValueError):
            ScenarioConfig(p2p_fraction=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(algorithm="gnutella2")
        with pytest.raises(ValueError):
            ScenarioConfig(routing="ospf")
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="teleport")
        with pytest.raises(ValueError):
            ScenarioConfig(duration=0)


class TestBuilder:
    def test_layers_wired(self):
        s = build_scenario(ScenarioConfig(num_nodes=20, duration=10.0))
        assert s.world.n == 20
        assert len(s.members) == 15
        assert len(s.overlay.servents) == 15
        assert s.metrics.n == 20

    def test_oracle_routing_option(self):
        from repro.routing import OracleRouter

        s = build_scenario(ScenarioConfig(num_nodes=10, routing="oracle"))
        assert isinstance(s.router, OracleRouter)

    def test_static_mobility_option(self):
        from repro.mobility import Static

        s = build_scenario(ScenarioConfig(num_nodes=10, mobility="static"))
        assert isinstance(s.mobility, Static)

    def test_same_seed_same_membership_and_files(self):
        a = build_scenario(ScenarioConfig(num_nodes=30, seed=5))
        b = build_scenario(ScenarioConfig(num_nodes=30, seed=5))
        assert a.members == b.members
        for m in a.members:
            assert a.overlay.servents[m].store.files() == b.overlay.servents[
                m
            ].store.files()

    def test_different_seed_different_membership(self):
        a = build_scenario(ScenarioConfig(num_nodes=40, seed=1))
        b = build_scenario(ScenarioConfig(num_nodes=40, seed=2))
        assert a.members != b.members or a.overlay.servents[
            a.members[0]
        ].store.files() != b.overlay.servents[b.members[0]].store.files()


class TestRunner:
    def test_run_scenario_harvests(self):
        res = run_scenario(
            ScenarioConfig(num_nodes=20, duration=120.0, seed=3, algorithm="regular")
        )
        assert res.totals["connect"] > 0
        assert len(res.sorted_received["connect"]) == 15
        assert (np.diff(res.sorted_received["connect"]) <= 0).all()
        assert len(res.file_stats) == 20
        assert res.energy.shape == (20,)
        assert res.events > 0

    def test_determinism(self):
        cfg = ScenarioConfig(num_nodes=20, duration=120.0, seed=7)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a.totals == b.totals
        assert np.array_equal(a.sorted_received["connect"], b.sorted_received["connect"])
        assert np.array_equal(a.energy, b.energy)

    def test_repetitions_differ(self):
        cfg = ScenarioConfig(num_nodes=20, duration=120.0, seed=0)
        results = run_repetitions(cfg, 2)
        assert len(results) == 2
        assert results[0].totals != results[1].totals

    def test_repetitions_validation(self):
        with pytest.raises(ValueError):
            run_repetitions(ScenarioConfig(), 0)

    def test_queries_can_be_disabled(self):
        res = run_scenario(
            ScenarioConfig(num_nodes=15, duration=120.0, queries=False)
        )
        assert res.num_queries == 0
        assert res.totals["query"] == 0
