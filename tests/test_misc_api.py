"""Small API-surface tests: registries, frame ids, router base guards."""

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHMS, make_algorithm
from repro.experiments.figures import FIGURES
from repro.net import Frame
from repro.routing import OracleRouter

from .helpers import line_positions, make_world
from .overlay_helpers import build_overlay


class TestAlgorithmRegistry:
    def test_all_four_registered(self):
        assert set(ALGORITHMS) == {"basic", "regular", "random", "hybrid"}

    def test_unknown_name_rejected(self):
        pts = [[10, 10], [15, 10]]
        _, _, overlay, _ = build_overlay(pts, algorithm="regular")
        servent = overlay.servents[0]
        with pytest.raises(ValueError):
            make_algorithm("chord", servent, servent.cfg, np.random.default_rng(0))

    def test_factory_names_match_keys(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name == name


class TestFiguresRegistry:
    def test_all_eight_registered(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(5, 13)}

    def test_registry_callable(self):
        res = FIGURES["fig9"](duration=60.0, reps=1, seed=3, routing="oracle")
        assert res.exp_id == "fig9" and res.family == "ping"


class TestFrame:
    def test_uids_unique(self):
        frames = [Frame(src=0, dst=1, kind="k", payload=None) for _ in range(50)]
        assert len({f.uid for f in frames}) == 50


class TestRouterBase:
    def test_duplicate_handler_rejected(self):
        _, world, _ = make_world(line_positions(2))
        router = OracleRouter(world.sim, world)
        router.register("k", lambda *a: None)
        with pytest.raises(ValueError):
            router.register("k", lambda *a: None)

    def test_unknown_kind_dropped_silently(self):
        sim, world, _ = make_world(line_positions(2, spacing=5.0))
        router = OracleRouter(sim, world)
        router.send(0, 1, "x", kind="nobody")  # no handler: no crash
        sim.run()


class TestPackageSurface:
    def test_top_level_lazy_imports(self):
        import repro

        assert repro.ScenarioConfig is not None
        assert callable(repro.run_scenario)
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_version(self):
        import repro

        assert repro.__version__
