"""Tests for the trace recorder."""

import json

import pytest

from repro.net import Frame
from repro.sim import TraceRecorder, attach_tracer

from .helpers import line_positions, make_world


class TestRecorder:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_record_and_len(self):
        rec = TraceRecorder()
        rec.record(1.0, "tx", 0, 1, "p2p", "Ping")
        rec.record(2.0, "rx", 1, 0, "p2p", "Ping")
        assert len(rec) == 2
        assert rec.total_seen == 2

    def test_eviction_keeps_total(self):
        rec = TraceRecorder(capacity=10)
        for i in range(25):
            rec.record(float(i), "tx", 0)
        assert len(rec) <= 10
        assert rec.total_seen == 25
        # newest records survive
        assert rec.records[-1].time == 24.0

    def test_disabled_recorder_drops(self):
        rec = TraceRecorder()
        rec.enabled = False
        rec.record(1.0, "tx", 0)
        assert len(rec) == 0

    def test_filter(self):
        rec = TraceRecorder()
        rec.record(1.0, "tx", 0, layer="a")
        rec.record(2.0, "rx", 1, layer="a")
        rec.record(3.0, "tx", 0, layer="b")
        assert rec.count(kind="tx") == 2
        assert rec.count(node=0, layer="b") == 1
        assert rec.count(t_min=1.5, t_max=2.5) == 1

    def test_ndjson_roundtrip(self):
        rec = TraceRecorder()
        rec.record(1.5, "tx", 3, 4, "x", "Y")
        obj = json.loads(rec.to_ndjson())
        assert obj == {
            "time": 1.5,
            "kind": "tx",
            "node": 3,
            "other": 4,
            "layer": "x",
            "detail": "Y",
        }

    def test_csv_header_and_rows(self):
        rec = TraceRecorder()
        rec.record(1.0, "rx", 2)
        lines = rec.to_csv().strip().splitlines()
        assert lines[0] == "time,kind,node,other,layer,detail"
        assert lines[1].startswith("1.000000,rx,2")

    def test_clear(self):
        rec = TraceRecorder()
        rec.record(1.0, "tx", 0)
        rec.clear()
        assert len(rec) == 0


class TestAttachTracer:
    def test_traces_unicast_tx_and_rx(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        ch.nodes[1].register("t", lambda f: None)
        rec = attach_tracer(ch)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="hi"))
        sim.run()
        assert rec.count(kind="tx", node=0) == 1
        assert rec.count(kind="rx", node=1) == 1

    def test_traces_failed_unicast_as_drop(self):
        sim, world, ch = make_world([[0, 0], [500, 0]])
        rec = attach_tracer(ch)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="hi"))
        sim.run()
        assert rec.count(kind="drop", node=0) == 1

    def test_traces_broadcast(self):
        sim, world, ch = make_world([[10, 10], [15, 10], [10, 15]])
        rec = attach_tracer(ch)
        ch.broadcast(Frame(src=0, dst=-1, kind="t", payload=None))
        sim.run()
        assert rec.count(kind="tx") == 1
        assert rec.count(kind="rx") == 2

    def test_chains_existing_observer(self):
        sim, world, ch = make_world(line_positions(2, spacing=5.0))
        seen = []
        ch.on_deliver = lambda nid, f: seen.append(nid)
        rec = attach_tracer(ch)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload=None))
        sim.run()
        assert seen == [1]  # original observer still fires
        assert rec.count(kind="rx") == 1

    def test_full_scenario_traceable(self):
        from repro.scenarios import ScenarioConfig, build_scenario

        s = build_scenario(ScenarioConfig(num_nodes=15, duration=60.0, seed=2))
        rec = attach_tracer(s.channel)
        s.run()
        assert rec.total_seen > 0
        assert rec.count(kind="rx") > 0
