"""Tests for report rendering helpers (paper comparison, checks)."""

import numpy as np

from repro.experiments.figures import FigureResult
from repro.experiments.report import render_checks, render_paper_comparison


def curve_result(totals, exp_id="fig7", family="connect"):
    res = FigureResult(
        exp_id=exp_id,
        kind="message_curve",
        num_nodes=50,
        duration=100.0,
        reps=1,
        family=family,
    )
    res.series = {
        alg: {"curve": np.array([float(t), float(t) / 2])} for alg, t in totals.items()
    }
    res.totals = {k: float(v) for k, v in totals.items()}
    return res


class TestRenderPaperComparison:
    def test_agreeing_marks(self):
        res = curve_result({"basic": 100, "regular": 40, "random": 60, "hybrid": 40})
        out = render_paper_comparison(res)
        assert "AGREES" in out
        assert "DIFFERS" not in out
        assert "Connect messages (50 nodes" in out

    def test_differing_marks(self):
        res = curve_result({"basic": 5, "regular": 400, "random": 6, "hybrid": 4})
        out = render_paper_comparison(res)
        assert "DIFFERS" in out

    def test_contains_paper_prose(self):
        res = curve_result({"basic": 100, "regular": 40, "random": 60, "hybrid": 40})
        out = render_paper_comparison(res)
        assert "indiscriminately" in out  # quoted paper text


class TestRenderChecks:
    def test_pass_and_fail_marks(self):
        good = curve_result({"basic": 100, "regular": 40, "random": 60, "hybrid": 40})
        out = render_checks(good)
        assert "[PASS]" in out
        bad = curve_result({"basic": 1, "regular": 400, "random": 2, "hybrid": 1})
        assert "[FAIL]" in render_checks(bad)
