"""Tests for load-balance metrics (Gini, Lorenz, Jain)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import gini, jain_fairness, load_balance_report, lorenz_curve

loads = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_approaches_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini(v) == pytest.approx(0.99, abs=1e-9)

    def test_known_value(self):
        # loads 1,2,3,4 -> G = 0.25
        assert gini(np.array([1.0, 2.0, 3.0, 4.0])) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.array([5.0])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([1.0, -1.0]))

    @given(loads)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, values):
        g = gini(np.array(values))
        assert -1e-9 <= g < 1.0

    @given(loads, st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariant(self, values, scale):
        v = np.array(values)
        assert gini(v) == pytest.approx(gini(v * scale), abs=1e-9)


class TestLorenz:
    def test_endpoints(self):
        x, y = lorenz_curve(np.array([1.0, 2.0, 3.0]))
        assert x[0] == y[0] == 0.0
        assert x[-1] == pytest.approx(1.0) and y[-1] == pytest.approx(1.0)

    def test_uniform_is_diagonal(self):
        x, y = lorenz_curve(np.full(4, 2.0))
        assert np.allclose(x, y)

    def test_curve_below_diagonal(self):
        x, y = lorenz_curve(np.array([1.0, 1.0, 10.0]))
        assert (y <= x + 1e-12).all()

    def test_monotone(self):
        _, y = lorenz_curve(np.array([3.0, 1.0, 2.0]))
        assert (np.diff(y) >= 0).all()

    def test_zero_loads(self):
        x, y = lorenz_curve(np.zeros(3))
        assert np.allclose(x, y)


class TestJain:
    def test_uniform_is_one(self):
        assert jain_fairness(np.full(8, 3.0)) == pytest.approx(1.0)

    def test_concentrated_is_one_over_n(self):
        v = np.zeros(10)
        v[0] = 5.0
        assert jain_fairness(v) == pytest.approx(0.1)

    def test_empty_and_zero(self):
        assert jain_fairness(np.array([])) == 1.0
        assert jain_fairness(np.zeros(4)) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness(np.array([-1.0]))

    @given(loads)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, values):
        v = np.array(values)
        j = jain_fairness(v)
        assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9


class TestReport:
    def test_bundle(self):
        rep = load_balance_report(np.array([1.0, 2.0, 3.0, 4.0]))
        assert rep["gini"] == pytest.approx(0.25)
        assert rep["max_share"] == pytest.approx(0.4)
        assert rep["mean"] == pytest.approx(2.5)
        assert rep["max"] == 4.0

    def test_gini_orders_algorithms_like_the_paper(self):
        # A hybrid-like skewed load has a higher Gini than a
        # regular-like even load -- the §7.4 argument, quantified.
        even = np.array([10.0, 11, 9, 10, 10, 10])
        skewed = np.array([40.0, 38, 5, 4, 6, 5])
        assert gini(skewed) > gini(even) + 0.2
