"""Calendar-queue lane: trace-identity fuzzing and structural tests.

The calendar lane's proof obligation (DESIGN.md §5) is *exact*
``(time, priority, seq)`` dispatch-order equality with the binary-heap
reference lane -- under mixed delays, priorities, cancellations,
re-schedules, ``weight=k`` batch entries, daemon events, and the
adversarial time distributions (all-same-time, bimodal gaps, monotone
drift) that force the queue through bucket resizes and overflow spills.

The workload driver below replays one seeded random schedule script on
both lanes: because dispatch order is identical, the script's RNG stays
in lockstep, so both lanes see byte-identical operation sequences and
every kernel counter (not just the trace) must agree exactly.
"""

import numpy as np
import pytest

from repro.sim import CalendarQueue, HeapQueue, Priority, Simulator
from repro.sim.events import Event

SEEDS = (1, 2, 3)
DISTRIBUTIONS = ("uniform", "same_time", "bimodal", "drift")


# ----------------------------------------------------------------------
# workload driver
# ----------------------------------------------------------------------
def _delay(dist: str, rng, tick: list) -> float:
    """One inter-event delay drawn from the named distribution."""
    if dist == "uniform":
        return float(rng.uniform(0.0, 50.0))
    if dist == "same_time":
        return 10.0
    if dist == "bimodal":
        # Two operating points three orders of magnitude apart: any fixed
        # bucket width is wrong for one of them.
        base = 0.001 if rng.random() < 0.5 else 400.0
        return base * float(rng.uniform(0.5, 1.5))
    # "drift": the operating point marches monotonically, exhausting
    # window after window (each one a spill).
    tick[0] += 1
    return 20.0 * tick[0] + float(rng.uniform(0.0, 5.0))


def _drive(queue: str, seed: int, dist: str, *, initial: int = 400, budget: int = 900):
    """Run one seeded schedule script on one lane; return (trace, stats, sim).

    The script mixes priorities, weights, daemon entries, cancellations,
    re-schedules and dispatch-time cascades; ``budget`` caps the cascade
    so every run terminates.
    """
    sim = Simulator(queue=queue)
    rng = np.random.default_rng(seed)
    tick = [0]
    live: list = []
    remaining = [budget]
    trace: list = []

    def fire():
        roll = rng.random()
        if roll < 0.30 and remaining[0] > 0:
            # cascade: schedule 1-3 follow-ups (zero-delay included --
            # they land in the *live* current bucket, the trickiest path)
            for _ in range(int(rng.integers(1, 4))):
                remaining[0] -= 1
                d = 0.0 if rng.random() < 0.2 else _delay(dist, rng, tick)
                live.append(
                    sim.schedule(
                        d,
                        fire,
                        priority=int(rng.integers(0, 3)),
                        weight=int(rng.integers(1, 5)),
                    )
                )
        elif roll < 0.45 and live:
            # cancel a pending handle (cancel-after-dispatch no-ops are
            # part of the contract and exercised implicitly)
            live[int(rng.integers(0, len(live)))].cancel()
        elif roll < 0.55 and live and remaining[0] > 0:
            # re-schedule: cancel + fresh entry at a new time
            live[int(rng.integers(0, len(live)))].cancel()
            remaining[0] -= 1
            live.append(
                sim.schedule(
                    _delay(dist, rng, tick), fire, priority=int(rng.integers(0, 3))
                )
            )

    for _ in range(initial):
        daemon = rng.random() < 0.1
        live.append(
            sim.schedule(
                _delay(dist, rng, tick),
                fire,
                priority=int(rng.integers(0, 3)),
                daemon=daemon,
                weight=int(rng.integers(1, 5)),
            )
        )
    while True:
        ev = sim.step()
        if ev is None:
            break
        trace.append((ev.time, ev.priority, ev.seq, ev.daemon, ev.weight))
        # the O(1) pending count must track the brute scan at every step
        assert sim.pending() == sim._brute_pending()
    return trace, sim.stats(), sim


def _comparable(stats: dict) -> dict:
    """Kernel stats minus the calendar-lane-only calibration keys."""
    return {k: v for k, v in stats.items() if not k.startswith("calq_")}


# ----------------------------------------------------------------------
# trace identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_trace_identical_heap_vs_calendar(seed, dist):
    ref_trace, ref_stats, _ = _drive("heap", seed, dist)
    cal_trace, cal_stats, cal_sim = _drive("calendar", seed, dist)
    # Exact (time, priority, seq, daemon, weight) dispatch sequence.
    assert cal_trace == ref_trace
    # Identical op sequences mean *every* shared counter agrees exactly --
    # including events_skipped and heap_compactions, because the compact
    # trigger depends only on queue length and cancel count.
    assert _comparable(cal_stats) == _comparable(ref_stats)
    assert len(cal_trace) > 200  # the script actually did something
    # The clock never moves backwards.  (The full key sequence is *not*
    # globally sorted: a cascade scheduled at the current time with a
    # higher priority fires after the event that created it, on both
    # lanes alike -- which the trace equality above already proved.)
    times = [t for (t, _, _, _, _) in cal_trace]
    assert times == sorted(times)
    if dist in ("uniform", "bimodal"):
        # 400+ pending entries push occupancy past the grow threshold.
        assert cal_sim.stats()["calq_resizes"] >= 1
    if dist == "drift":
        # A marching operating point exhausts window after window.
        assert cal_sim.stats()["calq_spills"] >= 1


def test_all_same_time_single_bucket_order():
    # Degenerate distribution: every entry in one bucket, one sort --
    # priority then seq must still order the dispatches.
    ref_trace, _, _ = _drive("heap", 7, "same_time", initial=300, budget=100)
    cal_trace, _, _ = _drive("calendar", 7, "same_time", initial=300, budget=100)
    assert cal_trace == ref_trace


# ----------------------------------------------------------------------
# run(until)/compaction interplay (calendar path included)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_run_until_compaction_accounting_exact(queue):
    sim = Simulator(queue=queue)
    evs = [sim.schedule(5.0 + (i % 50), lambda: None) for i in range(300)]
    sim.run(until=4.0)  # horizon before the first event: nothing fires
    assert sim.events_dispatched == 0
    assert sim.now == 4.0
    # Cancel past the half-queue threshold: compaction must fire and the
    # lazy-skip bookkeeping must reset exactly.
    for ev in evs[:160]:
        ev.cancel()
    # Compaction fires at cancel #151 (151 dead * 2 > 300 queued) and
    # resets the dead count; the 9 cancels after it re-accumulate.
    assert sim.heap_compactions >= 1
    assert sim._cancelled_pending == 9
    assert sim.pending() == sim._brute_pending() == 140
    sim.run(until=30.0)
    assert sim.pending() == sim._brute_pending()
    sim.run()
    assert sim.pending() == sim._brute_pending() == 0
    assert sim.events_dispatched == 140
    assert sim.events_skipped == 160  # purged + skipped-on-pop, no double count
    assert sim.now == 54.0


def test_calendar_peek_time_skips_cancelled_heads():
    sim = Simulator(queue="calendar")
    doomed = [sim.schedule(float(i), lambda: None) for i in range(1, 5)]
    keeper = sim.schedule(9.0, lambda: None)
    for ev in doomed:
        ev.cancel()
    assert sim.peek_time() == 9.0
    assert sim.events_skipped == 4
    assert sim.pending() == sim._brute_pending() == 1
    sim.run()
    assert keeper.done


# ----------------------------------------------------------------------
# structural tests on the bare queue
# ----------------------------------------------------------------------
class _Owner:
    def _note_cancel(self):
        pass


_OWNER = _Owner()


def _ev(t: float, seq: int, *, priority: int = Priority.NORMAL) -> Event:
    return Event(
        time=t, priority=priority, seq=seq, fn=lambda: None, args=(), owner=_OWNER
    )


def test_calendar_drains_in_key_order_and_resizes():
    q = CalendarQueue()
    rng = np.random.default_rng(0)
    events = [_ev(float(t), i) for i, t in enumerate(rng.uniform(0, 1000, 2000))]
    for ev in events:
        q.push(ev)
    assert q.resizes >= 1  # 2000 entries blow through 8 buckets * 16
    assert q.nbuckets > 8
    assert len(q) == 2000
    out = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        out.append(ev.sort_key())
    assert out == sorted(out)
    assert len(out) == 2000 and len(q) == 0


def test_calendar_overflow_spills_forward():
    q = CalendarQueue()
    # Everything beyond the initial 8-second window lands in overflow and
    # must be pulled forward (spill) when the window drains.
    for i in range(64):
        q.push(_ev(100.0 + i, i))
    near = _ev(1.0, 999)
    q.push(near)
    assert q.pop() is near
    popped = [q.pop().time for _ in range(64)]
    assert popped == sorted(popped)
    assert q.spills >= 1
    assert q.migrated > 0


def test_calendar_drop_cancelled_preserves_cursor_tail():
    q = CalendarQueue()
    events = [_ev(float(i % 5), i) for i in range(40)]
    for ev in events:
        q.push(ev)
    # consume a few so the current bucket has a live cursor
    first = [q.pop() for _ in range(3)]
    victims = [ev for ev in events if ev not in first][::2]
    for ev in victims:
        ev.cancelled = True
    purged = q.drop_cancelled()
    assert purged == len(victims)
    assert len(q) == 40 - 3 - purged
    out = [q.pop().sort_key() for _ in range(len(q))]
    assert out == sorted(out)


def test_heapqueue_reference_protocol():
    q = HeapQueue()
    a, b = _ev(2.0, 0), _ev(1.0, 1)
    q.push(a)
    q.push(b)
    assert q.peek() is b
    b.cancelled = True
    assert q.drop_cancelled() == 1
    assert q.pop() is a
    assert q.pop() is None and q.peek() is None


def test_calendar_occupancy_gauge_sane():
    q = CalendarQueue()
    assert q.occupancy() == 0.0
    for i in range(32):
        q.push(_ev(float(i), i))
    assert q.occupancy() == 32 / q.nbuckets
