"""Tests for the energy-based Hybrid qualifier (§6.2: "this qualifier
can be related to any characteristic of the node, e.g. energy level")."""

import numpy as np

from repro.core import PeerState
from repro.mobility import Area, Static
from repro.net import Channel, EnergyModel, World
from repro.aodv import AodvRouter
from repro.core import OverlayNetwork, P2pConfig, QueryConfig
from repro.metrics import MetricsCollector
from repro.sim import RngRegistry, Simulator


def build_energy_overlay(positions, capacity=1.0):
    pts = np.asarray(positions, dtype=float)
    n = len(pts)
    sim = Simulator()
    rng = RngRegistry(3)
    mobility = Static(n, Area(1000, 1000), rng.stream("mobility"), positions=pts)
    world = World(
        sim, mobility, radio_range=10.0, energy=EnergyModel(n, capacity=capacity)
    )
    channel = Channel(sim, world)
    router = AodvRouter(sim, channel)
    metrics = MetricsCollector(n)
    overlay = OverlayNetwork(
        sim,
        world,
        channel,
        router,
        members=list(range(n)),
        algorithm="hybrid",
        rng=rng,
        count_received=metrics.count_received,
    )
    for servent in overlay.servents.values():
        servent.algorithm.use_energy_qualifier()
    return sim, world, overlay


class TestEnergyQualifier:
    def test_qualifier_tracks_remaining_energy(self):
        sim, world, overlay = build_energy_overlay([[10, 10], [15, 10]], capacity=1.0)
        alg0 = overlay.servents[0].algorithm
        assert alg0.qualifier == 1.0
        world.energy.charge_tx(0, 50_000)  # drain some battery
        assert 0.0 <= alg0.qualifier < 1.0

    def test_fullest_battery_becomes_master(self):
        sim, world, overlay = build_energy_overlay(
            [[10, 10], [15, 10], [10, 15]], capacity=1.0
        )
        # Pre-drain nodes 1 and 2 so node 0 clearly outranks them.
        world.energy.charge_tx(1, 60_000)
        world.energy.charge_tx(2, 80_000)
        overlay.start(queries=False)
        sim.run(until=200.0)
        states = {nid: s.algorithm.state for nid, s in overlay.servents.items()}
        assert states[0] is PeerState.MASTER
        assert states[1] is PeerState.SLAVE and states[2] is PeerState.SLAVE

    def test_static_fallback_when_infinite_capacity(self):
        sim, world, overlay = build_energy_overlay(
            [[10, 10], [15, 10]], capacity=float("inf")
        )
        alg0 = overlay.servents[0].algorithm
        alg0.qualifier = 0.7
        assert alg0.qualifier == 0.7  # static value used, no energy signal

    def test_setter_updates_static_value(self):
        sim, world, overlay = build_energy_overlay([[10, 10], [15, 10]])
        alg0 = overlay.servents[0].algorithm
        alg0.use_energy_qualifier(False)
        alg0.qualifier = 0.123
        assert alg0.qualifier == 0.123

    def test_drained_master_can_be_displaced(self):
        # Start: node 0 is the strongest and masters 1 and 2.  Then node
        # 0's battery is drained below the others; after the hierarchy
        # breaks (master demotion or slave loss), node 0 must NOT become
        # master again while weaker in energy.
        sim, world, overlay = build_energy_overlay(
            [[10, 10], [15, 10], [10, 15]], capacity=1.0
        )
        world.energy.charge_tx(1, 40_000)
        world.energy.charge_tx(2, 60_000)
        overlay.start(queries=False)
        sim.run(until=200.0)
        assert overlay.servents[0].algorithm.state is PeerState.MASTER
        # Drain node 0 heavily (below everyone).
        world.energy.charge_tx(0, 200_000)
        # Force reorganization by demoting it administratively.
        overlay.servents[0].algorithm._become_initial()
        sim.run(until=900.0)
        states = {nid: s.algorithm.state for nid, s in overlay.servents.items()}
        masters = [nid for nid, st in states.items() if st is PeerState.MASTER]
        if masters:
            # the re-elected master is a higher-energy node
            assert 0 not in masters or all(
                world.energy.remaining(0) >= world.energy.remaining(m)
                for m in masters
                if m != 0
            )
