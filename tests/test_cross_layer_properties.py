"""Cross-layer property tests: flood reach vs BFS, AODV vs oracle.

These pin down the invariants that make the paper's hop-based logic
meaningful: the controlled broadcast reaches exactly the BFS ball of its
TTL, and AODV's delivered hop counts can never beat the BFS distance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aodv import AodvRouter
from repro.mobility import Area, Static
from repro.net import Channel, FloodManager, World
from repro.sim import Simulator


def random_world(seed, n=20, area=60.0, radio=12.0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * area
    sim = Simulator()
    mobility = Static(n, Area(area, area), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio)
    channel = Channel(sim, world)
    return sim, world, channel


class TestFloodVsBfs:
    @given(st.integers(0, 500), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_flood_reaches_exactly_the_bfs_ball(self, seed, ttl):
        sim, world, channel = random_world(seed)
        heard = set()
        mgrs = [
            FloodManager(node, channel, "f", deliver=lambda o, p, h, i=i: heard.add(i))
            for i, node in enumerate(channel.nodes)
        ]
        mgrs[0].originate("x", nhops=ttl)
        sim.run()
        dist = world.hops_from(0)
        expected = {i for i in range(world.n) if 0 < dist[i] <= ttl}
        assert heard == expected

    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_flood_hop_counts_match_bfs(self, seed):
        sim, world, channel = random_world(seed)
        hops_seen = {}
        mgrs = [
            FloodManager(
                node, channel, "f", deliver=lambda o, p, h, i=i: hops_seen.setdefault(i, h)
            )
            for i, node in enumerate(channel.nodes)
        ]
        mgrs[0].originate("x", nhops=8)
        sim.run()
        dist = world.hops_from(0)
        for node, h in hops_seen.items():
            # The first copy to arrive travelled a shortest path.
            assert h == dist[node]


class TestAodvVsBfs:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_delivered_hops_at_least_bfs_distance(self, seed):
        sim, world, channel = random_world(seed)
        router = AodvRouter(sim, channel)
        delivered = []
        router.register("t", lambda dst, src, p, h: delivered.append((src, dst, h)))
        targets = [(0, world.n - 1), (1, world.n // 2), (2, world.n - 3)]
        for a, b in targets:
            if a != b:
                router.send(a, b, "x", kind="t")
        sim.run(until=30.0)
        for src, dst, h in delivered:
            bfs = world.hop_distance(src, dst)
            assert bfs > 0
            assert h >= bfs  # can't beat the shortest path
            assert h <= world.n  # and never loops

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_static_world_aodv_finds_route_iff_connected(self, seed):
        sim, world, channel = random_world(seed, n=15)
        router = AodvRouter(sim, channel)
        ok, failed = [], []
        router.register("t", lambda dst, src, p, h: ok.append(dst))
        router.send(0, 14, "x", kind="t", on_fail=lambda p: failed.append(p))
        sim.run(until=60.0)
        if world.reachable(0, 14):
            assert ok == [14] and not failed
        else:
            assert failed == ["x"] and not ok
