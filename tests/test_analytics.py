"""AnalyticsEngine: lane identity, epoch contract, API delegation.

The engine's whole value proposition is that its fast lanes are *free*
semantically: ``incremental`` must equal ``full`` and ``parallel`` must
equal ``serial`` exactly -- same integers, same floats bit-for-bit --
over churning, moving, dying topologies.  These tests enforce that,
plus the epoch-keyed cache contract, the legacy-module surface (only
the closed-form helpers remain) and the ScenarioConfig/CLI lane
plumbing.
"""

import networkx as nx
import numpy as np
import pytest

from repro.cli import build_parser
from repro.metrics import smallworld as smallworld_mod
from repro.metrics import connectivity as connectivity_mod
from repro.metrics.analytics import (
    ANALYTICS_EXECUTION_LANES,
    ANALYTICS_MODES,
    AnalyticsEngine,
    engine_for_world,
    set_world_engine,
)
from repro.metrics.graphfast import graph_csr
from repro.obs.registry import Registry
from repro.parallel import default_chunksize, resolve_processes, shard_ranges
from repro.scenarios import ScenarioConfig, run_scenario

from .helpers import line_positions, make_world


# ----------------------------------------------------------------------
# shared pool-sizing helpers (repro.parallel)
# ----------------------------------------------------------------------
class TestPoolHelpers:
    def test_resolve_default_is_cpu_count(self):
        assert resolve_processes(None) >= 1

    def test_resolve_explicit(self):
        assert resolve_processes(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_resolve_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            resolve_processes(bad)

    def test_chunksize_policy(self):
        # ceil(jobs / 4p), floored at 1, capped at 32 -- the sweep policy.
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(1, 4) == 1
        assert default_chunksize(17, 4) == 2
        assert default_chunksize(10_000, 4) == 32

    def test_chunksize_rejects_negative_jobs(self):
        with pytest.raises(ValueError):
            default_chunksize(-1, 4)

    def test_shards_cover_range_disjointly(self):
        shards = shard_ranges(1000, 4, granularity=64)
        assert shards[0][0] == 0 and shards[-1][1] == 1000
        for (_, hi), (lo2, _) in zip(shards, shards[1:]):
            assert hi == lo2
        # all but the last shard align to the BFS chunk width
        for lo, hi in shards[:-1]:
            assert (hi - lo) % 64 == 0

    def test_shards_empty_and_invalid(self):
        assert shard_ranges(0, 4) == []
        with pytest.raises(ValueError):
            shard_ranges(10, 2, granularity=0)


# ----------------------------------------------------------------------
# incremental vs full: exact equality over seeded churn
# ----------------------------------------------------------------------
def _rgg(n, radius, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * 100.0
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        d = np.hypot(*(pts - pts[u]).T)
        for v in np.flatnonzero(d <= radius):
            if v > u:
                g.add_edge(u, int(v))
    return g


def _churn(g, rng, swaps):
    """Remove ``swaps`` random edges, add ``swaps`` random non-edges."""
    n = g.number_of_nodes()
    edges = list(g.edges)
    rng.shuffle(edges)
    for u, v in edges[:swaps]:
        g.remove_edge(u, v)
    added = 0
    while added < swaps:
        u, v = (int(x) for x in rng.integers(n, size=2))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1


@pytest.mark.parametrize("radius", [12.0, 25.0], ids=["sparse", "dense"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_incremental_equals_full_over_churn(radius, seed):
    g = _rgg(60, radius, seed)
    rng = np.random.default_rng(100 + seed)
    incr = AnalyticsEngine(mode="incremental")
    full = AnalyticsEngine(mode="full")
    for epoch in range(12):
        if epoch:
            _churn(g, rng, swaps=3)
        indptr, indices, _ = graph_csr(g)
        bi = incr.harvest(indptr, indices, key="view", epoch=epoch)
        bf = full.harvest(indptr, indices)
        assert bi == bf  # exact, every key, every float
        ci = incr.characteristic_path_length_csr(
            indptr, indices, key="view", epoch=epoch
        )
        cf = full.characteristic_path_length_csr(indptr, indices)
        assert ci == cf or (np.isnan(ci) and np.isnan(cf))
    hits = incr.registry.counter("analytics.incremental_hits", layer="metrics")
    assert hits.value > 0  # the delta path actually ran


def test_explicit_deltas_equal_full():
    g = _rgg(50, 16.0, seed=7)
    incr = AnalyticsEngine(mode="incremental")
    full = AnalyticsEngine(mode="full")
    indptr, indices, _ = graph_csr(g)
    incr.harvest(indptr, indices, key="k", epoch=0)
    removed = list(g.edges)[:4]
    for u, v in removed:
        g.remove_edge(u, v)
    added = []
    for u, v in ((1, 40), (2, 47), (3, 33)):
        if not g.has_edge(u, v):  # the delta must be the exact transition
            g.add_edge(u, v)
            added.append((u, v))
    indptr, indices, _ = graph_csr(g)
    bi = incr.harvest(
        indptr, indices, key="k", epoch=1, added=added, removed=removed
    )
    assert bi == full.harvest(indptr, indices)


def test_epoch_discontinuity_falls_back_to_full():
    g = _rgg(40, 15.0, seed=4)
    eng = AnalyticsEngine(mode="incremental")
    indptr, indices, _ = graph_csr(g)
    eng.harvest(indptr, indices, key="k", epoch=10)
    fallbacks = eng.registry.counter("analytics.epoch_fallbacks", layer="metrics")
    before = fallbacks.value
    # Epoch moving backwards = a different world generation: rebuild.
    b = eng.harvest(indptr, indices, key="k", epoch=3)
    assert fallbacks.value == before + 1
    assert b == AnalyticsEngine(mode="full").harvest(indptr, indices)


def test_node_count_change_falls_back_to_full():
    eng = AnalyticsEngine(mode="incremental")
    g = _rgg(30, 15.0, seed=5)
    indptr, indices, _ = graph_csr(g)
    eng.harvest(indptr, indices, key="k", epoch=0)
    g.add_node(30)  # n changes: incompatible view
    indptr, indices, _ = graph_csr(g)
    b = eng.harvest(indptr, indices, key="k", epoch=1)
    assert b["n"] == 31.0
    assert b == AnalyticsEngine(mode="full").harvest(indptr, indices)


def test_large_delta_triggers_full_rebuild():
    g = _rgg(40, 15.0, seed=6)
    eng = AnalyticsEngine(mode="incremental")
    indptr, indices, _ = graph_csr(g)
    eng.harvest(indptr, indices, key="k", epoch=0)
    full_before = eng.registry.counter(
        "analytics.full_recomputes", layer="metrics"
    ).value
    _churn(g, np.random.default_rng(0), swaps=30)  # 60 changed edges > gate
    indptr, indices, _ = graph_csr(g)
    b = eng.harvest(indptr, indices, key="k", epoch=1)
    assert (
        eng.registry.counter("analytics.full_recomputes", layer="metrics").value
        == full_before + 1
    )
    assert b == AnalyticsEngine(mode="full").harvest(indptr, indices)


def test_same_epoch_is_a_cache_hit():
    g = _rgg(30, 15.0, seed=8)
    eng = AnalyticsEngine(mode="incremental")
    indptr, indices, _ = graph_csr(g)
    b1 = eng.harvest(indptr, indices, key="k", epoch=5)
    hits = eng.registry.counter("analytics.csr_cache_hits", layer="metrics")
    before = hits.value
    b2 = eng.harvest(indptr, indices, key="k", epoch=5)
    assert hits.value == before + 1
    assert b1 == b2


# ----------------------------------------------------------------------
# world views: legacy component semantics, epochs, down nodes
# ----------------------------------------------------------------------
def _nx_components_oracle(world):
    """Independent reimplementation of the historical component contract."""
    indptr, indices = world.topology.csr()
    down = world.down_mask()
    g = nx.Graph()
    g.add_nodes_from(range(world.n))
    for u in range(world.n):
        for v in indices[indptr[u] : indptr[u + 1]]:
            g.add_edge(u, int(v))
    comps = [
        sorted(c) for c in nx.connected_components(g) if not down[min(c)]
    ]
    empties = int(down.sum())
    return sorted(map(tuple, comps)), empties


def _engine_components_as_sets(engine, world):
    comps = engine.components(world)
    empties = sum(1 for c in comps if len(c) == 0)
    nonempty = sorted(tuple(int(i) for i in c) for c in comps if len(c))
    return nonempty, empties


class TestWorldAnalytics:
    def test_components_match_oracle(self):
        _, world, _ = make_world(
            line_positions(4, spacing=8.0) + [[700, 700], [708, 700], [300, 0]]
        )
        eng = engine_for_world(world)
        assert _engine_components_as_sets(eng, world) == _nx_components_oracle(world)
        # largest-first ordering
        sizes = [len(c) for c in eng.components(world)]
        assert sizes == sorted(sizes, reverse=True)

    def test_down_node_mid_interval_regression(self):
        """A node dying between harvests must update labels exactly.

        ``set_down`` bumps ``adjacency_epoch``; the engine's delta path
        sees the node's edges vanish and must not leave stale component
        state behind -- including when the removal *splits* a component
        (no common-neighbor witness -> label rebuild).
        """
        _, world, _ = make_world(line_positions(6, spacing=8.0))
        eng = engine_for_world(world)
        before = _engine_components_as_sets(eng, world)
        assert before == _nx_components_oracle(world)
        world.set_down(2)  # splits the line: {0,1} and {3,4,5}
        after = _engine_components_as_sets(eng, world)
        assert after == _nx_components_oracle(world)
        nonempty, empties = after
        assert empties == 1
        assert nonempty == [(0, 1), (3, 4, 5)]
        # ...and back up again (edges return, components merge)
        world.set_down(2, False)
        assert _engine_components_as_sets(eng, world) == _nx_components_oracle(world)

    def test_incremental_world_stats_match_full_lane(self):
        _, world, _ = make_world(
            [[x, y] for x in range(0, 40, 8) for y in range(0, 40, 8)]
        )
        incr = set_world_engine(
            world, AnalyticsEngine(mode="incremental", registry=world.registry)
        )
        full = AnalyticsEngine(mode="full", registry=world.registry)
        for step in range(4):
            if step:
                world.set_down(step)
            assert incr.connectivity_stats(world) == full.connectivity_stats(world)
            assert incr.reachable_pair_fraction(world) == full.reachable_pair_fraction(
                world
            )

    def test_repeat_harvest_same_epoch_hits_cache(self):
        _, world, _ = make_world(line_positions(5, spacing=8.0))
        eng = engine_for_world(world)
        eng.components(world)
        hits = eng.registry.counter("analytics.csr_cache_hits", layer="metrics")
        before = hits.value
        eng.components(world)  # same epoch: memoized
        assert hits.value == before + 1

    def test_engine_for_world_is_cached_and_replaceable(self):
        _, world, _ = make_world(line_positions(3, spacing=8.0))
        e1 = engine_for_world(world)
        assert engine_for_world(world) is e1
        e2 = engine_for_world(world, mode="full")
        assert e2 is not e1 and e2.mode == "full"
        assert engine_for_world(world) is e2  # lane-less lookup reuses it
        e3 = AnalyticsEngine(registry=world.registry)
        assert set_world_engine(world, e3) is e3
        assert engine_for_world(world) is e3


# ----------------------------------------------------------------------
# serial vs parallel: exact BFS identity
# ----------------------------------------------------------------------
class TestParallelIdentity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_path_length_sums_identical(self, seed):
        g = _rgg(150, 14.0, seed)
        indptr, indices, _ = graph_csr(g)
        serial = AnalyticsEngine(execution="serial")
        # chunk=16 so n=150 actually shards (shards align to chunk width)
        par = AnalyticsEngine(
            execution="parallel", processes=2, chunk=16, registry=Registry()
        )
        try:
            assert par.path_length_sums(indptr, indices) == serial.path_length_sums(
                indptr, indices
            )
            shards = par.registry.counter("analytics.bfs_shards", layer="metrics")
            assert shards.value > 0
        finally:
            par.close()

    def test_hops_identical_and_row_order_preserved(self):
        g = _rgg(120, 14.0, seed=9)
        indptr, indices, _ = graph_csr(g)
        sources = list(range(0, 120, 2))
        serial = AnalyticsEngine(execution="serial")
        par = AnalyticsEngine(execution="parallel", processes=2, chunk=8)
        try:
            a = serial.hops(indptr, indices, sources)
            b = par.hops(indptr, indices, sources)
            assert np.array_equal(a, b)
        finally:
            par.close()

    def test_single_shard_falls_back_to_serial(self):
        g = _rgg(40, 14.0, seed=10)
        indptr, indices, _ = graph_csr(g)
        par = AnalyticsEngine(
            execution="parallel", processes=2, registry=Registry()
        )  # chunk=256
        # 40 sources round up to one 256-wide shard: no pool is spawned.
        par.path_length_sums(indptr, indices)
        assert par._pool is None
        assert (
            par.registry.counter("analytics.bfs_shards", layer="metrics").value == 0
        )

    def test_lane_validation(self):
        with pytest.raises(ValueError):
            AnalyticsEngine(mode="sometimes")
        with pytest.raises(ValueError):
            AnalyticsEngine(execution="gpu")
        with pytest.raises(ValueError):
            AnalyticsEngine(processes=0)
        assert ANALYTICS_MODES == ("incremental", "full")
        assert ANALYTICS_EXECUTION_LANES == ("serial", "parallel")


# ----------------------------------------------------------------------
# legacy modules: deprecation cycle elapsed, wrappers removed
# ----------------------------------------------------------------------
class TestLegacyModuleSurface:
    def test_smallworld_keeps_only_closed_forms(self):
        assert sorted(smallworld_mod.__all__) == [
            "random_graph_pathlength",
            "regular_graph_pathlength",
        ]
        for name in (
            "clustering_coefficient",
            "characteristic_path_length",
            "smallworld_stats",
        ):
            assert not hasattr(smallworld_mod, name)

    def test_connectivity_keeps_only_closed_form(self):
        assert connectivity_mod.__all__ == ["expected_mean_degree"]
        for name in ("components", "connectivity_stats", "reachable_pair_fraction"):
            assert not hasattr(connectivity_mod, name)
        assert connectivity_mod.expected_mean_degree(
            50, 100.0, 100.0, 10.0
        ) == pytest.approx(49 * np.pi / 100.0)


# ----------------------------------------------------------------------
# scenario integration: lanes through ScenarioConfig
# ----------------------------------------------------------------------
class TestScenarioLanes:
    @pytest.mark.parametrize("mode", ["incremental", "full"])
    @pytest.mark.parametrize("execution", ["serial"])
    def test_lanes_produce_identical_results(self, mode, execution):
        base = dict(
            num_nodes=20,
            duration=60.0,
            seed=3,
            mobility="waypoint",
            max_speed=2.0,
        )
        ref = run_scenario(ScenarioConfig(**base))  # default lanes
        res = run_scenario(
            ScenarioConfig(**base, analytics_mode=mode, analytics_exec=execution)
        )
        assert res.overlay_stats == ref.overlay_stats
        assert res.totals == ref.totals
        for fam in res.sorted_received:
            assert np.array_equal(res.sorted_received[fam], ref.sorted_received[fam])
        assert res.balance == ref.balance

    def test_builder_wires_engine_and_registry(self):
        from repro.scenarios import build_scenario

        sim = build_scenario(
            ScenarioConfig(num_nodes=10, duration=30.0, analytics_mode="full")
        )
        assert sim.analytics is not None
        assert sim.analytics.mode == "full"
        assert sim.analytics.registry is sim.registry
        assert engine_for_world(sim.world) is sim.analytics


class TestConfigAndCli:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(analytics_exec="fast")
        with pytest.raises(ValueError):
            ScenarioConfig(analytics_mode="magic")
        with pytest.raises(ValueError):
            ScenarioConfig(analytics_processes=0)

    def test_config_round_trip(self):
        cfg = ScenarioConfig(
            analytics_exec="parallel", analytics_mode="full", analytics_processes=2
        )
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    def test_old_config_dicts_still_load(self):
        d = ScenarioConfig().to_dict()
        for k in ("analytics_exec", "analytics_mode", "analytics_processes"):
            d.pop(k)
        cfg = ScenarioConfig.from_dict(d)
        assert cfg.analytics_exec == "serial"
        assert cfg.analytics_mode == "incremental"

    def test_cli_run_flags(self):
        args = build_parser().parse_args(
            ["run", "--analytics", "parallel", "--analytics-mode", "full",
             "--processes", "2"]
        )
        assert args.analytics == "parallel"
        assert args.analytics_mode == "full"
        assert args.processes == 2

    def test_cli_sweep_has_processes_flag(self):
        args = build_parser().parse_args(
            ["sweep", "nodes", "10", "20", "--processes", "3"]
        )
        assert args.processes == 3


# ----------------------------------------------------------------------
# nx-view epoch-keyed CSR cache (the smallworld_stats fix)
# ----------------------------------------------------------------------
def test_smallworld_csr_cached_on_epoch():
    g = _rgg(40, 15.0, seed=12)
    eng = AnalyticsEngine()
    s1 = eng.smallworld_stats(g, key="o", epoch=7)
    hits = eng.registry.counter("analytics.csr_cache_hits", layer="metrics")
    before = hits.value
    s2 = eng.smallworld_stats(g, key="o", epoch=7)
    assert hits.value > before  # the graph_csr build was skipped
    assert s1 == s2


def test_smallworld_stats_builds_one_csr_per_harvest():
    """The legacy module built the CSR once per metric; the engine once."""
    g = _rgg(40, 15.0, seed=13)
    eng = AnalyticsEngine()
    builds = []
    import repro.metrics.analytics as analytics_mod

    real = analytics_mod.graph_csr

    def counting(graph):
        builds.append(1)
        return real(graph)

    analytics_mod.graph_csr = counting
    try:
        eng.smallworld_stats(g)
    finally:
        analytics_mod.graph_csr = real
    assert len(builds) == 1
