"""Tests for DSR source routing."""

import numpy as np
import pytest

from repro.dsr import DsrConfig, DsrRouter, RouteCache
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator

from .helpers import line_positions


def make_dsr(positions, radio_range=10.0, config=None):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    channel = Channel(sim, world)
    router = DsrRouter(sim, channel, config=config)
    inbox = []
    router.register("app", lambda dst, src, p, h: inbox.append((dst, src, p, h)))
    return sim, world, channel, router, inbox


class TestRouteCache:
    def test_offer_and_get(self):
        c = RouteCache(0)
        c.offer([0, 1, 2, 3])
        assert c.get(3) == [0, 1, 2, 3]
        assert c.get(2) == [0, 1, 2]  # prefixes learned too
        assert c.get(1) == [0, 1]

    def test_shorter_route_replaces(self):
        c = RouteCache(0)
        c.offer([0, 1, 2, 3])
        c.offer([0, 4, 3])
        assert c.get(3) == [0, 4, 3]

    def test_foreign_route_ignored(self):
        c = RouteCache(0)
        c.offer([5, 6, 7])
        assert len(c) == 0

    def test_purge_link_both_orders(self):
        c = RouteCache(0)
        c.offer([0, 1, 2, 3])
        c.purge_link(2, 1)
        assert c.get(3) is None
        assert c.get(1) == [0, 1]  # unaffected prefix survives

    def test_returns_copy(self):
        c = RouteCache(0)
        c.offer([0, 1])
        r = c.get(1)
        r.append(99)
        assert c.get(1) == [0, 1]


class TestDiscoveryAndDelivery:
    def test_multihop_delivery(self):
        sim, _, _, router, inbox = make_dsr(line_positions(5, spacing=8.0))
        router.send(0, 4, "hello", kind="app")
        sim.run(until=5.0)
        assert inbox == [(4, 0, "hello", 4)]

    def test_loopback(self):
        sim, _, _, router, inbox = make_dsr(line_positions(2))
        router.send(0, 0, "me", kind="app")
        sim.run(until=1.0)
        assert inbox == [(0, 0, "me", 0)]

    def test_route_cached_after_discovery(self):
        sim, _, _, router, inbox = make_dsr(line_positions(4, spacing=8.0))
        router.send(0, 3, "a", kind="app")
        sim.run(until=3.0)
        rreqs = router.control_overhead()["rreq_sent"]
        router.send(0, 3, "b", kind="app")
        sim.run(until=4.0)
        assert [p for _, _, p, _ in inbox] == ["a", "b"]
        assert router.control_overhead()["rreq_sent"] == rreqs

    def test_reverse_route_learned_for_free(self):
        sim, _, _, router, inbox = make_dsr(line_positions(4, spacing=8.0))
        router.send(0, 3, "fwd", kind="app")
        sim.run(until=3.0)
        # The destination learned the reverse route from the data packet.
        assert router.route_hops(3, 0) == 3

    def test_unreachable_calls_on_fail(self):
        sim, _, _, router, inbox = make_dsr([[0, 0], [8, 0], [500, 500]])
        failed = []
        router.send(0, 2, "nope", kind="app", on_fail=failed.append)
        sim.run(until=30.0)
        assert failed == ["nope"] and inbox == []

    def test_route_hops(self):
        sim, _, _, router, _ = make_dsr(line_positions(4, spacing=8.0))
        assert router.route_hops(0, 3) == DsrRouter.UNKNOWN
        router.send(0, 3, "x", kind="app")
        sim.run(until=3.0)
        assert router.route_hops(0, 3) == 3
        assert router.route_hops(1, 1) == 0

    def test_cache_reply_from_intermediate(self):
        sim, _, _, router, inbox = make_dsr(line_positions(5, spacing=8.0))
        router.send(2, 4, "prime", kind="app")
        sim.run(until=3.0)
        rreqs = router.control_overhead()["rreq_sent"]
        router.send(0, 4, "main", kind="app")
        sim.run(until=6.0)
        assert (4, 0, "main", 4) in inbox
        # node 0 originated one RREQ; node 2 answered from its cache
        assert router.control_overhead()["rreq_sent"] == rreqs + 1

    def test_cache_replies_can_be_disabled(self):
        cfg = DsrConfig(cache_replies=False)
        sim, _, _, router, inbox = make_dsr(line_positions(5, spacing=8.0), config=cfg)
        router.send(2, 4, "prime", kind="app")
        sim.run(until=3.0)
        router.send(0, 4, "main", kind="app")
        sim.run(until=6.0)
        assert (4, 0, "main", 4) in inbox


class TestRepair:
    def test_broken_route_rediscovered(self):
        pts = [[0, 0], [8, 0], [16, 0], [8, 6]]  # detour via 3
        sim, world, _, router, inbox = make_dsr(pts)
        router.send(0, 2, "first", kind="app")
        sim.run(until=3.0)
        assert any(p == "first" for _, _, p, _ in inbox)
        world.set_down(1)
        router.send(0, 2, "second", kind="app")
        sim.run(until=20.0)
        assert any(p == "second" for _, _, p, _ in inbox)

    def test_rerr_purges_upstream_caches(self):
        sim, world, _, router, _ = make_dsr(line_positions(4, spacing=8.0))
        router.send(0, 3, "x", kind="app")
        sim.run(until=3.0)
        assert router.route_hops(0, 3) == 3
        world.set_down(2)
        router.send(0, 3, "y", kind="app")
        sim.run(until=30.0)
        # Route through node 2 must be gone from node 0's cache (either
        # replaced after failed rediscovery attempts, or purged).
        route = router.agents[0].cache.get(3)
        assert route is None or 2 not in route

    def test_queue_overflow_fails(self):
        cfg = DsrConfig(queue_per_dest=2)
        sim, _, _, router, _ = make_dsr([[0, 0], [8, 0], [500, 500]], config=cfg)
        failed = []
        for i in range(5):
            router.send(0, 2, f"m{i}", kind="app", on_fail=failed.append)
        sim.run(until=60.0)
        assert sorted(failed) == [f"m{i}" for i in range(5)]


class TestLoopFreedom:
    def test_source_routes_never_loop(self):
        rng = np.random.default_rng(17)
        pts = rng.random((20, 2)) * 40
        sim, world, _, router, inbox = make_dsr(pts, radio_range=12)
        for k, (a, b) in enumerate([(0, 19), (3, 15), (5, 12)]):
            router.send(a, b, f"p{k}", kind="app")
        sim.run(until=30.0)
        for dst, src, payload, hops in inbox:
            assert 0 < hops < 20
        for agent in router.agents:
            for dest in range(20):
                route = agent.cache.get(dest)
                if route:
                    assert len(set(route)) == len(route)  # no repeats
