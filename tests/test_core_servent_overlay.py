"""Tests for the servent dispatch surface and the overlay manager."""

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    Connection,
    HybridAlgorithm,
    P2pConfig,
    Ping,
    Pong,
    Query,
    QueryHit,
)

from .overlay_helpers import build_overlay


class TestP2pConfigValidation:
    def test_defaults_valid(self):
        P2pConfig()

    def test_bad_max_connections(self):
        with pytest.raises(ValueError):
            P2pConfig(max_connections=0)

    def test_bad_nhops(self):
        with pytest.raises(ValueError):
            P2pConfig(nhops_initial=0)
        with pytest.raises(ValueError):
            P2pConfig(nhops_initial=8, max_nhops=6)

    def test_bad_timer(self):
        with pytest.raises(ValueError):
            P2pConfig(timer_initial=0)
        with pytest.raises(ValueError):
            P2pConfig(timer_initial=20.0, max_timer=10.0)

    def test_bad_slaves(self):
        with pytest.raises(ValueError):
            P2pConfig(max_slaves=0)

    def test_ping_deadline(self):
        cfg = P2pConfig(ping_interval=10.0, ping_deadline_factor=2.5)
        assert cfg.ping_deadline == 25.0


class TestServentDispatch:
    def test_message_families_counted(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="regular")
        s0 = overlay.servents[0]
        s0.on_p2p(1, Ping(sender=1), hops=1)
        s0.on_p2p(1, Pong(sender=1), hops=1)
        s0.on_p2p(1, Query(requirer=1, file_id=1, ttl=3), hops=1)
        s0.on_p2p(1, QueryHit(holder=1, file_id=1, qid=999, p2p_hops=1), hops=1)
        assert metrics.family_counts("ping")[0] == 2
        assert metrics.family_counts("query")[0] == 2

    def test_own_flood_ignored(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="regular")
        s0 = overlay.servents[0]
        from repro.core import Discover

        s0._on_flood(0, Discover(seeker=0), hops=1)  # own origin: ignored
        assert metrics.family_counts("connect")[0] == 0

    def test_duplicate_flood_copies_counted(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="regular")
        s0 = overlay.servents[0]
        from repro.core import Discover

        s0._on_flood_duplicate(1, Discover(seeker=1))
        assert metrics.family_counts("connect")[0] == 1

    def test_double_algorithm_attach_rejected(self):
        pts = [[10, 10], [15, 10]]
        _, _, overlay, _ = build_overlay(pts, algorithm="regular")
        s0 = overlay.servents[0]
        with pytest.raises(RuntimeError):
            s0.attach_algorithm(s0.algorithm)

    def test_adhoc_distance_unreachable_is_minus_one(self):
        pts = [[10, 10], [900, 900]]
        _, _, overlay, _ = build_overlay(pts, algorithm="regular")
        assert overlay.servents[0].adhoc_distance(1) == -1


class TestOverlayManager:
    def test_members_validated(self):
        with pytest.raises(ValueError):
            build_overlay([[10, 10], [15, 10]], members=[0, 7])
        with pytest.raises(ValueError):
            build_overlay([[10, 10], [15, 10]], members=[])

    def test_graph_snapshot_symmetric_edges(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=120.0)
        g = overlay.graph()
        assert isinstance(g, nx.Graph)
        assert set(g.nodes) == {0, 1, 2}
        assert g.number_of_edges() >= 2

    def test_graph_includes_hybrid_slaves(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers={0: 0.9, 1: 0.1, 2: 0.2}
        )
        overlay.start(queries=False)
        sim.run(until=300.0)
        g = overlay.graph()
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_connection_counts(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        counts = overlay.connection_counts()
        assert counts[0] == 1 and counts[1] == 1

    def test_query_records_harvest(self):
        pts = [[10, 10], [15, 10], [10, 15]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=True)
        sim.run(until=400.0)
        records = overlay.query_records()
        assert records, "no queries recorded"
        assert all(r.closed for r in records)

    def test_default_qualifiers_generated(self):
        pts = [[10, 10], [15, 10]]
        _, _, overlay, _ = build_overlay(pts, algorithm="hybrid")
        assert set(overlay.qualifiers) == {0, 1}
        assert all(0.0 <= q <= 1.0 for q in overlay.qualifiers.values())

    def test_stop_halts_activity(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, metrics = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        overlay.stop()
        before = metrics.total("connect") + metrics.total("ping")
        sim.run(until=400.0)
        after = metrics.total("connect") + metrics.total("ping")
        # in-flight deliveries may land right after stop; nothing more.
        assert after - before <= 4
