"""Tests for DSDV proactive routing."""

import numpy as np
import pytest

from repro.dsdv import INFINITE_METRIC, DsdvConfig, DsdvRouter
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator

from .helpers import line_positions


def make_dsdv(positions, radio_range=10.0, config=None):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    channel = Channel(sim, world)
    router = DsdvRouter(sim, channel, config=config)
    inbox = []
    router.register("app", lambda dst, src, p, h: inbox.append((dst, src, p, h)))
    return sim, world, channel, router, inbox


class TestConvergence:
    def test_tables_converge_on_line(self):
        sim, _, _, router, _ = make_dsdv(line_positions(5, spacing=8.0))
        sim.run(until=60.0)  # several periodic rounds
        assert router.route_hops(0, 4) == 4
        assert router.route_hops(4, 0) == 4
        assert router.route_hops(2, 3) == 1

    def test_multihop_delivery(self):
        sim, _, _, router, inbox = make_dsdv(line_positions(5, spacing=8.0))
        sim.run(until=60.0)
        router.send(0, 4, "hello", kind="app")
        sim.run(until=62.0)
        assert inbox == [(4, 0, "hello", 4)]

    def test_loopback(self):
        sim, _, _, router, inbox = make_dsdv(line_positions(2))
        router.send(1, 1, "me", kind="app")
        sim.run(until=1.0)
        assert inbox == [(1, 1, "me", 0)]

    def test_no_route_before_convergence_fails(self):
        sim, _, _, router, inbox = make_dsdv(line_positions(4, spacing=8.0))
        failed = []
        router.send(0, 3, "early", kind="app", on_fail=failed.append)
        sim.run(until=0.5)
        assert failed == ["early"]  # proactive: nothing to wait for

    def test_unreachable_fails(self):
        sim, _, _, router, _ = make_dsdv([[0, 0], [8, 0], [500, 500]])
        sim.run(until=60.0)
        failed = []
        router.send(0, 2, "x", kind="app", on_fail=failed.append)
        sim.run(until=65.0)
        assert failed == ["x"]


class TestFreshness:
    def test_newer_seq_wins_even_with_worse_metric(self):
        sim, _, _, router, _ = make_dsdv(line_positions(3, spacing=8.0))
        sim.run(until=60.0)
        agent = router.agents[0]
        entry = agent.table[2]
        old_metric = entry.metric
        # Inject a stale better-metric rumour: must be rejected.
        from repro.dsdv.protocol import DsdvUpdate
        from repro.net import Frame

        stale = DsdvUpdate(sender=1, rows=[(2, 0, entry.seq - 2)])
        agent._on_update(Frame(src=1, dst=0, kind="dsdv.update", payload=stale))
        assert agent.table[2].metric == old_metric

    def test_equal_seq_better_metric_wins(self):
        sim, _, _, router, _ = make_dsdv(line_positions(3, spacing=8.0))
        sim.run(until=60.0)
        agent = router.agents[0]
        entry = agent.table[2]
        from repro.dsdv.protocol import DsdvUpdate
        from repro.net import Frame

        better = DsdvUpdate(sender=1, rows=[(2, entry.metric - 2, entry.seq)])
        agent._on_update(Frame(src=1, dst=0, kind="dsdv.update", payload=better))
        assert agent.table[2].metric == entry.metric - 1


class TestRepair:
    def test_broken_link_invalidates_and_reconverges(self):
        # line 0-1-2 plus a detour 0-3-2
        pts = [[0, 0], [8, 0], [16, 0], [8, 6]]
        sim, world, _, router, inbox = make_dsdv(pts)
        sim.run(until=60.0)
        router.send(0, 2, "first", kind="app")
        sim.run(until=62.0)
        assert any(p == "first" for _, _, p, _ in inbox)
        world.set_down(1)
        sim.run(until=150.0)  # periodic updates re-converge via node 3
        router.send(0, 2, "second", kind="app")
        sim.run(until=160.0)
        assert any(p == "second" for _, _, p, _ in inbox)

    def test_stale_routes_expire(self):
        cfg = DsdvConfig(periodic_update=5.0, stale_periods=2.0)
        sim, world, _, router, _ = make_dsdv(line_positions(3, spacing=8.0), config=cfg)
        sim.run(until=30.0)
        assert router.route_hops(0, 2) == 2
        world.set_down(2)
        sim.run(until=90.0)
        assert router.route_hops(0, 2) == DsdvRouter.UNKNOWN

    def test_control_overhead_counted(self):
        sim, _, _, router, _ = make_dsdv(line_positions(3, spacing=8.0))
        sim.run(until=60.0)
        overhead = router.control_overhead()
        assert overhead["updates_sent"] >= 3 * 3  # >= n dumps per period

    def test_periodic_updates_jittered(self):
        # agents must not all dump at the same instant
        sim, _, channel, router, _ = make_dsdv(line_positions(4, spacing=8.0))
        times = []
        orig = channel.broadcast

        def spy(frame):
            if frame.kind == "dsdv.update":
                times.append(round(sim.now, 6))
            return orig(frame)

        channel.broadcast = spy
        sim.run(until=16.0)
        assert len(set(times)) > 1
