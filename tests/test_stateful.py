"""Stateful (rule-based) property tests for the core data structures.

Hypothesis drives random operation sequences against the connection
table and the AODV route table, checking the structural invariants after
every step -- the strongest guard against state-machine corruption bugs.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.aodv import SEQ_UNKNOWN, RouteTable
from repro.core import Connection, ConnectionTable

MAX_CONN = 3


class ConnectionTableMachine(RuleBasedStateMachine):
    """Random add/remove/clear sequences against a mirror model."""

    def __init__(self):
        super().__init__()
        self.table = ConnectionTable(owner=0, max_connections=MAX_CONN)
        self.model = {}  # peer -> random flag

    @rule(peer=st.integers(1, 8), random=st.booleans())
    def add(self, peer, random):
        ok = self.table.add(Connection(peer=peer, random=random))
        if peer in self.model or len(self.model) >= MAX_CONN:
            assert not ok
        else:
            assert ok
            self.model[peer] = random

    @rule(peer=st.integers(1, 8))
    def remove(self, peer):
        conn = self.table.remove(peer)
        if peer in self.model:
            assert conn is not None and conn.peer == peer
            del self.model[peer]
        else:
            assert conn is None

    @rule()
    def clear(self):
        dropped = self.table.clear()
        assert sorted(c.peer for c in dropped) == sorted(self.model)
        self.model.clear()

    @invariant()
    def capacity_respected(self):
        assert self.table.count <= MAX_CONN
        assert self.table.is_full == (self.table.count == MAX_CONN)
        assert self.table.missing == MAX_CONN - self.table.count

    @invariant()
    def contents_match_model(self):
        assert sorted(self.table.peers()) == sorted(self.model)
        assert self.table.has_random() == any(self.model.values())


class RouteTableMachine(RuleBasedStateMachine):
    """Random offer/invalidate/expire sequences; freshness must hold."""

    def __init__(self):
        super().__init__()
        self.table = RouteTable(owner=0)
        self.now = 0.0
        # dest -> best seq ever accepted (monotonicity check)
        self.best_seq = {}

    @rule(
        dest=st.integers(1, 5),
        next_hop=st.integers(1, 5),
        hops=st.integers(1, 10),
        seq=st.integers(0, 20),
        life=st.floats(1.0, 50.0),
    )
    def offer(self, dest, next_hop, hops, seq, life):
        accepted = self.table.offer(
            dest, next_hop, hops, seq, expires_at=self.now + life, now=self.now
        )
        entry = self.table.get(dest)
        assert entry is not None
        if accepted:
            assert entry.dest_seq == seq and entry.next_hop == next_hop
        # Sequence numbers stored never go backwards.
        prev = self.best_seq.get(dest, SEQ_UNKNOWN)
        assert entry.dest_seq >= prev or entry.dest_seq == SEQ_UNKNOWN
        self.best_seq[dest] = max(prev, entry.dest_seq)

    @rule(dest=st.integers(1, 5))
    def invalidate(self, dest):
        before = self.table.get(dest)
        # invalidate() mutates the entry in place: snapshot validity first
        was_valid = before is not None and before.valid
        out = self.table.invalidate(dest)
        if was_valid:
            assert out is not None and not out.valid
        else:
            assert out is None

    @rule(dt=st.floats(0.1, 30.0))
    def advance_time(self, dt):
        self.now += dt

    @invariant()
    def lookup_only_returns_live_routes(self):
        for dest in range(1, 6):
            entry = self.table.lookup(dest, self.now)
            if entry is not None:
                assert entry.valid
                assert entry.expires_at >= self.now


TestConnectionTableStateful = ConnectionTableMachine.TestCase
TestConnectionTableStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestRouteTableStateful = RouteTableMachine.TestCase
TestRouteTableStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
