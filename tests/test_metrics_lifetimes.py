"""Tests for connection-lifetime tracking."""

import numpy as np
import pytest

from repro.core import Connection
from repro.metrics.lifetimes import ClosedConnection, LifetimeLog, lifetime_summary

from .overlay_helpers import build_overlay


def closed(owner=0, peer=1, random=False, initiator=True, t0=10.0, t1=40.0):
    return ClosedConnection(owner, peer, random, initiator, t0, t1)


class TestLifetimeLog:
    def test_record_from_connection(self):
        log = LifetimeLog()
        conn = Connection(peer=3, random=True, initiator=True)
        conn.established_at = 5.0
        log.record(owner=1, conn=conn, closed_at=25.0)
        assert len(log) == 1
        rec = log.closed[0]
        assert rec.lifetime == 20.0
        assert rec.random and rec.initiator and rec.owner == 1 and rec.peer == 3

    def test_summary_by_class(self):
        log = LifetimeLog()
        log.closed = [
            closed(t0=0, t1=100, random=False),
            closed(t0=0, t1=200, random=False),
            closed(t0=0, t1=30, random=True),
            closed(t0=0, t1=50, random=True, initiator=False),  # acceptor: skip
        ]
        s = lifetime_summary(log)
        assert s["regular"]["count"] == 2
        assert s["regular"]["mean"] == 150.0
        assert s["random"]["count"] == 1
        assert s["random"]["mean"] == 30.0

    def test_empty_class_is_nan(self):
        s = lifetime_summary(LifetimeLog())
        assert s["regular"]["count"] == 0
        assert np.isnan(s["regular"]["mean"])


class TestIntegration:
    def test_closures_logged_in_live_overlay(self):
        from repro.metrics.lifetimes import LifetimeLog

        pts = [[10, 10], [15, 10]]
        sim, world, overlay, _ = build_overlay(pts, algorithm="regular")
        log = LifetimeLog()
        for s in overlay.servents.values():
            s.lifetime_log = log
        overlay.start(queries=False)
        sim.run(until=60.0)
        world.set_down(1)
        sim.run(until=300.0)
        assert len(log) >= 1
        rec = log.closed[0]
        assert rec.lifetime > 0
