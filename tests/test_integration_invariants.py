"""Long-running integration invariants across full scenarios.

These run each algorithm end-to-end on a paper-like (scaled) scenario
and check properties that must hold throughout: capacity caps, symmetry
convergence, distance bounds, metric consistency.
"""

import numpy as np
import pytest

from repro.scenarios import ScenarioConfig, build_scenario


ALGS = ("basic", "regular", "random", "hybrid")


@pytest.mark.parametrize("alg", ALGS)
def test_capacity_never_exceeded_throughout(alg):
    cfg = ScenarioConfig(num_nodes=30, duration=400.0, algorithm=alg, seed=19)
    s = build_scenario(cfg)
    s.overlay.start()
    for t in np.arange(50.0, 401.0, 50.0):
        s.sim.run(until=float(t))
        for servent in s.overlay.servents.values():
            assert servent.connections.count <= cfg.p2p.max_connections


@pytest.mark.parametrize("alg", ("regular", "random"))
def test_symmetric_references_converge(alg):
    # At any sampling instant, asymmetric pairs must be a small minority
    # (transient handshakes / closures in flight).
    cfg = ScenarioConfig(num_nodes=30, duration=400.0, algorithm=alg, seed=23, queries=False)
    s = build_scenario(cfg)
    s.overlay.start(queries=False)
    s.sim.run(until=400.0)
    total = asym = 0
    for servent in s.overlay.servents.values():
        for conn in servent.connections:
            total += 1
            other = s.overlay.servents.get(conn.peer)
            if other is None or not other.connections.has(servent.nid):
                asym += 1
    if total:
        assert asym / total < 0.35, f"{asym}/{total} asymmetric references"


def test_metrics_totals_equal_per_node_sums():
    cfg = ScenarioConfig(num_nodes=25, duration=300.0, algorithm="regular", seed=29)
    s = build_scenario(cfg)
    s.overlay.start()
    s.sim.run(until=300.0)
    for fam in ("connect", "ping", "query"):
        counts = s.metrics.family_counts(fam)
        assert counts.sum() == s.metrics.total(fam)
        # only members receive p2p messages
        non_members = [i for i in range(cfg.num_nodes) if i not in s.members]
        assert counts[non_members].sum() == 0


def test_energy_strictly_increases_with_activity():
    cfg = ScenarioConfig(num_nodes=25, duration=300.0, algorithm="basic", seed=31)
    s = build_scenario(cfg)
    s.overlay.start()
    s.sim.run(until=150.0)
    e1 = s.world.energy.total_consumed()
    s.sim.run(until=300.0)
    e2 = s.world.energy.total_consumed()
    assert 0 < e1 < e2


@pytest.mark.parametrize("alg", ("regular", "random"))
def test_connections_respect_distance_bound_modulo_transients(alg):
    # Sampled at ping-interval granularity, connected peers should sit
    # within the allowed distance most of the time (mobility can drag
    # them out between maintenance rounds).
    cfg = ScenarioConfig(num_nodes=40, duration=500.0, algorithm=alg, seed=37, queries=False)
    s = build_scenario(cfg)
    s.overlay.start(queries=False)
    ok = too_far = 0
    for t in np.arange(100.0, 501.0, 50.0):
        s.sim.run(until=float(t))
        for servent in s.overlay.servents.values():
            for conn in servent.connections:
                allowed = cfg.p2p.max_dist * (2 if conn.random else 1)
                d = s.world.hop_distance(servent.nid, conn.peer)
                if 0 < d <= allowed:
                    ok += 1
                elif d > allowed:
                    too_far += 1
    total = ok + too_far
    if total:
        assert too_far / total < 0.40, f"{too_far}/{total} beyond MAXDIST"
