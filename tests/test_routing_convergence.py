"""Convergence properties: protocol routes vs ground-truth BFS.

On a *static* topology, after enough protocol activity:

* DSDV's periodic dumps must converge every metric to the exact BFS
  hop distance (distance-vector fixpoint);
* DSR's discovered routes must be loop-free, valid hop-by-hop walks of
  the radio graph whose length is >= the BFS distance;
* AODV's active routes likewise never beat BFS.

Randomized over topologies with hypothesis.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aodv import AodvRouter
from repro.dsdv import DsdvRouter
from repro.dsr import DsrRouter
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator


def random_static(seed, n=14, area=55.0, radio=14.0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * area
    sim = Simulator()
    mobility = Static(n, Area(area, area), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio)
    channel = Channel(sim, world)
    return sim, world, channel


class TestDsdvConvergence:
    @given(st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_metrics_converge_near_bfs(self, seed):
        # DSDV's per-dump sequence numbers make routes flutter: a newer
        # seq arriving over a longer path displaces an older shorter one
        # until the next dump round fixes it (the behaviour DSDV's
        # settling-time mechanism dampens).  The sound invariant at any
        # snapshot is: reachable iff connected, and
        # bfs <= metric <= bfs + small slack.
        sim, world, channel = random_static(seed)
        router = DsdvRouter(sim, channel)
        # Enough periodic rounds for the diameter to propagate.
        sim.run(until=20 * router.cfg.periodic_update)
        for src in range(world.n):
            dist = world.hops_from(src)
            for dst in range(world.n):
                if src == dst:
                    continue
                known = router.route_hops(src, dst)
                if dist[dst] < 0:
                    assert known == DsdvRouter.UNKNOWN
                else:
                    assert dist[dst] <= known <= dist[dst] + 2, (
                        f"dsdv {src}->{dst}: metric {known}, bfs {dist[dst]}"
                    )


class TestDsrRouteValidity:
    @given(st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_cached_routes_are_valid_walks(self, seed):
        sim, world, channel = random_static(seed)
        router = DsrRouter(sim, channel)
        rng = np.random.default_rng(seed + 1)
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, world.n, size=(6, 2))]
        for a, b in pairs:
            if a != b:
                router.send(a, b, "probe", kind="data")
        sim.run(until=30.0)
        adj = world.adjacency()
        for agent in router.agents:
            for dst in range(world.n):
                route = agent.cache.get(dst)
                if route is None:
                    continue
                assert route[0] == agent.nid and route[-1] == dst
                assert len(set(route)) == len(route)  # loop-free
                for u, v in zip(route, route[1:]):
                    assert adj[u, v], f"cached route uses dead link {u}-{v}"
                bfs = world.hop_distance(agent.nid, dst)
                assert len(route) - 1 >= bfs


class TestAodvNeverBeatsBfs:
    @given(st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_route_hops_at_least_bfs(self, seed):
        sim, world, channel = random_static(seed)
        router = AodvRouter(sim, channel)
        rng = np.random.default_rng(seed + 2)
        for a, b in rng.integers(0, world.n, size=(6, 2)):
            if a != b:
                router.send(int(a), int(b), "probe", kind="data")
        sim.run(until=30.0)
        for src in range(world.n):
            for dst in range(world.n):
                known = router.route_hops(src, dst)
                if known == AodvRouter.UNKNOWN or src == dst:
                    continue
                bfs = world.hop_distance(src, dst)
                assert bfs > 0  # a known route implies connectivity
                assert known >= bfs
