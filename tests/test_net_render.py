"""Tests for the ASCII world/overlay renderer."""

from repro.net import render_overlay_summary, render_world

from .helpers import line_positions, make_world
from .overlay_helpers import build_overlay


class TestRenderWorld:
    def test_renders_grid_with_nodes(self):
        _, world, _ = make_world([[10, 10], [50, 50]], area=None)
        out = render_world(world, width=30, height=10)
        lines = out.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert "2 nodes" in lines[-1]
        body = "\n".join(lines[1:-2])
        assert "0" in body and "1" in body

    def test_down_node_marked_x(self):
        _, world, _ = make_world([[10, 10], [50, 50]])
        world.set_down(1)
        out = render_world(world, width=30, height=10)
        assert "x" in out

    def test_custom_labels(self):
        _, world, _ = make_world([[10, 10], [50, 50]])
        out = render_world(world, width=30, height=10, label=lambda i: "M" if i == 0 else "s")
        assert "M" in out and "s" in out

    def test_collision_renders_plus(self):
        _, world, _ = make_world([[10, 10], [10.01, 10.01]])
        out = render_world(world, width=10, height=5)
        assert "+" in out.splitlines()[2] or "+" in out  # shared cell


class TestRenderOverlay:
    def test_summary_lists_members(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(pts, algorithm="regular")
        overlay.start(queries=False)
        sim.run(until=60.0)
        out = render_overlay_summary(overlay)
        assert "node   0" in out and "node   1" in out
        assert "-> 1" in out or "-> 0" in out

    def test_hybrid_roles_shown(self):
        pts = [[10, 10], [15, 10]]
        sim, _, overlay, _ = build_overlay(
            pts, algorithm="hybrid", qualifiers={0: 0.9, 1: 0.1}
        )
        overlay.start(queries=False)
        sim.run(until=200.0)
        out = render_overlay_summary(overlay)
        assert "[master" in out and "[slave" in out
