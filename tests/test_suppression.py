"""Rebroadcast-suppression policies: reference identity and correctness.

Two proof obligations (DESIGN.md, broadcast-suppression plane):

1. The reference lanes are *bit-identical*: ``rebroadcast="flood"`` and
   ``rebroadcast="probabilistic:1.0"`` (which short-circuits before
   touching an RNG) must produce equal semantic registry snapshots,
   time series and derived figures over full scenarios -- dense/sparse
   topologies, csma/lossy channels, several seeds.
2. The suppressing lanes stay *correct*: every answer recorded under
   ``counter`` or ``contact`` must come from a node that truly holds
   the file (suppression may lose answers, never fabricate them).

Plus unit coverage of the policy objects and the spec parser, and the
``ring_ttls`` edge-case regression (ttl_start >= ttl_threshold).
"""

import numpy as np
import pytest

from repro.aodv.protocol import AodvConfig
from repro.net.suppression import (
    ContactPolicy,
    CounterPolicy,
    FloodPolicy,
    PolicySpec,
    ProbabilisticPolicy,
    make_rebroadcast_policy,
    parse_policy_spec,
)
from repro.obs.compare import is_cost_key, semantic_snapshot, semantic_timeseries, snapshot_diff
from repro.obs.registry import Registry
from repro.scenarios.builder import build_scenario
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import harvest
from repro.sim import Simulator

SEEDS = (1, 2, 3)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
class TestParsePolicySpec:
    def test_bare_kinds(self):
        for kind in ("flood", "probabilistic", "counter", "contact"):
            spec = parse_policy_spec(kind)
            assert spec == PolicySpec(kind)
            assert str(spec) == kind

    def test_parameters(self):
        assert parse_policy_spec("probabilistic:0.5") == PolicySpec("probabilistic", 0.5)
        assert parse_policy_spec("counter:2") == PolicySpec("counter", 2.0)
        assert str(parse_policy_spec("probabilistic:0.5")) == "probabilistic:0.5"

    def test_idempotent_on_spec(self):
        spec = PolicySpec("counter", 2.0)
        assert parse_policy_spec(spec) is spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown rebroadcast"):
            parse_policy_spec("telepathy")

    def test_rejects_parameter_on_parameterless_kinds(self):
        for bad in ("flood:1", "contact:3"):
            with pytest.raises(ValueError, match="takes no parameter"):
                parse_policy_spec(bad)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="bad parameter"):
            parse_policy_spec("counter:two")
        with pytest.raises(ValueError, match="p must be > 0"):
            parse_policy_spec("probabilistic:0")
        with pytest.raises(ValueError, match="integer >= 1"):
            parse_policy_spec("counter:0.5")

    def test_scenario_config_validates_spec(self):
        with pytest.raises(ValueError, match="unknown rebroadcast"):
            ScenarioConfig(rebroadcast="nope")
        with pytest.raises(ValueError, match="unknown query policy"):
            ScenarioConfig(query_policy="counter")


# ----------------------------------------------------------------------
# policy units
# ----------------------------------------------------------------------
def _explode():
    raise AssertionError("reference lane must not create an RNG stream")


class TestProbabilisticPolicy:
    def test_p_one_is_reference_and_never_draws(self):
        pol = ProbabilisticPolicy(p=1.0, rng_factory=_explode)
        assert pol.reference
        sent = []
        pol.forward("k", lambda: sent.append(1))
        assert sent == [1]

    def test_degree_floor_always_sends(self):
        pol = ProbabilisticPolicy(
            p=0.0001, degree=lambda: 2, degree_floor=3, rng_factory=_explode
        )
        sent = []
        pol.forward("k", lambda: sent.append(1))
        assert sent == [1]

    def test_suppression_is_counted(self):
        reg = Registry()
        pol = ProbabilisticPolicy(
            p=0.5,
            degree=lambda: 10,
            rng_factory=lambda: np.random.default_rng(7),
            registry=reg,
            plane="t",
            node=0,
        )
        sent = []
        for i in range(200):
            pol.forward(i, lambda: sent.append(1))
        suppressed = pol.stats()["suppressed"]
        assert suppressed == 200 - len(sent)
        assert 50 < suppressed < 150  # p=0.5, 200 trials
        assert reg.value("flood.suppressed", plane="t", node=0) == suppressed

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            ProbabilisticPolicy(p=0.0)


class TestCounterPolicy:
    def _policy(self, sim, threshold=2):
        return CounterPolicy(
            threshold=threshold,
            sim=sim,
            rng_factory=lambda: np.random.default_rng(3),
            registry=Registry(),
            plane="t",
            node=0,
        )

    def test_fires_without_duplicates(self):
        sim = Simulator()
        pol = self._policy(sim)
        sent = []
        pol.forward("k", lambda: sent.append(1))
        assert pol.pending == 1
        sim.run()
        assert sent == [1] and pol.pending == 0

    def test_threshold_duplicates_cancel(self):
        sim = Simulator()
        pol = self._policy(sim, threshold=2)
        sent = []
        pol.forward("k", lambda: sent.append(1))
        pol.duplicate("k")
        pol.duplicate("k")
        sim.run()
        assert sent == []
        assert pol.stats()["assessment_cancels"] == 1
        assert pol.stats()["suppressed"] == 1

    def test_below_threshold_still_fires(self):
        sim = Simulator()
        pol = self._policy(sim, threshold=3)
        sent = []
        pol.forward("k", lambda: sent.append(1))
        pol.duplicate("k")
        pol.duplicate("other-key-ignored")
        sim.run()
        assert sent == [1]

    def test_cancelled_assessment_costs_no_dispatch(self):
        sim = Simulator()
        pol = self._policy(sim, threshold=1)
        pol.forward("k", lambda: pytest.fail("cancelled send must not fire"))
        pol.duplicate("k")
        before = sim.events_dispatched
        sim.run()
        assert sim.events_dispatched == before  # lazy O(1) cancellation

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterPolicy(threshold=0, sim=Simulator())
        with pytest.raises(ValueError):
            CounterPolicy(assessment_delay=0.0, sim=Simulator())
        with pytest.raises(ValueError):
            CounterPolicy(sim=None)


class TestContactPolicy:
    def test_learn_and_order(self):
        pol = ContactPolicy(node=0)
        pol.learn_holder(7, 1)
        pol.learn_holder(7, 2)
        pol.learn_holder(7, 3)
        assert pol.contacts_for(7) == [3, 2, 1]  # most recent first
        pol.learn_holder(7, 1)  # re-confirmed: moves to front
        assert pol.contacts_for(7) == [1, 3, 2]

    def test_never_learns_self(self):
        pol = ContactPolicy(node=5)
        pol.learn_holder(7, 5)
        assert pol.contacts_for(7) == []

    def test_holder_lru_bound(self):
        pol = ContactPolicy(node=0, max_holders=2)
        for holder in (1, 2, 3):
            pol.learn_holder(7, holder)
        assert pol.contacts_for(7) == [3, 2]  # 1 evicted

    def test_file_lru_bound(self):
        pol = ContactPolicy(node=0, max_files=2)
        for fid in (1, 2, 3):
            pol.learn_holder(fid, 9)
        assert pol.known_files == 2
        assert pol.contacts_for(1) == []  # oldest file evicted

    def test_forget(self):
        pol = ContactPolicy(node=0)
        pol.learn_holder(7, 1)
        pol.forget(7)
        assert pol.contacts_for(7) == []

    def test_vicinity_bound_and_self_skip(self):
        pol = ContactPolicy(node=0, max_peers=2)
        pol.overhear(0, 1)  # self: ignored
        for origin in (1, 2, 3):
            pol.overhear(origin, 2)
        assert pol.known_peers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ContactPolicy(fallback_wait=0.0)


class TestFactory:
    def test_kinds(self):
        reg = Registry()
        assert isinstance(
            make_rebroadcast_policy("flood", plane="t", node=0, registry=reg),
            FloodPolicy,
        )
        pol = make_rebroadcast_policy("probabilistic:0.4", plane="t", node=0, registry=reg)
        assert isinstance(pol, ProbabilisticPolicy) and pol.p == 0.4
        pol = make_rebroadcast_policy(
            "counter:2", plane="t", node=0, registry=reg, sim=Simulator()
        )
        assert isinstance(pol, CounterPolicy) and pol.threshold == 2
        assert isinstance(
            make_rebroadcast_policy("contact", plane="t", node=0, registry=reg),
            ContactPolicy,
        )

    def test_flood_is_reference(self):
        assert FloodPolicy().reference


def test_suppression_counters_are_cost_keys():
    assert is_cost_key('flood.suppressed{node="3",plane="p2p.flood"}')
    assert is_cost_key("flood.assessment_cancels")
    assert is_cost_key("card.contact_hits")
    assert is_cost_key("card.fallback_floods")
    assert is_cost_key("card.contacts_learned")
    # The flood-plane *semantics* stay on the equivalence surface.
    assert not is_cost_key("flood.forwarded")
    assert not is_cost_key("flood.duplicates")
    assert not is_cost_key("flood.originated")


# ----------------------------------------------------------------------
# ring_ttls regression (satellite: draft §6.4 edge case)
# ----------------------------------------------------------------------
class TestRingTtls:
    def test_defaults(self):
        assert AodvConfig().ring_ttls() == [2, 4, 6, 20, 20, 20]

    def test_ttl_start_at_threshold_still_probes_one_ring(self):
        cfg = AodvConfig(ttl_start=7)
        assert cfg.ring_ttls() == [7, 20, 20, 20]

    def test_ttl_start_above_threshold(self):
        # Used to return bare network-wide retries with no bounded ring.
        cfg = AodvConfig(ttl_start=9, ttl_threshold=7)
        ttls = cfg.ring_ttls()
        assert ttls == [7, 20, 20, 20]
        assert len(ttls) == 1 + 1 + cfg.rreq_retries


# ----------------------------------------------------------------------
# scenario-level reference identity: flood == probabilistic:1.0
# ----------------------------------------------------------------------
def _run_lane(seed: int, topology: str, rebroadcast: str):
    """One full scenario on one rebroadcast lane; harvested evidence."""
    cfg = ScenarioConfig(
        num_nodes=40,
        duration=40.0,
        seed=seed,
        mac="csma" if topology == "dense" else "lossy",
        energy_capacity=0.05,
        topology=topology,
        obs_interval=10.0,
        rebroadcast=rebroadcast,
    )
    simulation = build_scenario(cfg)
    simulation.run()
    result = harvest(simulation)
    return {
        "snapshot": semantic_snapshot(simulation.registry),
        "timeseries": semantic_timeseries(result.timeseries),
        "events": result.events,
        "totals": result.totals,
        "energy": result.energy,
    }


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_probabilistic_one_bit_identical_to_flood(seed, topology):
    ref = _run_lane(seed, topology, "flood")
    gos = _run_lane(seed, topology, "probabilistic:1.0")
    assert snapshot_diff(ref["snapshot"], gos["snapshot"]) == {}
    assert ref["timeseries"] == gos["timeseries"]
    assert ref["events"] == gos["events"]
    assert ref["totals"] == gos["totals"]
    np.testing.assert_array_equal(ref["energy"], gos["energy"])


# ----------------------------------------------------------------------
# suppressing lanes: answers must stay truthful
# ----------------------------------------------------------------------
def _answer_correctness(cfg: ScenarioConfig):
    """Run ``cfg``; every recorded answer must come from a true holder."""
    simulation = build_scenario(cfg)
    simulation.run()
    servents = simulation.overlay.servents
    answers = 0
    for servent in servents.values():
        for record in servent.query_engine.records:
            for holder, p2p_hops, _ in record.answers:
                answers += 1
                assert holder != record.requirer
                assert p2p_hops >= 1
                # download is off, so stores never changed mid-run: the
                # holder must hold the file right now.
                assert servents[holder].store.has(record.file_id), (
                    f"node {holder} answered query for file {record.file_id} "
                    "it does not hold"
                )
    records = sum(len(s.query_engine.records) for s in servents.values())
    return records, answers


def _query_cfg(**kw):
    from repro.core.query import QueryConfig

    return ScenarioConfig(
        num_nodes=40,
        duration=60.0,
        seed=2,
        query=QueryConfig(
            warmup=10.0, response_wait=8.0, gap_min=4.0, gap_max=10.0, target="zipf"
        ),
        **kw,
    )


def test_counter_lane_answers_are_truthful():
    records, answers = _answer_correctness(_query_cfg(rebroadcast="counter:2"))
    assert records > 0 and answers > 0


def test_contact_lane_answers_are_truthful():
    cfg = _query_cfg(rebroadcast="contact", query_policy="contact")
    records, answers = _answer_correctness(cfg)
    assert records > 0 and answers > 0


def test_contact_lane_actually_contact_routes():
    cfg = _query_cfg(rebroadcast="contact", query_policy="contact")
    simulation = build_scenario(cfg)
    simulation.run()
    stats = simulation.overlay.stats()
    # Repeat zipf queries find learned holders at least once.
    assert stats["card_contact_hits"] > 0
