"""Tests for DSR packet salvaging."""

import numpy as np

from repro.dsr import DsrConfig, DsrRouter
from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.sim import Simulator


def diamond_topology():
    """0 - 1 - 3 with a parallel relay 2: 0-1, 1-3, 0-2?, 2-3.

    Positions: 0 at origin; 1 and 2 both bridge to 3.
    """
    # node 4 is a far-away island used as an unreachable next hop
    return [[0.0, 0.0], [8.0, 0.0], [8.0, 6.0], [16.0, 0.0], [500.0, 500.0]]


def make(config=None):
    pts = np.asarray(diamond_topology(), dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=10.0)
    channel = Channel(sim, world)
    router = DsrRouter(sim, channel, config=config)
    inbox = []
    router.register("app", lambda dst, src, p, h: inbox.append((dst, src, p, h)))
    return sim, world, router, inbox


class TestSalvage:
    def _prime_relay_with_alternate(self, sim, router):
        # Give relay 1 a cached route to 3 via 2 as the alternate by
        # letting node 1 discover 3 through... 1 reaches 3 directly, so
        # inject the alternate cache entry explicitly (it could have
        # been overheard in a richer run).
        router.agents[1].cache.offer([1, 2, 3])

    def test_relay_salvages_when_next_hop_dies(self):
        sim, world, router, inbox = make()
        # 0 discovers a route to 3 (likely 0-1-3).
        router.send(0, 3, "first", kind="app")
        sim.run(until=3.0)
        assert any(p == "first" for _, _, p, _ in inbox)
        route = router.agents[0].cache.get(3)
        assert route is not None
        relay = route[1]
        other = 2 if relay == 1 else 1
        # The relay holds an alternate route via the other bridge; hand
        # it a packet whose source route points at the unreachable
        # island (node 4) to trigger the salvage path deterministically.
        router.agents[relay].cache.offer([relay, other, 3])
        agent = router.agents[relay]
        from repro.dsr.protocol import DsrData

        pkt = DsrData(
            src=0, dst=3, kind_upper="app", payload="salvaged!", size=64,
            route=[0, relay, 4], index=1,  # next hop 4: out of range
        )
        before = agent.salvaged
        agent._transmit(pkt)
        sim.run(until=6.0)
        assert agent.salvaged == before + 1
        assert any(p == "salvaged!" for _, _, p, _ in inbox)

    def test_salvage_disabled(self):
        cfg = DsrConfig(salvage=False)
        sim, world, router, inbox = make(config=cfg)
        router.send(0, 3, "x", kind="app")
        sim.run(until=3.0)
        route = router.agents[0].cache.get(3)
        relay = route[1]
        other = 2 if relay == 1 else 1
        router.agents[relay].cache.offer([relay, other, 3])
        from repro.dsr.protocol import DsrData

        agent = router.agents[relay]
        pkt = DsrData(
            src=0, dst=3, kind_upper="app", payload="lost", size=64,
            route=[0, relay, 4], index=1,
        )
        agent._transmit(pkt)
        sim.run(until=6.0)
        assert agent.salvaged == 0
        assert not any(p == "lost" for _, _, p, _ in inbox)

    def test_salvage_budget_respected(self):
        sim, world, router, inbox = make()
        from repro.dsr.protocol import DsrData

        agent = router.agents[1]
        agent.cache.offer([1, 2, 3])
        pkt = DsrData(
            src=0, dst=3, kind_upper="app", payload="tired", size=64,
            route=[0, 1, 4], index=1, salvaged=2,  # budget exhausted
        )
        agent._transmit(pkt)
        sim.run(until=6.0)
        assert agent.salvaged == 0
        assert not any(p == "tired" for _, _, p, _ in inbox)

    def test_control_overhead_reports_salvages(self):
        sim, world, router, _ = make()
        assert "salvaged" in router.control_overhead()
