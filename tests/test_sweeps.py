"""Tests for the parameter-sweep engine."""

import pytest

from repro.experiments import ExperimentExecutor, SweepSpec, run_sweep, sweep_grid
from repro.obs.registry import Registry
from repro.scenarios import ScenarioConfig


class TestSweepSpec:
    def test_valid(self):
        s = SweepSpec("num_nodes", (10, 20))
        assert s.field == "num_nodes"

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec("num_nodes", ())

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec("warp_speed", (1,))


class TestGrid:
    def test_single_spec(self):
        grid = sweep_grid([SweepSpec("algorithm", ("basic", "regular"))])
        assert grid == [{"algorithm": "basic"}, {"algorithm": "regular"}]

    def test_cartesian_product(self):
        grid = sweep_grid(
            [
                SweepSpec("algorithm", ("basic", "regular")),
                SweepSpec("num_nodes", (10, 20, 30)),
            ]
        )
        assert len(grid) == 6
        assert {"algorithm": "basic", "num_nodes": 20} in grid

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid([SweepSpec("num_nodes", (1,)), SweepSpec("num_nodes", (2,))])

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid([])


class TestRunSweep:
    BASE = ScenarioConfig(num_nodes=15, duration=120.0, seed=9)

    def test_serial_sweep(self):
        results = run_sweep(
            self.BASE, [SweepSpec("algorithm", ("basic", "regular"))], reps=1
        )
        assert len(results) == 2
        assert results[0].point == {"algorithm": "basic"}
        assert results[0].totals["connect"] > 0
        assert 0.0 <= results[0].answer_rate <= 1.0

    def test_reps_aggregate(self):
        results = run_sweep(
            self.BASE, [SweepSpec("num_nodes", (12,))], reps=2
        )
        assert results[0].reps == 2

    def test_reps_validation(self):
        with pytest.raises(ValueError):
            run_sweep(self.BASE, [SweepSpec("num_nodes", (12,))], reps=0)

    def test_parallel_matches_serial(self):
        specs = [SweepSpec("algorithm", ("basic", "regular"))]
        serial = run_sweep(self.BASE, specs, reps=1)
        parallel = run_sweep(self.BASE, specs, reps=1, processes=2)
        for a, b in zip(serial, parallel):
            assert a.point == b.point
            assert a.totals == b.totals
            assert a.events == b.events

    def test_explicit_chunksize_matches_serial(self):
        # Chunked map must preserve both grid order and point identity:
        # chunksize is a transport knob, never a semantic one.
        specs = [SweepSpec("num_nodes", (10, 12, 14, 16))]
        serial = run_sweep(self.BASE, specs, reps=1)
        chunked = run_sweep(self.BASE, specs, reps=1, processes=2, chunksize=3)
        assert [r.point for r in chunked] == [r.point for r in serial]
        for a, b in zip(serial, chunked):
            assert a.totals == b.totals
            assert a.events == b.events
            assert a.energy == b.energy

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            run_sweep(
                self.BASE,
                [SweepSpec("num_nodes", (10,))],
                processes=2,
                chunksize=0,
            )

    def test_chunksize_ignored_when_serial(self):
        # Serial runs never consult chunksize (no pool to hand it to).
        results = run_sweep(
            self.BASE, [SweepSpec("num_nodes", (10,))], chunksize=0
        )
        assert len(results) == 1

    def test_reps_parallelize_identically(self):
        # The grid x reps product flattens into per-run jobs, so a
        # 1-point sweep still fills the pool -- with identical results.
        specs = [SweepSpec("algorithm", ("basic", "regular"))]
        serial = run_sweep(self.BASE, specs, reps=3)
        parallel = run_sweep(self.BASE, specs, reps=3, processes=3)
        assert [a.to_dict() for a in serial] == [b.to_dict() for b in parallel]

    def test_cache_resumes_sweep(self, tmp_path):
        cache = str(tmp_path / "runs.ndjson")
        specs = [SweepSpec("num_nodes", (10, 12))]
        cold = run_sweep(self.BASE, specs, reps=2, cache=cache)
        ex = ExperimentExecutor(cache=cache, registry=Registry())
        warm = run_sweep(self.BASE, specs, reps=2, executor=ex)
        assert [a.to_dict() for a in cold] == [b.to_dict() for b in warm]
        assert ex.stats()["jobs_executed"] == 0
        assert ex.stats()["cache_hits"] == 4

    def test_shared_executor_dedups_across_sweeps(self):
        ex = ExperimentExecutor(registry=Registry())
        specs = [SweepSpec("num_nodes", (10, 12))]
        run_sweep(self.BASE, specs, reps=1, executor=ex)
        run_sweep(self.BASE, specs, reps=1, executor=ex)
        assert ex.stats()["jobs_executed"] == 2
