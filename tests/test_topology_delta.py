"""Delta topology refresh is bit-identical to the full-rebuild lane.

The delta lane (``topology_refresh="delta"``) diffs positions
against the previous snapshot, re-bins only nodes whose grid cell
changed, and keeps the CSR / neighbor memos / BFS distance cache alive
whenever it can prove no link flipped.  These tests are the proof
obligation: full scenarios -- random-waypoint mobility, churn, finite
energy, lossy/CSMA channels, dense and sparse backends, several seeds --
must produce *semantically* equal registry snapshots, time series,
energy ledgers and totals on both lanes (only the topology cache-effort
counters enumerated in ``repro.obs.compare.TOPOLOGY_COST_METRICS`` may
differ), plus unit coverage of the adjacency-epoch contract itself.
"""

import numpy as np
import pytest

from repro.mobility import Area, RandomWaypoint, Static
from repro.net import World
from repro.obs.compare import (
    TOPOLOGY_COST_METRICS,
    is_cost_key,
    semantic_snapshot,
    semantic_timeseries,
    snapshot_diff,
)
from repro.scenarios.builder import build_scenario
from repro.scenarios.churn import ChurnProcess
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import harvest
from repro.sim import Simulator

SEEDS = (1, 2, 3)


def advance(world, t):
    world.sim.schedule_at(t, lambda: None)
    world.sim.run(until=t)


def _run_lane(seed: int, topology: str, delta: bool, *, churn: bool = True):
    """One full scenario on one refresh lane; returns harvested evidence."""
    cfg = ScenarioConfig(
        num_nodes=40,
        duration=40.0,
        seed=seed,
        # Exercise both non-ideal channels across the grid: collisions on
        # the dense backend, probabilistic loss on the sparse one.
        mac="csma" if topology == "dense" else "lossy",
        energy_capacity=0.05,
        topology=topology,
        obs_interval=10.0,
        # Pin the lane explicitly: this file proves delta-vs-full, and
        # topology_delta=True now resolves to the predictive lane at the
        # config level (covered by tests/test_topology_kinetic.py).
        topology_refresh="delta" if delta else "full",
    )
    simulation = build_scenario(cfg)
    if churn:
        ChurnProcess(
            simulation.sim,
            simulation.world,
            np.random.default_rng(10_000 + seed),
            death_rate=0.05,
            mean_downtime=10.0,
        ).start()
    simulation.run()
    result = harvest(simulation)
    return {
        "snapshot": semantic_snapshot(simulation.registry),
        "timeseries": semantic_timeseries(result.timeseries),
        "events": result.events,
        "energy": result.energy,
        "totals": result.totals,
        "topology": simulation.world.topology,
    }


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_lanes_bit_identical(seed, topology):
    full = _run_lane(seed, topology, delta=False)
    fast = _run_lane(seed, topology, delta=True)
    # Full semantic registry snapshot: equal key sets, equal values.
    assert snapshot_diff(full["snapshot"], fast["snapshot"]) == {}
    # Sampled time-series rows match bit-for-bit too.
    assert full["timeseries"] == fast["timeseries"]
    # Derived figures agree exactly.
    assert full["events"] == fast["events"]
    assert full["totals"] == fast["totals"]
    np.testing.assert_array_equal(full["energy"], fast["energy"])
    # The delta lane really ran: it refreshed incrementally, the
    # reference lane never did.
    assert fast["topology"].delta_rebuilds > 0
    assert fast["topology"].moved_nodes > 0
    assert full["topology"].delta_rebuilds == 0


def test_topology_cost_keys_classified():
    for name in TOPOLOGY_COST_METRICS:
        assert is_cost_key(name)
    assert is_cost_key("topology.dist_cache_hits{backend=sparse,layer=topology}")
    assert is_cost_key("graphfast.bfs_sources{layer=metrics}")
    assert is_cost_key("kernel.heap_pushes")
    assert not is_cost_key("kernel.events_dispatched")
    assert not is_cost_key("radio.frames_delivered")


# ----------------------------------------------------------------------
# adjacency-epoch contract (unit level)
# ----------------------------------------------------------------------
def _static_world(n, topology, delta=True, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * 60.0
    mobility = Static(n, Area(1000.0, 1000.0), rng, positions=pts)
    sim = Simulator()
    world = World(
        sim, mobility, radio_range=12.0, topology=topology, topology_delta=delta
    )
    return world


def _waypoint_world(n, topology, delta, seed=0):
    mobility = RandomWaypoint(
        n, Area(60.0, 60.0), np.random.default_rng(seed), max_speed=8.0, max_pause=1.0
    )
    sim = Simulator()
    world = World(
        sim, mobility, radio_range=12.0, topology=topology, topology_delta=delta
    )
    return world


@pytest.mark.parametrize("topology", ["dense", "sparse"])
class TestAdjacencyEpoch:
    def test_epoch_stands_still_when_nothing_moves(self, topology):
        world = _static_world(12, topology)
        world.neighbors(0)
        e0 = world.adjacency_epoch
        for t in (1.0, 2.0, 3.0):
            advance(world, t)
            world.neighbors(0)
        # Static nodes: every refresh proves the adjacency unchanged.
        assert world.adjacency_epoch == e0
        assert world.topology.delta_rebuilds == 3

    def test_dist_cache_survives_static_refreshes(self, topology):
        world = _static_world(12, topology)
        world.hops_from(0)
        hits0 = world.topology.dist_cache_hits
        advance(world, 5.0)
        world.hops_from(0)  # same epoch: memoized vector must survive
        assert world.topology.dist_cache_hits == hits0 + 1

    def test_full_lane_always_advances_epoch(self, topology):
        world = _static_world(12, topology, delta=False)
        world.neighbors(0)
        e0 = world.adjacency_epoch
        advance(world, 1.0)
        world.neighbors(0)
        assert world.adjacency_epoch == e0 + 1
        assert world.topology.delta_rebuilds == 0

    def test_invalidate_advances_epoch(self, topology):
        world = _static_world(12, topology)
        world.neighbors(0)
        e0 = world.adjacency_epoch
        world.set_down(3)
        assert world.adjacency_epoch > e0

    def test_motion_that_changes_links_advances_epoch(self, topology):
        world = _waypoint_world(20, topology, delta=True, seed=2)
        world.hops_from(0)
        e0 = world.adjacency_epoch
        # 10 s at up to 8 m/s across a 60 m square must flip some link.
        advance(world, 10.0)
        world.hops_from(0)
        assert world.adjacency_epoch > e0


class TestSparseDeltaInternals:
    def test_csr_survives_static_refreshes(self):
        world = _static_world(15, "sparse")
        world.degrees()  # forces a CSR build
        builds0 = world.topology.csr_builds
        for t in (1.0, 2.0):
            advance(world, t)
            world.degrees()
        assert world.topology.csr_builds == builds0

    def test_moved_nodes_counted(self):
        world = _waypoint_world(20, "sparse", delta=True, seed=3)
        world.neighbors(0)
        advance(world, 5.0)
        world.neighbors(0)
        assert world.topology.moved_nodes > 0

    def test_failed_proofs_back_off(self):
        # Sustained fast motion: the adjacency-change proof keeps
        # failing, so the backend must stop paying for it (the skip
        # window opens) while answers stay correct (covered by the
        # lockstep test below).
        world = _waypoint_world(8, "sparse", delta=True, seed=1)
        world.hops_from(0)  # a cache exists, so proofs are attempted
        saw_skip = False
        for t in np.linspace(0.5, 12.0, 24):
            advance(world, float(t))
            world.hops_from(0)
            saw_skip = saw_skip or world.topology._prove_skip > 0
        assert saw_skip
        assert world.topology._prove_fail_streak > 0


@pytest.mark.parametrize("topology", ["dense", "sparse"])
@pytest.mark.parametrize("seed", SEEDS)
def test_lockstep_queries_identical_under_mobility(seed, topology):
    """Every query answer matches the full-rebuild lane at every step."""
    fast = _waypoint_world(25, topology, delta=True, seed=seed)
    full = _waypoint_world(25, topology, delta=False, seed=seed)
    for t in np.linspace(0.5, 20.0, 14):
        advance(fast, float(t))
        advance(full, float(t))
        for i in range(25):
            np.testing.assert_array_equal(fast.neighbors(i), full.neighbors(i))
        for src in (0, 7, 19):
            np.testing.assert_array_equal(fast.hops_from(src), full.hops_from(src))
        np.testing.assert_array_equal(fast.degrees(), full.degrees())
        np.testing.assert_array_equal(fast.adjacency(), full.adjacency())
