"""Tests for result export (JSON/CSV) and ASCII plotting."""

import json

import numpy as np
import pytest

from repro.experiments import (
    ascii_chart,
    figure_chart,
    figure_result_to_csv,
    figure_result_to_dict,
    figure_result_to_json,
    run_result_to_dict,
    run_result_to_json,
)
from repro.experiments.figures import FigureResult
from repro.scenarios import ScenarioConfig, run_scenario


def small_run():
    return run_scenario(ScenarioConfig(num_nodes=15, duration=90.0, seed=6))


def fig_result():
    res = FigureResult(
        exp_id="figT",
        kind="message_curve",
        num_nodes=4,
        duration=10.0,
        reps=1,
        family="ping",
    )
    res.series = {
        "basic": {"curve": np.array([5.0, 1.0])},
        "regular": {"curve": np.array([2.0, float("nan")])},
    }
    res.totals = {"basic": 6.0, "regular": 2.0}
    return res


class TestRunExport:
    def test_json_parses(self):
        out = json.loads(run_result_to_json(small_run()))
        assert out["num_nodes"] == 15
        assert "totals" in out and "file_stats" in out
        assert isinstance(out["sorted_received"]["connect"], list)

    def test_nan_becomes_null(self):
        out = run_result_to_dict(small_run())
        for s in out["file_stats"]:
            v = s["avg_min_p2p_hops"]
            assert v is None or isinstance(v, float)

    def test_plain_types_only(self):
        def check(obj):
            if isinstance(obj, dict):
                for v in obj.values():
                    check(v)
            elif isinstance(obj, list):
                for v in obj:
                    check(v)
            else:
                assert obj is None or isinstance(obj, (bool, int, float, str))

        check(run_result_to_dict(small_run()))


class TestFigureExport:
    def test_json_roundtrip(self):
        out = json.loads(figure_result_to_json(fig_result()))
        assert out["exp_id"] == "figT"
        assert out["series"]["basic"]["curve"] == [5.0, 1.0]
        assert out["series"]["regular"]["curve"][1] is None  # NaN -> null

    def test_csv_long_format(self):
        lines = figure_result_to_csv(fig_result()).strip().splitlines()
        assert lines[0] == "exp_id,algorithm,series,index,value"
        assert "figT,basic,curve,0,5" in lines[1]
        # NaN cell exported as empty
        nan_rows = [l for l in lines if l.endswith(",")]
        assert len(nan_rows) == 1


class TestAsciiChart:
    def test_renders_series_and_legend(self):
        out = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5)
        assert "* a" in out and "o b" in out
        assert "|" in out and "+" in out

    def test_handles_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert "(no finite data)" in ascii_chart({"a": [float("nan")]})

    def test_flat_series_no_crash(self):
        out = ascii_chart({"flat": [2.0, 2.0, 2.0]}, width=10, height=4)
        assert "flat" in out

    def test_figure_chart(self):
        out = figure_chart(fig_result())
        assert "figT" in out and "basic" in out

    def test_y_axis_labels(self):
        out = ascii_chart({"a": [0.0, 10.0]}, width=10, height=4, y_label="msgs")
        assert "10" in out and "0" in out and "msgs" in out
