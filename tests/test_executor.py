"""Tests for the deduplicating, cache-aware experiment executor."""

import pytest

from repro.experiments import ExperimentExecutor, RunCache, figure_configs, run_figure
from repro.experiments.export import figure_result_to_json
from repro.obs.registry import Registry
from repro.scenarios import ScenarioConfig

#: lanes must agree over several seeds, not just the lucky one
EQUIVALENCE_SEEDS = (1, 2, 3)

CFG = ScenarioConfig(num_nodes=12, duration=60.0, seed=0)


def _executor(**kw):
    kw.setdefault("registry", Registry())
    return ExperimentExecutor(**kw)


class TestValidation:
    def test_negative_processes_rejected(self):
        with pytest.raises(ValueError):
            _executor(processes=-1)

    def test_bad_chunksize_rejected_when_pooled(self):
        with pytest.raises(ValueError):
            _executor(processes=2, chunksize=0)

    def test_chunksize_ignored_when_serial(self):
        ex = _executor(chunksize=0)
        assert ex.processes == 1

    def test_zero_means_all_cores(self):
        assert _executor(processes=0).processes >= 1


class TestDedup:
    def test_batch_dedup(self):
        ex = _executor()
        runs = ex.run_configs([CFG, CFG.with_(seed=1), CFG])
        assert len(runs) == 3
        assert runs[0] is runs[2]
        assert ex.stats()["jobs_executed"] == 2
        assert ex.stats()["jobs_deduped"] == 1

    def test_memo_spans_batches(self):
        ex = _executor()
        first = ex.run_config(CFG)
        again = ex.run_config(CFG)
        assert again is first
        assert ex.stats()["jobs_executed"] == 1
        # cross-batch reuse is a memo hit, not a dedup event
        assert ex.stats()["jobs_deduped"] == 0

    def test_figures_5_7_9_11_share_runs(self):
        # Figures 5/7/9/11 harvest different series from identical
        # configs -- one prefetched batch must execute each run once.
        settings = dict(duration=30.0, reps=1, seed=0)
        batch = [
            c
            for fid in ("fig5", "fig7", "fig9", "fig11")
            for c in figure_configs(fid, **settings)
        ]
        ex = _executor()
        runs = ex.run_configs(batch)
        assert len(runs) == 16
        assert ex.stats()["jobs_executed"] == 4
        assert ex.stats()["jobs_deduped"] == 12


class TestEquivalence:
    @pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
    def test_parallel_bit_identical_to_serial(self, seed):
        serial = run_figure("fig7", duration=40.0, reps=2, seed=seed)
        parallel = run_figure(
            "fig7", duration=40.0, reps=2, seed=seed,
            executor=_executor(processes=2),
        )
        assert figure_result_to_json(parallel) == figure_result_to_json(serial)

    @pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
    def test_cached_bit_identical_to_serial(self, seed, tmp_path):
        serial = run_figure("fig5", duration=40.0, reps=1, seed=seed)
        cache_path = str(tmp_path / "runs.ndjson")
        cold = run_figure(
            "fig5", duration=40.0, reps=1, seed=seed,
            executor=_executor(cache=RunCache(cache_path, registry=Registry())),
        )
        warm_ex = _executor(cache=RunCache(cache_path, registry=Registry()))
        warm = run_figure(
            "fig5", duration=40.0, reps=1, seed=seed, executor=warm_ex
        )
        assert figure_result_to_json(cold) == figure_result_to_json(serial)
        assert figure_result_to_json(warm) == figure_result_to_json(serial)
        assert warm_ex.stats()["jobs_executed"] == 0
        assert warm_ex.stats()["cache_hits"] == 4


class TestCacheIntegration:
    def test_write_back_then_resume(self, tmp_path):
        cache_path = str(tmp_path / "runs.ndjson")
        ex = _executor(cache=cache_path)
        ex.run_configs([CFG, CFG.with_(seed=1)])
        # a fresh executor (fresh process) over the same archive
        ex2 = _executor(cache=cache_path)
        ex2.run_configs([CFG, CFG.with_(seed=1), CFG.with_(seed=2)])
        stats = ex2.stats()
        assert stats["cache_hits"] == 2
        assert stats["jobs_executed"] == 1

    def test_path_coerced_to_cache(self, tmp_path):
        ex = _executor(cache=str(tmp_path / "c.ndjson"))
        assert isinstance(ex.cache, RunCache)
