"""Tests for the connection (reference) table."""

import pytest

from repro.core import Connection, ConnectionTable


def conn(peer, **kw):
    return Connection(peer=peer, **kw)


class TestCapacity:
    def test_cap_enforced(self):
        t = ConnectionTable(owner=0, max_connections=2)
        assert t.add(conn(1))
        assert t.add(conn(2))
        assert not t.add(conn(3))
        assert t.count == 2 and t.is_full

    def test_missing(self):
        t = ConnectionTable(0, 3)
        assert t.missing == 3
        t.add(conn(1))
        assert t.missing == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConnectionTable(0, 0)

    def test_self_connection_rejected(self):
        t = ConnectionTable(0, 3)
        with pytest.raises(ValueError):
            t.add(conn(0))

    def test_duplicate_rejected(self):
        t = ConnectionTable(0, 3)
        assert t.add(conn(1))
        assert not t.add(conn(1))
        assert t.count == 1


class TestRemoval:
    def test_remove_returns_connection(self):
        t = ConnectionTable(0, 3)
        c = conn(1, random=True)
        t.add(c)
        assert t.remove(1) is c
        assert t.remove(1) is None
        assert not t.has(1)

    def test_remove_frees_slot(self):
        t = ConnectionTable(0, 1)
        t.add(conn(1))
        t.remove(1)
        assert t.add(conn(2))

    def test_clear(self):
        t = ConnectionTable(0, 3)
        t.add(conn(1))
        t.add(conn(2))
        dropped = t.clear()
        assert len(dropped) == 2 and t.count == 0


class TestRandomConnections:
    def test_random_tracking(self):
        t = ConnectionTable(0, 3)
        t.add(conn(1))
        assert not t.has_random()
        t.add(conn(2, random=True))
        assert t.has_random()
        assert [c.peer for c in t.random_connections()] == [2]

    def test_peers_order_stable(self):
        t = ConnectionTable(0, 5)
        for p in (3, 1, 4):
            t.add(conn(p))
        assert t.peers() == [3, 1, 4]

    def test_iter_is_snapshot_safe(self):
        t = ConnectionTable(0, 3)
        t.add(conn(1))
        t.add(conn(2))
        for c in t:
            t.remove(c.peer)  # must not blow up mid-iteration
        assert t.count == 0
