"""Tests for the CSMA contention MAC."""

import numpy as np
import pytest

from repro.mobility import Area, Static
from repro.net import Frame, World
from repro.net.mac import CsmaChannel
from repro.sim import Simulator

from .helpers import line_positions


def make_csma(positions, radio_range=10.0, **kw):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    ch = CsmaChannel(sim, world, **kw)
    return sim, world, ch


def collect(ch, nid, kind="t"):
    got = []
    ch.nodes[nid].register(kind, got.append)
    return got


class TestAirtime:
    def test_airtime_scales_with_size(self):
        _, _, ch = make_csma(line_positions(2))
        small = Frame(src=0, dst=1, kind="t", payload=None, size=10)
        big = Frame(src=0, dst=1, kind="t", payload=None, size=1000)
        assert ch.airtime(big) > ch.airtime(small) > 0

    def test_delivery_takes_airtime(self):
        sim, _, ch = make_csma(line_positions(2, spacing=5.0))
        times = []
        ch.nodes[1].register("t", lambda f: times.append(sim.now))
        f = Frame(src=0, dst=1, kind="t", payload=None, size=100)
        ch.unicast(f)
        sim.run()
        assert times and times[0] == pytest.approx(ch.airtime(f))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_csma(line_positions(2), bitrate=0)


class TestCollisions:
    def test_simultaneous_senders_collide_at_receiver(self):
        # 0 and 2 both in range of 1, not of each other (hidden terminals).
        sim, _, ch = make_csma([[0, 0], [8, 0], [16, 0]])
        got = collect(ch, 1)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="a", size=200))
        ch.unicast(Frame(src=2, dst=1, kind="t", payload="b", size=200))
        sim.run()
        assert got == []  # both copies destroyed
        assert ch.collisions >= 1

    def test_spaced_transmissions_both_arrive(self):
        sim, _, ch = make_csma([[0, 0], [8, 0], [16, 0]])
        got = collect(ch, 1)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="a", size=100))
        gap = ch.airtime(Frame(src=0, dst=1, kind="t", payload=None, size=100)) * 2
        sim.schedule(gap, lambda: ch.unicast(Frame(src=2, dst=1, kind="t", payload="b", size=100)))
        sim.run()
        assert sorted(f.payload for f in got) == ["a", "b"]

    def test_carrier_sense_defers_neighbor(self):
        # 0 and 1 in range of each other; 1 senses 0's transmission and
        # backs off instead of colliding.
        sim, _, ch = make_csma([[0, 0], [5, 0], [10, 0]], max_retries=20)
        got2 = collect(ch, 2)
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="a", size=400))
        ch.unicast(Frame(src=1, dst=2, kind="t", payload="b", size=400))
        sim.run()
        assert ch.backoffs >= 1
        assert [f.payload for f in got2] == ["b"]  # deferred, then delivered

    def test_retry_budget_exhausted_drops(self):
        sim, _, ch = make_csma(
            [[0, 0], [5, 0], [10, 0]], max_retries=1, max_backoff_slots=1
        )
        # Saturate the air around node 1 with a huge frame from node 0.
        ch.unicast(Frame(src=0, dst=1, kind="t", payload="jam", size=100_000))
        for _ in range(4):
            ch.unicast(Frame(src=1, dst=2, kind="t", payload="x", size=100))
        sim.run()
        assert ch.drops_contention >= 1


class TestBroadcastUnderMac:
    def test_broadcast_reaches_neighbors(self):
        sim, _, ch = make_csma([[10, 10], [15, 10], [10, 15]])
        got1, got2 = collect(ch, 1), collect(ch, 2)
        ch.broadcast(Frame(src=0, dst=-1, kind="t", payload="hello"))
        sim.run()
        assert [f.payload for f in got1] == ["hello"]
        assert [f.payload for f in got2] == ["hello"]


class TestFullScenarioOnCsma:
    def test_overlay_forms_despite_contention(self):
        from repro.scenarios import ScenarioConfig, run_scenario

        res = run_scenario(
            ScenarioConfig(num_nodes=30, duration=300.0, algorithm="regular",
                           mac="csma", seed=41)
        )
        assert res.overlay_stats["mean_degree"] > 0.2
        assert res.totals["connect"] > 0

    def test_invalid_mac_rejected(self):
        from repro.scenarios import ScenarioConfig

        with pytest.raises(ValueError):
            ScenarioConfig(mac="aloha")
