"""Tests for the content-addressed run cache."""

import pytest

from repro.experiments import ResultStore, RunCache, run_key
from repro.obs.registry import Registry
from repro.obs.schema import RUN_SCHEMA_VERSION
from repro.scenarios import ScenarioConfig, run_scenario

CFG = ScenarioConfig(num_nodes=12, duration=60.0, seed=4)


class TestRunKey:
    def test_format(self):
        key = run_key(CFG)
        version, sha, seed = key.split(":")
        assert version == f"v{RUN_SCHEMA_VERSION}"
        assert len(sha) == 64
        assert seed == "4"

    def test_deterministic(self):
        assert run_key(CFG) == run_key(ScenarioConfig(num_nodes=12, duration=60.0, seed=4))

    @pytest.mark.parametrize(
        "change",
        [
            {"num_nodes": 13},
            {"duration": 61.0},
            {"seed": 5},
            {"algorithm": "hybrid"},
            {"routing": "dsdv"},
            {"rebroadcast": "counter:2"},
            {"rebroadcast": "probabilistic:0.7"},
            {"query_policy": "contact"},
            {"queue": "heap"},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert run_key(CFG.with_(**change)) != run_key(CFG)

    def test_schema_version_changes_key(self):
        assert run_key(CFG, schema_version=RUN_SCHEMA_VERSION + 1) != run_key(CFG)


class TestRunCache:
    def _cache(self, tmp_path, **kw):
        return RunCache(str(tmp_path / "runs.ndjson"), registry=Registry(), **kw)

    def test_miss_then_hit(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.get(CFG) is None
        assert cache.misses.value == 1
        result = run_scenario(CFG)
        cache.put(CFG, result)
        got = cache.get(CFG)
        assert got is not None
        assert cache.hits.value == 1
        assert got.totals == result.totals
        assert got.events == result.events

    def test_hit_survives_process_restart(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put(CFG, run_scenario(CFG))
        # a fresh instance over the same archive = a new process
        warm = self._cache(tmp_path)
        assert CFG in warm
        assert warm.get(CFG) is not None
        assert warm.hits.value == 1

    def test_config_change_misses(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put(CFG, run_scenario(CFG))
        assert cache.get(CFG.with_(rebroadcast="counter:2")) is None
        assert cache.get(CFG.with_(seed=5)) is None

    def test_schema_bump_invalidates(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.put(CFG, run_scenario(CFG))
        bumped = RunCache(
            cache.store.path,
            registry=Registry(),
            schema_version=RUN_SCHEMA_VERSION + 1,
        )
        assert bumped.get(CFG) is None

    def test_put_idempotent(self, tmp_path):
        cache = self._cache(tmp_path)
        result = run_scenario(CFG)
        cache.put(CFG, result)
        cache.put(CFG, result)
        assert len(cache) == 1
        assert len(cache.store.load(kind="run")) == 1

    def test_accepts_store_instance(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.ndjson"), registry=Registry())
        cache = RunCache(store, registry=Registry())
        cache.put(CFG, run_scenario(CFG))
        assert cache.store is store

    def test_resume_after_kill(self, tmp_path):
        # A writer killed mid-append leaves a truncated final line; the
        # completed entries before it must still be served.
        registry = Registry()
        cache = RunCache(str(tmp_path / "runs.ndjson"), registry=registry)
        other = CFG.with_(seed=5)
        cache.put(CFG, run_scenario(CFG))
        cache.put(other, run_scenario(other))
        raw = open(cache.store.path).read().rstrip("\n")
        with open(cache.store.path, "w") as fh:
            fh.write(raw[: len(raw) - len(raw.splitlines()[-1]) // 2])
        resumed = RunCache(cache.store.path, registry=registry)
        assert resumed.get(CFG) is not None
        assert resumed.get(other) is None
        assert registry.counter("storage.corrupt_lines").value == 1

    def test_refresh_rereads(self, tmp_path):
        cache = self._cache(tmp_path)
        assert len(cache) == 0
        # another writer appends behind our back
        writer = RunCache(cache.store.path, registry=Registry())
        writer.put(CFG, run_scenario(CFG))
        assert len(cache) == 0  # stale index
        cache.refresh()
        assert len(cache) == 1
