"""Tests for the physical world: adjacency, BFS hops, churn, caching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import Area, RandomWaypoint, Static
from repro.net import UNREACHABLE, EnergyModel, World
from repro.sim import Simulator

from .helpers import line_positions, make_world


class TestAdjacency:
    def test_line_topology(self):
        sim, world, _ = make_world(line_positions(4, spacing=8.0), radio_range=10.0)
        adj = world.adjacency()
        # 8 m spacing, 10 m range: only consecutive nodes connect.
        expected = np.zeros((4, 4), dtype=bool)
        for i in range(3):
            expected[i, i + 1] = expected[i + 1, i] = True
        assert np.array_equal(adj, expected)

    def test_no_self_links(self):
        _, world, _ = make_world([[0, 0], [1, 0]], radio_range=5)
        assert not world.adjacency().diagonal().any()

    def test_symmetric(self):
        pts = np.random.default_rng(0).random((30, 2)) * 50
        _, world, _ = make_world(pts, radio_range=12)
        adj = world.adjacency()
        assert np.array_equal(adj, adj.T)

    def test_range_boundary_inclusive(self):
        _, world, _ = make_world([[0, 0], [10.0, 0]], radio_range=10.0)
        assert world.adjacency()[0, 1]

    def test_neighbors(self):
        _, world, _ = make_world(line_positions(5, spacing=8.0))
        assert list(world.neighbors(2)) == [1, 3]
        assert list(world.neighbors(0)) == [1]

    def test_invalid_range(self):
        sim = Simulator()
        mob = Static(2, Area(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            World(sim, mob, radio_range=0)

    def test_energy_size_mismatch(self):
        sim = Simulator()
        mob = Static(3, Area(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            World(sim, mob, energy=EnergyModel(2))


class TestHops:
    def test_line_hops(self):
        _, world, _ = make_world(line_positions(5, spacing=8.0))
        d = world.hops_from(0)
        assert list(d) == [0, 1, 2, 3, 4]
        assert world.hop_distance(1, 4) == 3

    def test_disconnected(self):
        _, world, _ = make_world([[0, 0], [8, 0], [500, 500]])
        assert world.hop_distance(0, 2) == UNREACHABLE
        assert not world.reachable(0, 2)
        assert world.reachable(0, 1)

    def test_self_distance_zero(self):
        _, world, _ = make_world(line_positions(3))
        assert world.hop_distance(1, 1) == 0

    def test_bfs_matches_networkx(self):
        import networkx as nx

        pts = np.random.default_rng(7).random((40, 2)) * 60
        _, world, _ = make_world(pts, radio_range=15)
        g = nx.from_numpy_array(world.adjacency())
        lengths = nx.single_source_shortest_path_length(g, 5)
        d = world.hops_from(5)
        for j in range(40):
            expected = lengths.get(j, UNREACHABLE)
            assert d[j] == expected

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality_via_bfs(self, seed):
        pts = np.random.default_rng(seed).random((15, 2)) * 40
        _, world, _ = make_world(pts, radio_range=12)
        d0 = world.hops_from(0)
        for j in range(15):
            if d0[j] > 0:
                # some neighbor of j must be exactly one hop closer to 0
                nbrs = world.neighbors(j)
                assert any(d0[k] == d0[j] - 1 for k in nbrs)


class TestCaching:
    def test_positions_cached_per_time(self):
        sim = Simulator()
        mob = RandomWaypoint(10, Area(), np.random.default_rng(0))
        world = World(sim, mob)
        p1 = world.positions()
        p2 = world.positions()
        assert p1 is p2  # same snapshot object while clock unchanged

    def test_adjacency_refreshes_with_time(self):
        sim = Simulator()
        mob = RandomWaypoint(10, Area(20, 20), np.random.default_rng(3), max_pause=1.0)
        world = World(sim, mob, radio_range=5)
        a0 = world.adjacency().copy()
        sim.schedule(500.0, lambda: None)
        sim.run()
        a1 = world.adjacency()
        assert a0.shape == a1.shape  # and no exception: cache rebuilt
        assert world.topology.snapshot_time == 500.0

    def test_bfs_cache_cleared_on_time_change(self):
        sim = Simulator()
        mob = RandomWaypoint(8, Area(30, 30), np.random.default_rng(1), max_pause=0.5)
        world = World(sim, mob, radio_range=8)
        world.hops_from(0)
        assert 0 in world.topology._dist
        sim.schedule(200.0, lambda: None)
        sim.run()
        world.adjacency()
        assert 0 not in world.topology._dist


class TestChurn:
    def test_down_node_has_no_links(self):
        _, world, _ = make_world(line_positions(3, spacing=8.0))
        world.set_down(1)
        adj = world.adjacency()
        assert not adj[1].any() and not adj[:, 1].any()
        assert world.hop_distance(0, 2) == UNREACHABLE

    def test_revive(self):
        _, world, _ = make_world(line_positions(3, spacing=8.0))
        world.set_down(1)
        world.set_down(1, down=False)
        assert world.hop_distance(0, 2) == 2

    def test_is_up_tracks_energy(self):
        _, world, _ = make_world([[0, 0], [5, 0]], capacity=1e-4)
        assert world.is_up(0)
        world.energy.charge_tx(0, 10_000)  # huge frame: drains battery
        assert not world.is_up(0)


class TestLivenessFastPath:
    """The incremental up-set must mirror the reference definition
    (not administratively down, not depleted) through every transition."""

    def test_up_ids_initial(self):
        _, world, _ = make_world(line_positions(3, spacing=8.0))
        assert world.up_ids() == frozenset({0, 1, 2})

    def test_up_ids_tracks_set_down(self):
        _, world, _ = make_world(line_positions(3, spacing=8.0))
        world.set_down(1)
        assert world.up_ids() == frozenset({0, 2})
        world.set_down(1, down=False)
        assert world.up_ids() == frozenset({0, 1, 2})

    def test_depleted_node_cannot_be_revived(self):
        _, world, _ = make_world([[0, 0], [5, 0]], capacity=1e-4)
        world.energy.charge_tx(0, 10_000)
        world.check_depletion()
        world.set_down(0, down=False)  # administrative revival attempt
        assert not world.is_up(0)

    def test_check_depletion_on_administratively_down_node(self):
        _, world, _ = make_world([[0, 0], [5, 0]], capacity=1e-4)
        world.set_down(0)
        world.energy.charge_tx(0, 10_000)
        world.check_depletion()
        assert not world.is_up(0)
        assert world.up_ids() == frozenset({1})

    def test_is_up_accepts_plain_and_numpy_ints(self):
        import numpy as np

        _, world, _ = make_world(line_positions(2, spacing=8.0))
        world.set_down(np.int64(0))
        assert not world.is_up(0)


class TestEnergyProtocol:
    """Threshold-crossing protocol: crossings are detected at charge
    time and handed out exactly once by poll_depleted()."""

    def test_poll_returns_each_crossing_once(self):
        em = EnergyModel(3, capacity=1e-4)
        assert em.poll_depleted() == ()
        em.charge_tx(1, 10_000)
        assert em.poll_depleted() == (1,)
        assert em.poll_depleted() == ()
        em.charge_rx(1, 10_000)  # still depleted: no second crossing
        assert em.poll_depleted() == ()

    def test_infinite_capacity_never_depletes(self):
        em = EnergyModel(2)
        em.charge_tx(0, 10**9)
        assert not em.finite
        assert em.alive(0)
        assert em.poll_depleted() == ()
        assert em.resync() == ()

    def test_on_depleted_fires_once_per_node(self):
        em = EnergyModel(3, capacity=1e-4)
        fired = []
        em.on_depleted = fired.append
        em.charge_tx(2, 10_000)
        em.charge_rx(2, 10_000)
        assert fired == [2]

    def test_resync_after_bulk_edit(self):
        em = EnergyModel(3, capacity=1.0)
        em.consumed[0] = 2.0  # direct edit, bypassing charge_*
        assert em.alive(0)  # stale until resync
        assert em.resync() == (0,)
        assert not em.alive(0)
        assert em.poll_depleted() == (0,)
        assert em.resync() == ()  # idempotent

    def test_alive_agrees_with_depleted_mask(self):
        em = EnergyModel(4, capacity=1e-4)
        em.charge_tx(1, 10_000)
        em.charge_rx(3, 10_000)
        mask = em.depleted()
        for i in range(4):
            assert em.alive(i) == (not mask[i])
