"""Tests for the oracle shortest-path router."""

import numpy as np

from repro.mobility import Area, Static
from repro.net import Channel, World
from repro.routing import OracleRouter, Router
from repro.sim import Simulator

from .helpers import line_positions


def make_oracle(positions, radio_range=10.0):
    pts = np.asarray(positions, dtype=float)
    sim = Simulator()
    mobility = Static(len(pts), Area(1000, 1000), np.random.default_rng(0), positions=pts)
    world = World(sim, mobility, radio_range=radio_range)
    router = OracleRouter(sim, world)
    inbox = []
    router.register("app", lambda dst, src, p, h: inbox.append((dst, src, p, h)))
    return sim, world, router, inbox


class TestOracle:
    def test_delivers_with_bfs_hops(self):
        sim, _, router, inbox = make_oracle(line_positions(5, spacing=8.0))
        router.send(0, 4, "x", kind="app")
        sim.run()
        assert inbox == [(4, 0, "x", 4)]

    def test_latency_proportional_to_hops(self):
        sim, _, router, _ = make_oracle(line_positions(4, spacing=8.0))
        times = {}
        router.register("t", lambda dst, src, p, h: times.__setitem__(p, sim.now))
        router.send(0, 1, "one", kind="t")
        router.send(0, 3, "three", kind="t")
        sim.run()
        assert times["three"] == 3 * times["one"]

    def test_no_path_fails_immediately(self):
        sim, _, router, inbox = make_oracle([[0, 0], [500, 500]])
        failed = []
        router.send(0, 1, "x", kind="app", on_fail=failed.append)
        sim.run()
        assert failed == ["x"] and inbox == [] and router.failed == 1

    def test_down_endpoint_fails(self):
        sim, world, router, _ = make_oracle(line_positions(2, spacing=5.0))
        failed = []
        world.set_down(1)
        router.send(0, 1, "x", kind="app", on_fail=failed.append)
        sim.run()
        assert failed == ["x"]

    def test_loopback(self):
        sim, _, router, inbox = make_oracle(line_positions(2))
        router.send(1, 1, "me", kind="app")
        sim.run()
        assert inbox == [(1, 1, "me", 0)]

    def test_route_hops(self):
        _, _, router, _ = make_oracle(line_positions(4, spacing=8.0))
        assert router.route_hops(0, 3) == 3
        assert router.route_hops(0, 0) == 0

    def test_route_hops_unknown_when_disconnected(self):
        _, _, router, _ = make_oracle([[0, 0], [500, 500]])
        assert router.route_hops(0, 1) == Router.UNKNOWN

    def test_endpoints_pay_energy(self):
        sim, world, router, _ = make_oracle(line_positions(3, spacing=8.0))
        router.send(0, 2, "x", kind="app")
        sim.run()
        assert world.energy.consumed[0] > 0
        assert world.energy.consumed[2] > 0
