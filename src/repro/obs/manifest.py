"""Per-run provenance: what ran, with which bits, for how long.

A :class:`RunManifest` pins down everything needed to reproduce or audit
one simulation run: the full configuration and its hash, the seed, the
source revision the process ran from (best effort), interpreter and
numpy versions, wall-clock cost and the run's peak counters.  It rides
inside the versioned ``RunResult`` schema, so every archived run is
self-describing.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .registry import Registry

__all__ = ["RunManifest", "git_revision", "config_hash"]


def config_hash(config: Dict[str, Any]) -> str:
    """sha256 of the canonical (sorted-keys) JSON of a config dict."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def git_revision(start: Optional[str] = None) -> Optional[str]:
    """Best-effort commit hash of the repository containing ``start``.

    Reads ``.git/HEAD`` directly (no subprocess); returns ``None``
    outside a git checkout or on any read problem.
    """
    path = os.path.abspath(start if start is not None else os.getcwd())
    try:
        while True:
            head = os.path.join(path, ".git", "HEAD")
            if os.path.isfile(head):
                with open(head) as fh:
                    ref = fh.read().strip()
                if ref.startswith("ref:"):
                    ref_path = os.path.join(path, ".git", *ref[4:].strip().split("/"))
                    if os.path.isfile(ref_path):
                        with open(ref_path) as fh:
                            return fh.read().strip() or None
                    return None
                return ref or None
            parent = os.path.dirname(path)
            if parent == path:
                return None
            path = parent
    except OSError:
        return None


@dataclass
class RunManifest:
    """Provenance record of one run (see :meth:`begin` / :meth:`finish`)."""

    config: Dict[str, Any]
    config_sha256: str
    seed: int
    git_rev: Optional[str] = None
    python: str = ""
    numpy_version: str = ""
    platform_tag: str = ""
    #: wall-clock unix timestamp when the run started
    started_at: float = 0.0
    #: total wall-clock seconds (set by :meth:`finish`)
    wall_seconds: float = 0.0
    #: peak/final counter values, per-node labels folded
    peaks: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def begin(cls, config: Dict[str, Any], seed: int) -> "RunManifest":
        """Capture the environment at run start."""
        return cls(
            config=config,
            config_sha256=config_hash(config),
            seed=int(seed),
            git_rev=git_revision(),
            python=platform.python_version(),
            numpy_version=np.__version__,
            platform_tag=platform.platform(),
            started_at=time.time(),
        )

    def finish(self, registry: Optional[Registry] = None) -> "RunManifest":
        """Record the elapsed wall clock and final counter values."""
        self.wall_seconds = time.time() - self.started_at
        if registry is not None:
            self.peaks = registry.aggregated(skip_kinds=("timer",))
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "config_sha256": self.config_sha256,
            "seed": self.seed,
            "git_rev": self.git_rev,
            "python": self.python,
            "numpy_version": self.numpy_version,
            "platform": self.platform_tag,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "peaks": dict(self.peaks),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any], config: Optional[Dict[str, Any]] = None) -> "RunManifest":
        return cls(
            config=config if config is not None else {},
            config_sha256=d["config_sha256"],
            seed=int(d["seed"]),
            git_rev=d.get("git_rev"),
            python=d.get("python", ""),
            numpy_version=d.get("numpy_version", ""),
            platform_tag=d.get("platform", ""),
            started_at=float(d.get("started_at", 0.0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            peaks=dict(d.get("peaks", {})),
        )
