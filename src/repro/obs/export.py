"""Serialize registry snapshots and sampled time-series.

Same serialization style as :mod:`repro.sim.trace`: ND-JSON (one object
per line -- greppable, diffable, stream-loadable) and CSV with a header
row.  Time-series rows are exported in *long* format
(``t, metric, value``) so downstream tools need no knowledge of which
metrics a given run happened to register.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Sequence

from .registry import Registry

__all__ = [
    "to_plain",
    "registry_to_ndjson",
    "registry_to_csv",
    "timeseries_to_ndjson",
    "timeseries_to_csv",
]


def to_plain(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to JSON-safe built-ins.

    NaN and +-inf become ``None`` (JSON has neither); numpy arrays become
    lists.  Imported lazily so :mod:`repro.obs` itself stays numpy-free
    on the hot path.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        return [to_plain(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        value = value.item()
    if isinstance(value, float) and not (value == value and abs(value) != float("inf")):
        return None
    if isinstance(value, dict):
        return {str(k): to_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_plain(v) for v in value]
    return value


def registry_to_ndjson(registry: Registry) -> str:
    """One JSON object per metric reading: name, labels, kind, value."""
    lines = []
    for s in registry.collect():
        lines.append(
            json.dumps(
                {
                    "name": s.name,
                    "labels": dict(s.labels),
                    "kind": s.kind,
                    "value": s.value,
                }
            )
        )
    return "\n".join(lines)


def registry_to_csv(registry: Registry) -> str:
    """CSV dump: metric, kind, labels (flattened), value."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["metric", "kind", "labels", "value"])
    for s in registry.collect():
        labels = ",".join(f"{k}={v}" for k, v in s.labels)
        writer.writerow([s.name, s.kind, labels, _fmt(s.value)])
    return buf.getvalue()


def timeseries_to_ndjson(rows: Sequence[Dict[str, float]]) -> str:
    """Long-format ND-JSON: one ``{"t", "metric", "value"}`` per reading."""
    lines: List[str] = []
    for row in rows:
        t = row.get("t", 0.0)
        for key in sorted(row):
            if key == "t":
                continue
            lines.append(json.dumps({"t": t, "metric": key, "value": row[key]}))
    return "\n".join(lines)


def timeseries_to_csv(rows: Sequence[Dict[str, float]]) -> str:
    """Long-format CSV with a ``t,metric,value`` header."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["t", "metric", "value"])
    for row in rows:
        t = row.get("t", 0.0)
        for key in sorted(row):
            if key == "t":
                continue
            writer.writerow([f"{t:.6f}", key, _fmt(row[key])])
    return buf.getvalue()


def _fmt(value: float) -> str:
    """Compact numeric formatting (ints stay ints)."""
    f = float(value)
    return str(int(f)) if f.is_integer() else f"{f:.6g}"
