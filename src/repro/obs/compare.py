"""Semantic registry comparison for A/B equivalence proofs.

The batched-delivery fast lane (``Channel(batched=True)``) must be
*semantically* bit-identical to the per-receiver reference lane: every
frame copy, energy charge, RNG draw, protocol counter and sampled
time-series row agrees exactly.  What legitimately differs is the
*scheduler cost* of producing that behaviour -- how many entries went
through the kernel heap, how long the heap was at a sample instant, how
often it compacted.  Those metrics are the optimization target, not the
simulation.

This module draws that line in one place: :data:`SCHEDULER_COST_METRICS`
names the kernel-cost metric families, :func:`semantic_snapshot` returns
a registry snapshot with them removed, and :func:`semantic_timeseries`
does the same for sampler rows.  The equivalence tests
(``tests/test_batched_equivalence.py``), the bench harness and DESIGN.md
§5 all reference this definition.

Note that ``kernel.events_dispatched`` is deliberately *semantic*: a
batch event carries ``weight=k``, so logical event counts match the
reference schedule exactly and stay comparable across archived runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .registry import Registry

__all__ = [
    "SCHEDULER_COST_METRICS",
    "TOPOLOGY_COST_METRICS",
    "SUPPRESSION_COST_METRICS",
    "is_scheduler_cost_key",
    "is_cost_key",
    "semantic_snapshot",
    "semantic_timeseries",
    "snapshot_diff",
]

#: Metric names that measure how hard the scheduler worked rather than
#: what the simulation did.  Everything else in the registry must be
#: bit-identical between the batched and reference delivery lanes.
SCHEDULER_COST_METRICS: Tuple[str, ...] = (
    "kernel.heap",
    "kernel.heap_pushes",
    "kernel.heap_compactions",
    "kernel.events_skipped",
    # Calendar-lane cost telemetry (absent on the heap reference lane):
    # rebuild counts and bucket geometry measure the queue's calibration
    # effort, never what the simulation did.
    "kernel.calq_resizes",
    "kernel.calq_spills",
    "kernel.calq_buckets",
    "kernel.calq_occupancy",
)

#: Metric names that measure topology *cache effort*, not connectivity.
#: The delta and predictive refresh lanes legitimately rebuild less,
#: keep the BFS distance cache warm across refreshes, skip refreshes
#: kinetically and build fewer CSRs than the full-rebuild reference
#: lane, so these counters (and the proof-gate gauge) differ between
#: lanes while every query answer stays bit-identical.
TOPOLOGY_COST_METRICS: Tuple[str, ...] = (
    "topology.rebuilds",
    "topology.delta_rebuilds",
    "topology.moved_nodes",
    "topology.dist_cache_hits",
    "topology.csr_builds",
    "topology.kinetic_skips",
    "topology.kinetic_refreshes",
    "topology.horizon_recomputes",
    "topology.proof_gate",
)

#: Rebroadcast-suppression policy accounting
#: (:mod:`repro.net.suppression`): how many transmissions a policy
#: skipped, cancelled or contact-routed measures the *policy's* work,
#: not the paper's semantics.  Classifying these as cost also keeps
#: reference-equivalent lanes comparable: ``probabilistic:1.0``
#: registers its (zero-valued) ``flood.suppressed`` counters while the
#: plain ``flood`` lane registers none, and the semantic surface must
#: not see that difference.  (``flood.originated`` / ``forwarded`` /
#: ``duplicates`` stay semantic: suppression legitimately changes them
#: and the equivalence suite must notice when it claims not to.)
SUPPRESSION_COST_METRICS: Tuple[str, ...] = (
    "flood.suppressed",
    "flood.assessment_cancels",
    "card.contact_hits",
    "card.fallback_floods",
    "card.contacts_learned",
)

#: Prefix covering the vectorized graph-kernel counters
#: (:mod:`repro.metrics.graphfast`): kernel invocation counts measure
#: which analytics implementation ran, never what the simulation did.
_GRAPHFAST_PREFIX = "graphfast."

#: Prefix covering the analytics-engine counters
#: (:mod:`repro.metrics.analytics`): cache hits, incremental deltas,
#: full recomputes and BFS shard counts measure which analytics *lane*
#: (serial|parallel x full|incremental) produced the metrics -- the
#: metric values themselves are exactly equal between lanes.
_ANALYTICS_PREFIX = "analytics."


def is_scheduler_cost_key(key: str) -> bool:
    """Whether a flattened ``name{labels}`` key is a scheduler-cost metric."""
    name = key.split("{", 1)[0]
    return name in SCHEDULER_COST_METRICS


def is_cost_key(key: str) -> bool:
    """Whether a flattened key measures *cost* (scheduler, topology cache
    effort, or analytics-kernel invocations) rather than simulation
    semantics.  The equivalence surface excludes exactly these."""
    name = key.split("{", 1)[0]
    return (
        name in SCHEDULER_COST_METRICS
        or name in TOPOLOGY_COST_METRICS
        or name in SUPPRESSION_COST_METRICS
        or name.startswith(_GRAPHFAST_PREFIX)
        or name.startswith(_ANALYTICS_PREFIX)
    )


def semantic_snapshot(
    registry: Registry, *, drop_labels: Tuple[str, ...] = ("node",)
) -> Dict[str, float]:
    """Aggregated registry snapshot with cost metrics removed.

    Wall-clock timers are also excluded (they measure the host, not the
    run).  Two runs of the same seeded scenario on different delivery
    lanes -- or different topology refresh lanes -- must produce equal
    dicts.
    """
    return {
        k: v
        for k, v in registry.aggregated(
            drop_labels=drop_labels, skip_kinds=("timer",)
        ).items()
        if not is_cost_key(k)
    }


def semantic_timeseries(rows: Iterable[Dict[str, float]]) -> List[Dict[str, float]]:
    """Sampler rows with cost columns removed (same contract)."""
    return [{k: v for k, v in row.items() if not is_cost_key(k)} for row in rows]


def snapshot_diff(
    a: Dict[str, float], b: Dict[str, float]
) -> Dict[str, Tuple[object, object]]:
    """``{key: (a_value, b_value)}`` for every key where the dicts differ.

    Missing keys appear with ``None`` on the absent side.  Empty dict
    means the snapshots are bit-identical -- the assertion the
    equivalence tests and the bench harness make.
    """
    out: Dict[str, Tuple[object, object]] = {}
    for k in sorted(set(a) | set(b)):
        va, vb = a.get(k), b.get(k)
        if va != vb:
            out[k] = (va, vb)
    return out
