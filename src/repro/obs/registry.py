"""Process-local instrumentation registry.

Every layer of a simulation used to keep its own ad-hoc counters
(``Simulator.events_dispatched``, ``FloodManager.evictions``, the
``MetricsCollector`` arrays, ...), each with its own access idiom.  The
registry gives them one: a component asks its :class:`Registry` for a
:class:`Counter` / :class:`Gauge` / :class:`Histogram` / :class:`Timer`
named like ``"kernel.events_dispatched"`` and optionally *labeled*
(``node=3``, ``family="ping"``, ``layer="radio"``), keeps a direct
reference for the hot path, and the registry can later enumerate,
aggregate and export everything uniformly.

Design constraints (these shaped the API):

* **Hot-path cost is one attribute increment.**  ``Counter.value`` is a
  plain attribute; instrumented code does ``c.value += 1``.  No dict
  lookup, no method call required (``inc()`` exists for convenience).
* **Determinism.**  Metrics only *observe*; nothing in this module
  touches simulation state, RNG streams or event ordering, so a run
  with a fully-populated registry is bit-identical to one without.
* **Process-local.**  A registry is plain Python state owned by one
  simulation (or the module-level :func:`default_registry` for ad-hoc
  use); there is no I/O and no global mutation besides that default.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "Sample",
    "default_registry",
    "timed",
]

LabelItems = Tuple[Tuple[str, Any], ...]


def _freeze_labels(labels: Dict[str, Any]) -> LabelItems:
    """Canonical (sorted, immutable) form of a label set."""
    return tuple(sorted((str(k), v) for k, v in labels.items()))


def flatten_key(name: str, labels: LabelItems) -> str:
    """``name{k=v,...}`` string key (stable across runs)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Metric:
    """Common identity of every registered instrument."""

    kind = "abstract"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, Any]:
        return dict(self.labels)

    @property
    def key(self) -> str:
        """Flattened ``name{labels}`` identity."""
        return flatten_key(self.name, self.labels)

    def samples(self) -> List[Tuple[str, float]]:
        """Numeric readings as ``(suffixed_name, value)`` pairs."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.key}>"


class Counter(Metric):
    """Monotonically increasing count.  Hot path: ``c.value += n``."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def samples(self) -> List[Tuple[str, float]]:
        return [(self.name, self.value)]


class Gauge(Metric):
    """Point-in-time value: either set explicitly or read via callback."""

    kind = "gauge"
    __slots__ = ("fn", "_value")

    def __init__(
        self, name: str, labels: LabelItems, fn: Optional[Callable[[], float]] = None
    ) -> None:
        super().__init__(name, labels)
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.key} is callback-backed; cannot set()")
        self._value = value

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value

    def samples(self) -> List[Tuple[str, float]]:
        return [(self.name, self.value)]


class Histogram(Metric):
    """Streaming summary (count / sum / min / max) of observed values."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def samples(self) -> List[Tuple[str, float]]:
        out = [(self.name + ".count", float(self.count)), (self.name + ".sum", self.total)]
        if self.count:
            out.append((self.name + ".min", self.min))
            out.append((self.name + ".max", self.max))
        return out


class Timer(Metric):
    """Accumulated wall-clock time of a named code section.

    Timings are *wall* clock (``time.perf_counter``), never simulation
    time, and feed nothing back into the run -- they exist so
    ``run --stats`` can show where real time went.
    """

    kind = "timer"
    __slots__ = ("seconds", "calls")

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.seconds = 0.0
        self.calls = 0

    def time(self) -> "_TimerContext":
        """Context manager accumulating the enclosed wall time."""
        return _TimerContext(self)

    def add(self, seconds: float, calls: int = 1) -> None:
        self.seconds += seconds
        self.calls += calls

    def samples(self) -> List[Tuple[str, float]]:
        return [(self.name + ".seconds", self.seconds), (self.name + ".calls", float(self.calls))]


class _TimerContext:
    __slots__ = ("timer", "_t0")

    def __init__(self, timer: Timer) -> None:
        self.timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.timer.add(time.perf_counter() - self._t0)


class Sample:
    """One numeric reading: ``(name, labels, value, kind)``."""

    __slots__ = ("name", "labels", "value", "kind")

    def __init__(self, name: str, labels: LabelItems, value: float, kind: str) -> None:
        self.name = name
        self.labels = labels
        self.value = value
        self.kind = kind

    @property
    def key(self) -> str:
        return flatten_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Sample {self.key}={self.value}>"


#: Section label used by :meth:`Registry.timed` /  :func:`timed`.
WALL = "wall"


class Registry:
    """Get-or-create factory and enumerator for metrics.

    Asking twice for the same ``(kind, name, labels)`` returns the same
    object, so independent components may share an instrument (or keep
    per-node ones by labeling with ``node=...``).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def _get(self, cls: type, name: str, labels: Dict[str, Any], **kwargs: Any) -> Metric:
        key = (cls.kind, str(name), _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key[1], key[2], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None, **labels: Any
    ) -> Gauge:
        g: Gauge = self._get(Gauge, name, labels)  # type: ignore[assignment]
        if fn is not None:
            g.fn = fn
        return g

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    def timer(self, name: str, **labels: Any) -> Timer:
        return self._get(Timer, name, labels)  # type: ignore[return-value]

    def timed(self, section: str) -> _TimerContext:
        """``with registry.timed("kernel.run"): ...`` wall-clock hook."""
        return self.timer(WALL, section=section).time()

    # ------------------------------------------------------------------
    # enumeration and aggregation
    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """All registered metrics in deterministic (kind, name, labels) order."""
        return [self._metrics[k] for k in sorted(self._metrics, key=_metric_sort_key)]

    def collect(self, *, skip_kinds: Tuple[str, ...] = ()) -> Iterator[Sample]:
        """Yield every numeric reading, deterministically ordered."""
        for metric in self.metrics():
            if metric.kind in skip_kinds:
                continue
            for name, value in metric.samples():
                yield Sample(name, metric.labels, value, metric.kind)

    def value(self, name: str, **labels: Any) -> float:
        """Sum of every counter/gauge named ``name`` matching ``labels``.

        Label aggregation: passing a subset of labels sums over the
        unspecified ones (``value("flood.evictions", plane="p2p.flood")``
        totals all nodes of that plane).
        """
        want = _freeze_labels(labels)
        total = 0.0
        seen = False
        for metric in self.metrics():
            if metric.name != name or metric.kind not in ("counter", "gauge"):
                continue
            have = dict(metric.labels)
            if any(have.get(k, _MISSING) != v for k, v in want):
                continue
            total += metric.value  # type: ignore[union-attr]
            seen = True
        if not seen:
            raise KeyError(f"no counter/gauge named {name!r} matching {dict(want)}")
        return total

    def snapshot(self, *, skip_kinds: Tuple[str, ...] = ()) -> Dict[str, float]:
        """Flat ``{"name{labels}": value}`` dump of every reading."""
        return {s.key: s.value for s in self.collect(skip_kinds=skip_kinds)}

    def aggregated(
        self, *, drop_labels: Tuple[str, ...] = ("node",), skip_kinds: Tuple[str, ...] = ()
    ) -> Dict[str, float]:
        """Readings summed over ``drop_labels`` (per-node detail folded).

        The result maps ``name{remaining-labels}`` to the summed value;
        this is what the sampler records and ``run --stats`` tabulates,
        so per-node label cardinality never bloats exported series.
        """
        out: Dict[str, float] = {}
        for s in self.collect(skip_kinds=skip_kinds):
            kept = tuple((k, v) for k, v in s.labels if k not in drop_labels)
            key = flatten_key(s.name, kept)
            out[key] = out.get(key, 0.0) + s.value
        return out

    def wall_times(self) -> Dict[str, Tuple[float, int]]:
        """``{section: (seconds, calls)}`` for every :meth:`timed` section."""
        out: Dict[str, Tuple[float, int]] = {}
        for metric in self.metrics():
            if metric.kind == "timer" and metric.name == WALL:
                section = dict(metric.labels).get("section", metric.key)
                out[str(section)] = (metric.seconds, metric.calls)  # type: ignore[union-attr]
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Registry metrics={len(self._metrics)}>"


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


def _metric_sort_key(key: Tuple[str, str, LabelItems]) -> Tuple[str, str, str]:
    kind, name, labels = key
    return (name, kind, repr(labels))


_DEFAULT: Optional[Registry] = None


def default_registry() -> Registry:
    """The process-wide fallback registry (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Registry()
    return _DEFAULT


def timed(section: str, registry: Optional[Registry] = None) -> _TimerContext:
    """Module-level sugar: time a section on ``registry`` (or the default)."""
    reg = registry if registry is not None else default_registry()
    return reg.timed(section)
