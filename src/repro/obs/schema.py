"""The versioned run-result schema and its validator.

``RunResult.to_dict()`` emits schema version 1; everything that consumes
archived runs (``ResultStore``, the ``stats`` CLI, CI smoke checks)
validates against this module instead of trusting field names scattered
around the codebase.  The validator is hand-rolled -- the environment
carries no jsonschema dependency -- and reports the offending path in
every error message.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["RUN_SCHEMA_VERSION", "SchemaError", "validate_run_dict"]

#: Current version emitted by ``RunResult.to_dict``.
RUN_SCHEMA_VERSION = 1

#: Message families every run reports (mirrors metrics.collector.FAMILIES).
_FAMILIES = ("connect", "ping", "query", "transfer", "other")

_FILE_STAT_KEYS = {
    "file_id",
    "queries",
    "answered",
    "avg_answers",
    "avg_min_p2p_hops",
    "avg_min_adhoc_hops",
}


class SchemaError(ValueError):
    """A run dict does not conform to the schema."""


def _fail(path: str, msg: str) -> None:
    raise SchemaError(f"{path}: {msg}")


def _expect(d: Dict[str, Any], key: str, types, path: str, *, optional: bool = False):
    if key not in d:
        if optional:
            return None
        _fail(path, f"missing key {key!r}")
    value = d[key]
    if types is not None and not isinstance(value, types):
        _fail(f"{path}.{key}", f"expected {types}, got {type(value).__name__}")
    return value

def _number(value: Any, path: str, *, allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {type(value).__name__}")


def validate_run_dict(d: Dict[str, Any], *, path: str = "run") -> None:
    """Raise :class:`SchemaError` unless ``d`` is a valid v1 run dict."""
    if not isinstance(d, dict):
        _fail(path, f"expected dict, got {type(d).__name__}")
    version = _expect(d, "schema_version", int, path)
    if version != RUN_SCHEMA_VERSION:
        _fail(f"{path}.schema_version", f"unsupported version {version!r}")

    config = _expect(d, "config", dict, path)
    for key in ("num_nodes", "duration", "seed"):
        _number(_expect(config, key, None, f"{path}.config"), f"{path}.config.{key}")
    for key in ("algorithm", "routing", "mobility", "topology"):
        _expect(config, key, str, f"{path}.config")

    num_nodes = int(config["num_nodes"])
    for key in ("algorithm", "routing"):
        _expect(d, key, str, path)
    for key in ("num_nodes", "duration", "seed", "num_queries", "events", "energy_total"):
        _number(_expect(d, key, None, path), f"{path}.{key}")
    if int(d["num_nodes"]) != num_nodes:
        _fail(f"{path}.num_nodes", "disagrees with config.num_nodes")

    members = _expect(d, "members", list, path)
    for i, m in enumerate(members):
        _number(m, f"{path}.members[{i}]")
        if not 0 <= int(m) < num_nodes:
            _fail(f"{path}.members[{i}]", f"node id {m} out of range [0, {num_nodes})")

    totals = _expect(d, "totals", dict, path)
    sorted_received = _expect(d, "sorted_received", dict, path)
    for fam in _FAMILIES:
        _number(_expect(totals, fam, None, f"{path}.totals"), f"{path}.totals.{fam}")
        curve = _expect(sorted_received, fam, list, f"{path}.sorted_received")
        if len(curve) != len(members):
            _fail(
                f"{path}.sorted_received.{fam}",
                f"length {len(curve)} != {len(members)} members",
            )
        for i, v in enumerate(curve):
            _number(v, f"{path}.sorted_received.{fam}[{i}]")
        if any(curve[i] < curve[i + 1] for i in range(len(curve) - 1)):
            _fail(f"{path}.sorted_received.{fam}", "curve is not sorted decreasing")

    file_stats = _expect(d, "file_stats", list, path)
    for i, entry in enumerate(file_stats):
        spath = f"{path}.file_stats[{i}]"
        if not isinstance(entry, dict):
            _fail(spath, f"expected dict, got {type(entry).__name__}")
        missing = _FILE_STAT_KEYS - set(entry)
        if missing:
            _fail(spath, f"missing keys {sorted(missing)}")
        _number(entry["file_id"], f"{spath}.file_id")
        _number(entry["queries"], f"{spath}.queries")
        _number(entry["answered"], f"{spath}.answered")
        _number(entry["avg_answers"], f"{spath}.avg_answers")
        _number(entry["avg_min_p2p_hops"], f"{spath}.avg_min_p2p_hops", allow_none=True)
        _number(entry["avg_min_adhoc_hops"], f"{spath}.avg_min_adhoc_hops", allow_none=True)

    overlay_stats = _expect(d, "overlay_stats", dict, path)
    for k, v in overlay_stats.items():
        _number(v, f"{path}.overlay_stats.{k}", allow_none=True)

    energy = _expect(d, "energy", list, path)
    if len(energy) != num_nodes:
        _fail(f"{path}.energy", f"length {len(energy)} != {num_nodes} nodes")
    for i, v in enumerate(energy):
        _number(v, f"{path}.energy[{i}]")

    balance = _expect(d, "balance", dict, path)
    for fam, metrics in balance.items():
        if not isinstance(metrics, dict):
            _fail(f"{path}.balance.{fam}", "expected dict")
        for k, v in metrics.items():
            _number(v, f"{path}.balance.{fam}.{k}", allow_none=True)

    lifetimes = _expect(d, "connection_lifetimes", dict, path)
    for cls, metrics in lifetimes.items():
        if not isinstance(metrics, dict):
            _fail(f"{path}.connection_lifetimes.{cls}", "expected dict")
        for k, v in metrics.items():
            _number(v, f"{path}.connection_lifetimes.{cls}.{k}", allow_none=True)

    obs = _expect(d, "obs", dict, path, optional=True)
    if obs is not None:
        counters = _expect(obs, "counters", dict, f"{path}.obs", optional=True)
        if counters is not None:
            for k, v in counters.items():
                _number(v, f"{path}.obs.counters.{k}")
        timeseries = _expect(obs, "timeseries", list, f"{path}.obs", optional=True)
        if timeseries is not None:
            for i, row in enumerate(timeseries):
                if not isinstance(row, dict):
                    _fail(f"{path}.obs.timeseries[{i}]", "expected dict")
                _number(
                    _expect(row, "t", None, f"{path}.obs.timeseries[{i}]"),
                    f"{path}.obs.timeseries[{i}].t",
                )
        manifest = _expect(obs, "manifest", dict, f"{path}.obs", optional=True)
        if manifest is not None:
            _expect(manifest, "config_sha256", str, f"{path}.obs.manifest")
            _number(
                _expect(manifest, "seed", None, f"{path}.obs.manifest"),
                f"{path}.obs.manifest.seed",
            )
