"""Unified observability layer: registry, sampler, manifest, exporters.

One surface for everything a run can tell you about itself:

* :class:`Registry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / :class:`Timer` instruments, labeled by node /
  family / layer -- every ad-hoc counter in the simulator is registered
  here (the old attributes remain as read-through views);
* :class:`Sampler` -- snapshots the registry on a sim-time interval
  into a deterministic time-series;
* :class:`RunManifest` -- per-run provenance (config hash, seed, git
  revision, wall clock, peak counters);
* ND-JSON / CSV exporters in the :mod:`repro.sim.trace` style;
* the versioned run-result schema (:data:`RUN_SCHEMA_VERSION`,
  :func:`validate_run_dict`) consumed by storage, sweeps and the CLI;
* semantic A/B comparison (:func:`semantic_snapshot`,
  :func:`snapshot_diff`) -- registry equality modulo scheduler-cost
  metrics, the contract the batched-delivery fast lane is proven
  against.

Components expose a uniform ``stats() -> dict`` protocol (flat dict of
numbers); :func:`timed` adds wall-clock section timing for the
``run --stats`` breakdown.
"""

from .compare import (
    SCHEDULER_COST_METRICS,
    is_scheduler_cost_key,
    semantic_snapshot,
    semantic_timeseries,
    snapshot_diff,
)
from .export import (
    registry_to_csv,
    registry_to_ndjson,
    timeseries_to_csv,
    timeseries_to_ndjson,
    to_plain,
)
from .manifest import RunManifest, config_hash, git_revision
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Sample,
    Timer,
    default_registry,
    timed,
)
from .sampler import Sampler
from .schema import RUN_SCHEMA_VERSION, SchemaError, validate_run_dict

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "Sample",
    "Sampler",
    "RunManifest",
    "config_hash",
    "git_revision",
    "default_registry",
    "timed",
    "to_plain",
    "registry_to_ndjson",
    "registry_to_csv",
    "timeseries_to_ndjson",
    "timeseries_to_csv",
    "RUN_SCHEMA_VERSION",
    "SchemaError",
    "validate_run_dict",
    "SCHEDULER_COST_METRICS",
    "is_scheduler_cost_key",
    "semantic_snapshot",
    "semantic_timeseries",
    "snapshot_diff",
]
