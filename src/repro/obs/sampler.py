"""Sim-time metric sampling into a time-series.

A :class:`Sampler` is a lightweight kernel process that, every
``interval`` simulated seconds, snapshots the registry (counters and
gauges, per-node labels folded) into one row of a time-series.  Typical
registered sources make the rows read like a flight recorder: overlay
size, open connections, cumulative messages by family, kernel heap
depth, consumed energy.

Determinism
-----------
Sampling must never change what it measures, so the sampler

* schedules itself as *daemon* events -- the kernel dispatches them but
  excludes them from ``events_dispatched`` (results are bit-identical
  with and without a sampler attached);
* runs at :class:`~repro.sim.events.Priority.LOW` so same-instant
  protocol activity is always observed *after* it happened;
* reads metrics only; it draws no randomness and mutates no state.

Two runs of the same seeded scenario therefore produce identical rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.events import Priority
from .registry import Registry

__all__ = ["Sampler"]


class Sampler:
    """Periodic registry snapshotter.

    Parameters
    ----------
    sim:
        The simulator to follow (provides the clock and scheduling).
    registry:
        The metrics to snapshot.
    interval:
        Simulated seconds between rows (must be positive).
    drop_labels:
        Labels folded (summed over) when snapshotting; per-node detail
        stays live in the registry but out of the time-series.
    skip_kinds:
        Metric kinds excluded from rows.  Wall-clock timers are excluded
        by default: they measure the host machine, not the simulation,
        and would break run-to-run reproducibility of the series.
    """

    def __init__(
        self,
        sim,
        registry: Registry,
        interval: float,
        *,
        drop_labels: Tuple[str, ...] = ("node",),
        skip_kinds: Tuple[str, ...] = ("timer",),
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.drop_labels = drop_labels
        self.skip_kinds = skip_kinds
        #: collected rows: ``{"t": time, "<metric-key>": value, ...}``
        self.rows: List[Dict[str, float]] = []
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first tick (``interval`` seconds from now)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(
            self.interval, self._tick, priority=Priority.LOW, daemon=True
        )

    def stop(self) -> None:
        """Stop after the currently queued tick (no new ones scheduled)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self.sim.schedule(
            self.interval, self._tick, priority=Priority.LOW, daemon=True
        )

    # ------------------------------------------------------------------
    def sample_now(self) -> Dict[str, float]:
        """Snapshot one row at the current sim time (also appended)."""
        row: Dict[str, float] = {"t": float(self.sim.now)}
        row.update(
            self.registry.aggregated(
                drop_labels=self.drop_labels, skip_kinds=self.skip_kinds
            )
        )
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    # series access
    # ------------------------------------------------------------------
    def series(self, key: str) -> Tuple[List[float], List[float]]:
        """``(times, values)`` of one metric key across all rows.

        Rows missing the key (metric registered mid-run) contribute 0.
        """
        times = [r["t"] for r in self.rows]
        values = [float(r.get(key, 0.0)) for r in self.rows]
        return times, values

    def rate(self, key: str) -> Tuple[List[float], List[float]]:
        """Per-second rate of a cumulative counter key (msgs/sec style).

        Entry ``i`` is ``(v[i] - v[i-1]) / (t[i] - t[i-1])``; the first
        row's rate is measured from ``(t=0, v=0)``.
        """
        times, values = self.series(key)
        rates: List[float] = []
        prev_t, prev_v = 0.0, 0.0
        for t, v in zip(times, values):
            dt = t - prev_t
            rates.append((v - prev_v) / dt if dt > 0 else 0.0)
            prev_t, prev_v = t, v
        return times, rates

    def keys(self) -> List[str]:
        """Every metric key seen in any row (sorted, 't' excluded)."""
        seen = set()
        for r in self.rows:
            seen.update(r)
        seen.discard("t")
        return sorted(seen)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Sampler interval={self.interval} rows={len(self.rows)}>"
