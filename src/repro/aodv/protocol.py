"""AODV protocol agents and the Router adapter.

Implements the on-demand core of draft-ietf-manet-aodv-11 as used by the
paper's simulations:

* expanding-ring RREQ flooding with per-(origin, rreq_id) dedup — the
  "controlled broadcast" cache the authors added to ns-2 is inherent
  here: a node processes each RREQ id once;
* reverse-route installation at every hop an RREQ crosses;
* RREP generation by the destination (always) and by intermediate nodes
  with a fresh-enough route (configurable), unicast back hop-by-hop;
* data forwarding with route-lifetime refresh;
* link-failure handling on transmission failure: invalidate routes via
  the dead next hop, emit a one-hop RERR so neighbours drop their routes
  through us, and re-discover if we are the data source.

HELLO beacons (draft §6.9) are supported but off by default
(``AodvConfig.hello_interval = 0``): link failure is then detected on
use, which the unit-disk channel reports synchronously.  Remaining
simplifications (documented in DESIGN.md): no precursor lists (RERRs
are one-hop broadcasts) and no gratuitous RREPs.  None of these affect
the message families the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.packet import Frame
from ..net.radio import Channel, NetNode
from ..net.suppression import RebroadcastPolicy, make_rebroadcast_policy, parse_policy_spec
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..routing.base import Router
from .messages import SEQ_UNKNOWN, DataPacket, Hello, Rerr, Rrep, Rreq
from .table import RouteTable

__all__ = ["AodvConfig", "AodvAgent", "AodvRouter"]

KIND_CTRL = "aodv.ctrl"
KIND_DATA = "aodv.data"
#: obs label of the RREQ dissemination plane (suppression counters)
KIND_RREQ_PLANE = "aodv.rreq"


@dataclass(frozen=True)
class AodvConfig:
    """AODV constants (defaults follow draft-ietf-manet-aodv-11 §10).

    ``net_diameter`` is sized for the paper's 100 m x 100 m / 10 m-range
    world rather than the draft's 35.
    """

    active_route_timeout: float = 3.0
    my_route_timeout: float = 6.0
    node_traversal_time: float = 0.04
    ttl_start: int = 2
    ttl_increment: int = 2
    ttl_threshold: int = 7
    net_diameter: int = 20
    rreq_retries: int = 2
    #: max data packets buffered per destination awaiting a route
    queue_per_dest: int = 16
    #: whether intermediate nodes with fresh routes answer RREQs
    intermediate_reply: bool = True
    ctrl_size: int = 48
    rerr_size: int = 20
    #: HELLO beacon period (draft §6.9); 0 disables proactive link
    #: sensing (links then break only when a transmission fails)
    hello_interval: float = 0.0
    #: HELLOs a neighbour may miss before the link is declared broken
    allowed_hello_loss: int = 2
    hello_size: int = 24

    def ring_ttls(self) -> List[int]:
        """The TTL sequence of the expanding-ring search + retries."""
        ttls = []
        ttl = self.ttl_start
        while ttl < self.ttl_threshold:
            ttls.append(ttl)
            ttl += self.ttl_increment
        if not ttls:
            # ttl_start >= ttl_threshold: still probe one bounded ring
            # at the threshold before escalating to network-wide floods
            # (draft §6.4 expands *up to* TTL_THRESHOLD, then jumps to
            # NET_DIAMETER).
            ttls.append(self.ttl_threshold)
        ttls.append(self.net_diameter)
        ttls.extend([self.net_diameter] * self.rreq_retries)
        return ttls

    def discovery_timeout(self, ttl: int) -> float:
        """RREP wait time for a ring of radius ``ttl`` (2 x traversal)."""
        return 2.0 * self.node_traversal_time * (ttl + 2)


class AodvAgent:
    """The AODV state machine of one node."""

    def __init__(
        self,
        node: NetNode,
        channel: Channel,
        sim: Simulator,
        config: AodvConfig,
        deliver_up: Callable[[str, int, int, Any, int], None],
        *,
        policy: Optional[RebroadcastPolicy] = None,
    ) -> None:
        self.node = node
        self.nid = node.nid
        self.channel = channel
        self.sim = sim
        self.cfg = config
        self.deliver_up = deliver_up
        #: RREQ rebroadcast policy; reference policies fold to None so
        #: the flood lane keeps the historical inline broadcast.
        self.policy = policy
        self._policy = None if policy is None or policy.reference else policy
        self.table = RouteTable(self.nid)
        self.seq = 0
        self.rreq_id = 0
        self._seen_rreqs: Set[Tuple[int, int]] = set()
        # Pending discoveries: dest -> (queued packets, on_fail callbacks)
        self._pending: Dict[int, List[Tuple[DataPacket, Optional[Callable[[Any], None]]]]] = {}
        self._attempt: Dict[int, int] = {}
        # Stats (ad-hoc-level overhead; used by the routing ablation)
        self.rreq_sent = 0
        self.rrep_sent = 0
        self.rerr_sent = 0
        self.hello_sent = 0
        self.data_forwarded = 0
        #: neighbour -> last time a HELLO (or any ctrl frame) was heard
        self._neighbor_heard: Dict[int, float] = {}
        node.register(KIND_CTRL, self._on_ctrl)
        node.register(KIND_DATA, self._on_data)
        if config.hello_interval > 0:
            from ..sim.process import Process

            self._hello_proc = Process(
                sim, self._hello_loop(), name=f"aodv.hello[{self.nid}]"
            )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_data(
        self,
        dst: int,
        payload: Any,
        kind_upper: str,
        size: int,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        """Send an upper-layer payload to ``dst``, discovering if needed."""
        if dst == self.nid:
            self.sim.schedule(0.0, self.deliver_up, kind_upper, dst, self.nid, payload, 0)
            return
        pkt = DataPacket(src=self.nid, dst=dst, kind_upper=kind_upper, payload=payload, size=size)
        entry = self.table.lookup(dst, self.sim.now)
        if entry is not None:
            self._forward(pkt, entry.next_hop, on_fail)
        else:
            self._enqueue(pkt, on_fail)

    def _enqueue(self, pkt: DataPacket, on_fail: Optional[Callable[[Any], None]]) -> None:
        queue = self._pending.setdefault(pkt.dst, [])
        if len(queue) >= self.cfg.queue_per_dest:
            if on_fail is not None:
                on_fail(pkt.payload)
            return
        queue.append((pkt, on_fail))
        if len(queue) == 1 and pkt.dst not in self._attempt:
            self._attempt[pkt.dst] = 0
            self._start_discovery(pkt.dst)

    def _forward(
        self,
        pkt: DataPacket,
        next_hop: int,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        pkt.hops += 1
        ok = self.channel.unicast(
            Frame(src=self.nid, dst=next_hop, kind=KIND_DATA, payload=pkt, size=pkt.size)
        )
        if ok:
            now = self.sim.now
            self.table.refresh(pkt.dst, now + self.cfg.active_route_timeout)
            if pkt.src != self.nid:
                self.data_forwarded += 1
            return
        # Link broke: drop routes through that neighbour and tell ours.
        pkt.hops -= 1
        broken = self.table.invalidate_via(next_hop)
        for entry in broken:
            self._broadcast_rerr(entry.dest, entry.dest_seq)
        if pkt.src == self.nid:
            # We are the source: requeue and rediscover.
            self._enqueue(pkt, on_fail)
        # Intermediate nodes drop the packet (the RERR warns upstream).

    def _on_data(self, frame: Frame) -> None:
        pkt: DataPacket = frame.payload
        if pkt.dst == self.nid:
            self.deliver_up(pkt.kind_upper, self.nid, pkt.src, pkt.payload, pkt.hops)
            return
        entry = self.table.lookup(pkt.dst, self.sim.now)
        if entry is None:
            # No route at a relay: RERR back so sources re-discover.
            cur = self.table.get(pkt.dst)
            self._broadcast_rerr(pkt.dst, cur.dest_seq if cur else SEQ_UNKNOWN)
            return
        self._forward(pkt, entry.next_hop)

    # ------------------------------------------------------------------
    # route discovery
    # ------------------------------------------------------------------
    def _start_discovery(self, dest: int) -> None:
        attempt = self._attempt.get(dest)
        if attempt is None:
            return
        ttls = self.cfg.ring_ttls()
        if attempt >= len(ttls):
            # Discovery exhausted: fail every queued packet.
            queue = self._pending.pop(dest, [])
            self._attempt.pop(dest, None)
            for pkt, on_fail in queue:
                if on_fail is not None:
                    on_fail(pkt.payload)
            return
        ttl = ttls[attempt]
        self.seq += 1
        self.rreq_id += 1
        known = self.table.get(dest)
        rreq = Rreq(
            origin=self.nid,
            origin_seq=self.seq,
            rreq_id=self.rreq_id,
            dest=dest,
            dest_seq=known.dest_seq if known is not None else SEQ_UNKNOWN,
            hop_count=0,
            ttl=ttl,
        )
        self._seen_rreqs.add((self.nid, self.rreq_id))
        self.rreq_sent += 1
        self.channel.broadcast(
            Frame(src=self.nid, dst=-1, kind=KIND_CTRL, payload=rreq, size=self.cfg.ctrl_size)
        )
        self.sim.schedule(self.cfg.discovery_timeout(ttl), self._discovery_check, dest, attempt)

    def _discovery_check(self, dest: int, attempt: int) -> None:
        if dest not in self._pending:
            return  # already resolved (or failed)
        if self.table.lookup(dest, self.sim.now) is not None:
            self._flush(dest)
            return
        if self._attempt.get(dest) != attempt:
            return  # a newer attempt is in flight
        self._attempt[dest] = attempt + 1
        self._start_discovery(dest)

    def _flush(self, dest: int) -> None:
        entry = self.table.lookup(dest, self.sim.now)
        queue = self._pending.pop(dest, [])
        self._attempt.pop(dest, None)
        if entry is None:
            for pkt, on_fail in queue:
                if on_fail is not None:
                    on_fail(pkt.payload)
            return
        for pkt, on_fail in queue:
            self._forward(pkt, entry.next_hop, on_fail)

    # ------------------------------------------------------------------
    # HELLO link sensing (draft §6.9; optional)
    # ------------------------------------------------------------------
    def _hello_loop(self):
        interval = self.cfg.hello_interval
        # desynchronize beacons across nodes
        yield (self.nid % 16) / 16.0 * interval
        while True:
            self.hello_sent += 1
            self.channel.broadcast(
                Frame(
                    src=self.nid,
                    dst=-1,
                    kind=KIND_CTRL,
                    payload=Hello(sender=self.nid),
                    size=self.cfg.hello_size,
                )
            )
            self._check_silent_neighbors()
            yield interval

    def _check_silent_neighbors(self) -> None:
        deadline = self.cfg.hello_interval * (self.cfg.allowed_hello_loss + 0.5)
        now = self.sim.now
        for nbr, heard in list(self._neighbor_heard.items()):
            if now - heard > deadline:
                del self._neighbor_heard[nbr]
                for entry in self.table.invalidate_via(nbr):
                    self._broadcast_rerr(entry.dest, entry.dest_seq)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _on_ctrl(self, frame: Frame) -> None:
        if self.cfg.hello_interval > 0:
            self._neighbor_heard[frame.src] = self.sim.now
        msg = frame.payload
        if isinstance(msg, Rreq):
            self._on_rreq(frame, msg)
        elif isinstance(msg, Rrep):
            self._on_rrep(frame, msg)
        elif isinstance(msg, Rerr):
            self._on_rerr(frame, msg)
        # Hello needs no handling beyond the timestamp above.

    def _on_rreq(self, frame: Frame, rreq: Rreq) -> None:
        key = (rreq.origin, rreq.rreq_id)
        if key in self._seen_rreqs:
            if self._policy is not None:
                self._policy.duplicate(key)
            return
        self._seen_rreqs.add(key)
        now = self.sim.now
        hops_to_origin = rreq.hop_count + 1
        if self._policy is not None:
            self._policy.overhear(rreq.origin, hops_to_origin)
        # Reverse route to the origin via the node we heard this from.
        self.table.offer(
            rreq.origin,
            next_hop=frame.src,
            hop_count=hops_to_origin,
            dest_seq=rreq.origin_seq,
            expires_at=now + self.cfg.active_route_timeout,
            now=now,
        )
        if rreq.dest == self.nid:
            # Destination replies with a freshly incremented sequence
            # number (>= any the requester has seen), so the RREP always
            # displaces stale knowledge of us.
            self.seq = max(self.seq + 1, rreq.dest_seq if rreq.dest_seq != SEQ_UNKNOWN else 0)
            rrep = Rrep(
                origin=rreq.origin,
                dest=self.nid,
                dest_seq=self.seq,
                hop_count=0,
                lifetime=self.cfg.my_route_timeout,
            )
            self._send_rrep(rrep)
            return
        if self.cfg.intermediate_reply:
            entry = self.table.lookup(rreq.dest, now)
            if (
                entry is not None
                and entry.dest_seq != SEQ_UNKNOWN
                and (rreq.dest_seq == SEQ_UNKNOWN or entry.dest_seq >= rreq.dest_seq)
            ):
                rrep = Rrep(
                    origin=rreq.origin,
                    dest=rreq.dest,
                    dest_seq=entry.dest_seq,
                    hop_count=entry.hop_count,
                    lifetime=max(entry.expires_at - now, 0.0),
                )
                self._send_rrep(rrep)
                return
        if rreq.ttl > 1:
            fwd = Rreq(
                origin=rreq.origin,
                origin_seq=rreq.origin_seq,
                rreq_id=rreq.rreq_id,
                dest=rreq.dest,
                dest_seq=rreq.dest_seq,
                hop_count=hops_to_origin,
                ttl=rreq.ttl - 1,
            )
            out = Frame(
                src=self.nid, dst=-1, kind=KIND_CTRL, payload=fwd, size=frame.size
            )
            if self._policy is None:
                self.channel.broadcast(out)
            else:
                self._policy.forward(key, lambda: self.channel.broadcast(out))

    def _send_rrep(self, rrep: Rrep) -> None:
        """Unicast an RREP one hop toward its origin along reverse route."""
        if rrep.origin == self.nid:
            return  # degenerate: route to self
        entry = self.table.lookup(rrep.origin, self.sim.now)
        if entry is None:
            return  # reverse route evaporated; origin will retry
        self.rrep_sent += 1
        self.channel.unicast(
            Frame(
                src=self.nid,
                dst=entry.next_hop,
                kind=KIND_CTRL,
                payload=rrep,
                size=self.cfg.ctrl_size,
            )
        )

    def _on_rrep(self, frame: Frame, rrep: Rrep) -> None:
        now = self.sim.now
        hops_to_dest = rrep.hop_count + 1
        # Forward route to the destination via whoever sent us the RREP.
        self.table.offer(
            rrep.dest,
            next_hop=frame.src,
            hop_count=hops_to_dest,
            dest_seq=rrep.dest_seq,
            expires_at=now + rrep.lifetime,
            now=now,
        )
        if rrep.origin == self.nid:
            self._flush(rrep.dest)
            return
        fwd = Rrep(
            origin=rrep.origin,
            dest=rrep.dest,
            dest_seq=rrep.dest_seq,
            hop_count=hops_to_dest,
            lifetime=rrep.lifetime,
        )
        self._send_rrep(fwd)

    def _broadcast_rerr(self, dest: int, dest_seq: int) -> None:
        self.rerr_sent += 1
        self.channel.broadcast(
            Frame(
                src=self.nid,
                dst=-1,
                kind=KIND_CTRL,
                payload=Rerr(dest=dest, dest_seq=dest_seq),
                size=self.cfg.rerr_size,
            )
        )

    def _on_rerr(self, frame: Frame, rerr: Rerr) -> None:
        entry = self.table.get(rerr.dest)
        if entry is not None and entry.valid and entry.next_hop == frame.src:
            self.table.invalidate(rerr.dest)
            # Propagate so longer paths through us are torn down too.
            self._broadcast_rerr(rerr.dest, max(rerr.dest_seq, entry.dest_seq))


class AodvRouter(Router):
    """Router facade: one :class:`AodvAgent` per node.

    Parameters
    ----------
    sim, world, channel:
        Shared substrate (the channel must belong to ``world``).
    config:
        Protocol constants.
    rebroadcast:
        RREQ rebroadcast-policy spec (see :mod:`repro.net.suppression`);
        the default ``"flood"`` keeps the draft's plain expanding-ring
        flood bit-identically.
    rng:
        :class:`~repro.sim.rng.RngRegistry` providing the policies'
        private random streams (``suppression.aodv.rreq.<nid>``); a
        seed-0 registry is created when omitted.  Streams are only
        instantiated by policies that actually draw.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        config: Optional[AodvConfig] = None,
        rebroadcast: str = "flood",
        rng: Optional[RngRegistry] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.channel = channel
        self.cfg = config if config is not None else AodvConfig()
        spec = parse_policy_spec(rebroadcast)
        self._rng = rng if rng is not None else RngRegistry(0)
        registry = getattr(channel, "registry", None)
        if registry is None:
            registry = sim.registry
        world = channel.world
        self.agents = [
            AodvAgent(
                node,
                channel,
                sim,
                self.cfg,
                self._deliver_up,
                policy=make_rebroadcast_policy(
                    spec,
                    plane=KIND_RREQ_PLANE,
                    node=node.nid,
                    registry=registry,
                    sim=sim,
                    rng_factory=(
                        lambda nid=node.nid: self._rng.stream(
                            f"suppression.{KIND_RREQ_PLANE}.{nid}"
                        )
                    ),
                    degree=(lambda nid=node.nid: len(world.neighbors(nid))),
                ),
            )
            for node in channel.nodes
        ]

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "data",
        size: int = 64,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.agents[src].send_data(dst, payload, kind, size, on_fail)

    def route_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        entry = self.agents[src].table.lookup(dst, self.sim.now)
        return entry.hop_count if entry is not None else Router.UNKNOWN

    # convenience for diagnostics / ablations -------------------------------
    def control_overhead(self) -> dict:
        """Aggregate AODV control-plane counters across all agents."""
        return {
            "rreq_sent": sum(a.rreq_sent for a in self.agents),
            "rrep_sent": sum(a.rrep_sent for a in self.agents),
            "rerr_sent": sum(a.rerr_sent for a in self.agents),
            "data_forwarded": sum(a.data_forwarded for a in self.agents),
        }
