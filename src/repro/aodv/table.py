"""AODV routing table with destination sequence numbers and lifetimes.

The freshness rules are the heart of AODV's loop freedom: a route is
replaced only by one with a strictly newer destination sequence number,
or an equally fresh one with a strictly smaller hop count.  Expiry is
lazy -- entries carry an absolute ``expires_at`` and are treated as
invalid once the clock passes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .messages import SEQ_UNKNOWN

__all__ = ["RouteEntry", "RouteTable"]


@dataclass(slots=True)
class RouteEntry:
    """One route: where to forward next and how fresh our knowledge is."""

    dest: int
    next_hop: int
    hop_count: int
    dest_seq: int
    expires_at: float
    valid: bool = True


class RouteTable:
    """Per-node AODV route table.

    Parameters
    ----------
    owner:
        Owning node id (diagnostics only).
    """

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._routes: Dict[int, RouteEntry] = {}

    # ------------------------------------------------------------------
    def lookup(self, dest: int, now: float) -> Optional[RouteEntry]:
        """The valid, unexpired route to ``dest``, else ``None``."""
        entry = self._routes.get(dest)
        if entry is None or not entry.valid or entry.expires_at < now:
            return None
        return entry

    def get(self, dest: int) -> Optional[RouteEntry]:
        """Raw entry regardless of validity (for seq-number bookkeeping)."""
        return self._routes.get(dest)

    # ------------------------------------------------------------------
    def offer(
        self,
        dest: int,
        next_hop: int,
        hop_count: int,
        dest_seq: int,
        expires_at: float,
        now: float = float("-inf"),
    ) -> bool:
        """Install the offered route iff it is fresher/better (AODV rules).

        Returns True if the table changed.  An offer with
        ``dest_seq == SEQ_UNKNOWN`` (e.g. learned from a forwarded data
        packet) only fills a hole -- it never displaces sequenced
        knowledge.  An entry that is invalid *or expired at ``now``* is
        dead knowledge: an equally-fresh offer may replace it.
        """
        cur = self._routes.get(dest)
        if cur is None:
            self._routes[dest] = RouteEntry(dest, next_hop, hop_count, dest_seq, expires_at)
            return True
        cur_dead = (not cur.valid) or cur.expires_at < now
        if dest_seq == SEQ_UNKNOWN:
            # Unsequenced knowledge only fills holes.
            accept = cur_dead
        elif cur.dest_seq == SEQ_UNKNOWN:
            accept = True
        elif dest_seq > cur.dest_seq:
            accept = True
        elif dest_seq == cur.dest_seq:
            accept = hop_count < cur.hop_count or cur_dead
        else:
            accept = False
        if accept:
            self._routes[dest] = RouteEntry(dest, next_hop, hop_count, dest_seq, expires_at)
        return accept

    # ------------------------------------------------------------------
    def refresh(self, dest: int, expires_at: float) -> None:
        """Extend the lifetime of an active route (route used for data)."""
        entry = self._routes.get(dest)
        if entry is not None and entry.valid:
            entry.expires_at = max(entry.expires_at, expires_at)

    def invalidate(self, dest: int) -> Optional[RouteEntry]:
        """Mark the route to ``dest`` broken; bumps its seq (AODV §6.11)."""
        entry = self._routes.get(dest)
        if entry is not None and entry.valid:
            entry.valid = False
            if entry.dest_seq != SEQ_UNKNOWN:
                entry.dest_seq += 1
            return entry
        return None

    def invalidate_via(self, next_hop: int) -> list[RouteEntry]:
        """Invalidate every route whose next hop is ``next_hop``."""
        broken = []
        for entry in self._routes.values():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                if entry.dest_seq != SEQ_UNKNOWN:
                    entry.dest_seq += 1
                broken.append(entry)
        return broken

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        valid = sum(1 for e in self._routes.values() if e.valid)
        return f"<RouteTable node={self.owner} routes={len(self._routes)} valid={valid}>"
