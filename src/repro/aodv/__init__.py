"""AODV on-demand routing (draft-ietf-manet-aodv-11 subset)."""

from .messages import SEQ_UNKNOWN, DataPacket, Hello, Rerr, Rrep, Rreq
from .protocol import AodvAgent, AodvConfig, AodvRouter
from .table import RouteEntry, RouteTable

__all__ = [
    "SEQ_UNKNOWN",
    "DataPacket",
    "Hello",
    "Rerr",
    "Rrep",
    "Rreq",
    "AodvAgent",
    "AodvConfig",
    "AodvRouter",
    "RouteEntry",
    "RouteTable",
]
