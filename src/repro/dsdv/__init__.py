"""DSDV proactive distance-vector routing."""

from .protocol import INFINITE_METRIC, DsdvAgent, DsdvConfig, DsdvRouter

__all__ = ["INFINITE_METRIC", "DsdvAgent", "DsdvConfig", "DsdvRouter"]
