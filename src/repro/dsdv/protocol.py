"""DSDV -- Destination-Sequenced Distance Vector routing (Perkins &
Bhagwat, 1994).

The *proactive* counterpoint to AODV: every node periodically broadcasts
its full distance vector to its one-hop neighbours, and routes to all
destinations exist (or not) ahead of any demand.  The paper's companion
study (reference [13], Oliveira et al.) compared exactly this family
against AODV under a p2p workload and found on-demand protocols better
in high-mobility scenarios -- the ``abl_routing_protocols`` bench
reproduces that comparison.

Implemented subset:

* full periodic dumps every ``periodic_update`` seconds (jittered);
* destination sequence numbers: even = alive (incremented by the
  destination itself at every dump), odd = broken (incremented by the
  detector of a link failure);
* freshness rule: accept a newer sequence number, or an equal one with
  a strictly better metric;
* broken-link handling on transmission failure: metric = inf, seq + 1,
  immediate triggered update;
* data forwarding along the vector with a fail callback when no route
  is known (a proactive protocol has nothing to wait for).

Omitted (documented): settling-time damping of fluctuating routes and
incremental (delta) dumps -- neither changes who-can-reach-whom, only
control-plane volume constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..net.packet import Frame
from ..net.radio import Channel, NetNode
from ..routing.base import Router
from ..sim.kernel import Simulator
from ..sim.process import Process

__all__ = ["DsdvConfig", "DsdvAgent", "DsdvRouter", "INFINITE_METRIC"]

KIND_UPDATE = "dsdv.update"
KIND_DATA = "dsdv.data"

#: metric value representing an unreachable destination
INFINITE_METRIC = 10**6


@dataclass(frozen=True)
class DsdvConfig:
    """DSDV constants."""

    periodic_update: float = 15.0
    #: routes not refreshed for this many periods are dropped
    stale_periods: float = 3.0
    update_size: int = 96
    #: delay before a triggered (broken-link) update goes out
    trigger_delay: float = 0.1


@dataclass(slots=True)
class VectorEntry:
    """One row of the distance vector."""

    dest: int
    next_hop: int
    metric: int
    seq: int
    updated_at: float


@dataclass(slots=True)
class DsdvUpdate:
    """A broadcast distance-vector dump: (dest, metric, seq) triples."""

    sender: int
    rows: List[tuple]  # (dest, metric, seq)


@dataclass(slots=True)
class DsdvData:
    """Upper-layer payload riding the DSDV data plane."""

    src: int
    dst: int
    kind_upper: str
    payload: Any
    size: int
    hops: int = 0


class DsdvAgent:
    """The DSDV state machine of one node."""

    def __init__(
        self,
        node: NetNode,
        channel: Channel,
        sim: Simulator,
        config: DsdvConfig,
        deliver_up: Callable[[str, int, int, Any, int], None],
        jitter: float = 0.0,
    ) -> None:
        self.node = node
        self.nid = node.nid
        self.channel = channel
        self.sim = sim
        self.cfg = config
        self.deliver_up = deliver_up
        self.seq = 0  # own even sequence number
        self.table: Dict[int, VectorEntry] = {
            self.nid: VectorEntry(self.nid, self.nid, 0, 0, 0.0)
        }
        self.updates_sent = 0
        self.data_forwarded = 0
        self._trigger_pending = False
        node.register(KIND_UPDATE, self._on_update)
        node.register(KIND_DATA, self._on_data)
        self._proc = Process(sim, self._update_loop(jitter), name=f"dsdv[{self.nid}]")

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _update_loop(self, jitter: float):
        yield jitter
        while True:
            self._broadcast_vector()
            yield self.cfg.periodic_update

    def _broadcast_vector(self) -> None:
        now = self.sim.now
        self.seq += 2  # fresh even seq for ourselves at every dump
        self.table[self.nid] = VectorEntry(self.nid, self.nid, 0, self.seq, now)
        self._expire_stale(now)
        rows = [(e.dest, e.metric, e.seq) for e in self.table.values()]
        self.updates_sent += 1
        self.channel.broadcast(
            Frame(
                src=self.nid,
                dst=-1,
                kind=KIND_UPDATE,
                payload=DsdvUpdate(sender=self.nid, rows=rows),
                size=self.cfg.update_size + 4 * len(rows),
            )
        )

    def _expire_stale(self, now: float) -> None:
        horizon = self.cfg.periodic_update * self.cfg.stale_periods
        for entry in self.table.values():
            if (
                entry.dest != self.nid
                and entry.metric < INFINITE_METRIC
                and now - entry.updated_at > horizon
            ):
                entry.metric = INFINITE_METRIC
                entry.seq += 1  # odd: we declare it broken

    def _on_update(self, frame: Frame) -> None:
        upd: DsdvUpdate = frame.payload
        now = self.sim.now
        for dest, metric, seq in upd.rows:
            if dest == self.nid:
                continue
            candidate = metric + 1 if metric < INFINITE_METRIC else INFINITE_METRIC
            cur = self.table.get(dest)
            accept = (
                cur is None
                or seq > cur.seq
                or (seq == cur.seq and candidate < cur.metric)
            )
            if accept:
                self.table[dest] = VectorEntry(dest, upd.sender, candidate, seq, now)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_data(
        self,
        dst: int,
        payload: Any,
        kind_upper: str,
        size: int,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if dst == self.nid:
            self.sim.schedule(0.0, self.deliver_up, kind_upper, dst, self.nid, payload, 0)
            return
        pkt = DsdvData(src=self.nid, dst=dst, kind_upper=kind_upper, payload=payload, size=size)
        if not self._forward(pkt) and on_fail is not None:
            on_fail(payload)

    def _route(self, dst: int) -> Optional[VectorEntry]:
        entry = self.table.get(dst)
        if entry is None or entry.metric >= INFINITE_METRIC:
            return None
        return entry

    def _forward(self, pkt: DsdvData) -> bool:
        entry = self._route(pkt.dst)
        if entry is None:
            return False
        pkt.hops += 1
        ok = self.channel.unicast(
            Frame(src=self.nid, dst=entry.next_hop, kind=KIND_DATA, payload=pkt, size=pkt.size)
        )
        if ok:
            if pkt.src != self.nid:
                self.data_forwarded += 1
            return True
        pkt.hops -= 1
        self._link_broken(entry.next_hop)
        return False

    def _link_broken(self, neighbor: int) -> None:
        """All routes via the dead neighbour become infinite (odd seq)."""
        changed = False
        for entry in self.table.values():
            if entry.next_hop == neighbor and entry.metric < INFINITE_METRIC:
                entry.metric = INFINITE_METRIC
                entry.seq += 1
                changed = True
        if changed and not self._trigger_pending:
            self._trigger_pending = True
            self.sim.schedule(self.cfg.trigger_delay, self._triggered_update)

    def _triggered_update(self) -> None:
        self._trigger_pending = False
        self._broadcast_vector()

    def _on_data(self, frame: Frame) -> None:
        pkt: DsdvData = frame.payload
        if pkt.dst == self.nid:
            self.deliver_up(pkt.kind_upper, self.nid, pkt.src, pkt.payload, pkt.hops)
            return
        self._forward(pkt)

    def stop(self) -> None:
        self._proc.kill()


class DsdvRouter(Router):
    """Router facade: one :class:`DsdvAgent` per node.

    Updates are jittered across nodes so the periodic dumps don't
    synchronize into network-wide bursts.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        config: Optional[DsdvConfig] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.channel = channel
        self.cfg = config if config is not None else DsdvConfig()
        n = len(channel.nodes)
        self.agents = [
            DsdvAgent(
                node,
                channel,
                sim,
                self.cfg,
                self._deliver_up,
                jitter=(i / max(n, 1)) * self.cfg.periodic_update,
            )
            for i, node in enumerate(channel.nodes)
        ]

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "data",
        size: int = 64,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.agents[src].send_data(dst, payload, kind, size, on_fail)

    def route_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        entry = self.agents[src]._route(dst)
        return entry.metric if entry is not None else Router.UNKNOWN

    def control_overhead(self) -> dict:
        return {
            "updates_sent": sum(a.updates_sent for a in self.agents),
            "data_forwarded": sum(a.data_forwarded for a in self.agents),
        }
