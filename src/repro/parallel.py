"""Shared process-pool sizing helpers.

Two subsystems fan work out over a ``ProcessPoolExecutor``: the
experiment sweep runner (:mod:`repro.experiments.sweeps`, one grid
point per task) and the analytics engine
(:mod:`repro.metrics.analytics`, one BFS source shard per task).  Both
used to size their pools and chunks ad hoc; this module is the single
definition of the ``--processes`` flag semantics and the chunking
policy, so the CLI knobs behave identically everywhere.

Nothing here creates a pool or touches simulation state -- these are
pure sizing functions, trivially unit-testable.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

__all__ = ["resolve_processes", "default_chunksize", "shard_ranges"]


def resolve_processes(processes: Optional[int] = None) -> int:
    """Worker count for a ``--processes``-style knob.

    ``None`` means "use every core" (``os.cpu_count()``, floor 1);
    explicit values must be >= 1.  Every pool in the package sizes
    itself through this one function so the flag means the same thing
    on ``sweep`` and on the analytics engine.
    """
    if processes is None:
        return max(1, os.cpu_count() or 1)
    p = int(processes)
    if p < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    return p


def default_chunksize(n_jobs: int, processes: int) -> int:
    """Tasks submitted per worker round trip: ``ceil(n/4p)`` capped at 32.

    Large job lists amortize pickling instead of shipping one task at a
    time, while ~4 rounds per worker keep the tail load-balanced.  This
    is the sweep runner's historical policy, now shared with the
    analytics engine's shard maps.
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    return max(1, min(32, -(-n_jobs // (4 * max(1, processes)))))


def shard_ranges(
    n_items: int, processes: int, *, granularity: int = 1, rounds: int = 4
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` shards covering ``range(n_items)``.

    Aims for ``rounds`` shards per worker (load balance without
    oversharding); each shard size is rounded up to a multiple of
    ``granularity`` so shards align with the BFS chunk width.  The
    partition is a pure function of its arguments -- workers processing
    the shards in order reproduce the serial iteration exactly.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if n_items <= 0:
        return []
    target = -(-n_items // max(1, processes * rounds))
    size = -(-target // granularity) * granularity
    return [(lo, min(lo + size, n_items)) for lo in range(0, n_items, size)]
