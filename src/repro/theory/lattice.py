"""Ring lattices and Watts-Strogatz rewiring, implemented from scratch.

§6.1.2 of the paper grounds the Random algorithm in the small-world
model: "little changes in regular graphs connections are sufficient to
achieve short global pathlengths as in random graphs".  §8 promises "a
theoretical study on how the connectivity of nodes influences our
metrics and how small-world properties could be better used".  This
module provides the graph machinery for that study; the companion
:mod:`repro.theory.predictions` provides the closed-form reference
values, and :mod:`repro.theory.study` runs the classic rewiring sweep.

Implementations are deliberately independent of networkx generators so
the reproduction owns its math; tests cross-check against networkx.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["ring_lattice", "ws_rewire", "watts_strogatz"]


def ring_lattice(n: int, k: int) -> nx.Graph:
    """The regular ring lattice: ``n`` vertices, each joined to its ``k``
    nearest neighbours (``k/2`` on each side).

    ``k`` must be even and satisfy ``0 < k < n``.
    """
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got k={k}, n={n}")
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(1, k // 2 + 1):
            g.add_edge(i, (i + j) % n)
    return g


def ws_rewire(g: nx.Graph, p: float, rng: np.random.Generator) -> nx.Graph:
    """Watts-Strogatz rewiring: each edge is, with probability ``p``,
    re-attached at one end to a uniformly chosen new vertex (no self
    loops, no duplicate edges).

    Returns a new graph; the input is untouched.
    """
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")
    out = g.copy()
    n = out.number_of_nodes()
    nodes = list(out.nodes)
    for u, v in list(g.edges):
        if rng.random() >= p:
            continue
        # rewire the (u, v) edge at the v end
        candidates = [w for w in nodes if w != u and not out.has_edge(u, w)]
        if not candidates:
            continue
        w = candidates[int(rng.integers(len(candidates)))]
        out.remove_edge(u, v)
        out.add_edge(u, w)
    return out


def watts_strogatz(n: int, k: int, p: float, rng: np.random.Generator) -> nx.Graph:
    """Ring lattice + rewiring in one call (the classic WS ensemble)."""
    return ws_rewire(ring_lattice(n, k), p, rng)
