"""Closed-form small-world reference values.

The quantities the paper quotes in §6.1.2 plus the standard
Watts-Strogatz results needed for the §8 theoretical study:

* regular ring lattice: clustering ``3(k-2) / (4(k-1))``, characteristic
  path length ``~ n / 2k``  (the paper's "n/2k");
* random graph with mean degree k: clustering ``~ k/n``, path length
  ``~ log n / log k`` (the paper's "log n / log k");
* the small-world coefficient sigma = (C/C_rand) / (L/L_rand): sigma > 1
  signals small-world structure;
* Newman-Moore-Watts scaling for the expected path length of a rewired
  lattice (first-order approximation).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lattice_clustering",
    "lattice_pathlength",
    "random_clustering",
    "random_pathlength",
    "smallworld_sigma",
    "nmw_pathlength",
]


def lattice_clustering(k: int) -> float:
    """Clustering coefficient of the ring lattice: ``3(k-2)/(4(k-1))``."""
    if k < 2:
        raise ValueError(f"need k >= 2, got {k}")
    if k == 2:
        return 0.0
    return 3.0 * (k - 2) / (4.0 * (k - 1))


def lattice_pathlength(n: int, k: int) -> float:
    """Characteristic path length of the ring lattice, ``~ n / 2k``."""
    if n <= 0 or k <= 0:
        raise ValueError("n and k must be positive")
    return n / (2.0 * k)


def random_clustering(n: int, k: float) -> float:
    """Expected clustering of an Erdos-Renyi graph with mean degree k."""
    if n <= 1:
        raise ValueError(f"need n > 1, got {n}")
    return float(k) / n


def random_pathlength(n: int, k: float) -> float:
    """Expected path length of a random graph: ``log n / log k``."""
    if n <= 1 or k <= 1:
        raise ValueError("need n > 1 and k > 1")
    return float(np.log(n) / np.log(k))


def smallworld_sigma(
    clustering: float, path_length: float, n: int, k: float
) -> float:
    """The small-world coefficient sigma = (C/C_rand) / (L/L_rand).

    sigma substantially above 1 indicates small-world structure (high
    clustering relative to random, path length close to random).
    Returns ``nan`` when the reference values degenerate.
    """
    try:
        c_rand = random_clustering(n, k)
        l_rand = random_pathlength(n, k)
    except ValueError:
        return float("nan")
    if c_rand <= 0 or l_rand <= 0 or path_length <= 0 or not np.isfinite(path_length):
        return float("nan")
    return (clustering / c_rand) / (path_length / l_rand)


def nmw_pathlength(n: int, k: int, p: float) -> float:
    """Newman-Moore-Watts mean-field path length of a rewired lattice.

    ``L(p) ~ (n / k) * f(n k p / 2)`` with
    ``f(x) = 1/(2 sqrt(x^2 + 2x)) * artanh( sqrt(x / (x + 2)) )``
    (Newman, Moore & Watts 1999).  Valid for small p; at p=0 it reduces
    to the lattice value n/2k, and it decays logarithmically as the
    number of shortcuts grows.
    """
    if n <= 0 or k <= 0:
        raise ValueError("n and k must be positive")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")
    x = n * k * p / 2.0
    if x == 0:
        return lattice_pathlength(n, k)  # f(0+) -> 1/4, i.e. exactly n/2k
    f = 1.0 / (2.0 * np.sqrt(x * x + 2.0 * x)) * np.arctanh(np.sqrt(x / (x + 2.0)))
    return float(n / k * f * 2.0)
