"""Small-world theory (§8 future work): lattices, predictions, studies."""

from .lattice import ring_lattice, watts_strogatz, ws_rewire
from .predictions import (
    lattice_clustering,
    lattice_pathlength,
    nmw_pathlength,
    random_clustering,
    random_pathlength,
    smallworld_sigma,
)
from .study import SweepPoint, overlay_smallworldness, rewiring_sweep

__all__ = [
    "ring_lattice",
    "watts_strogatz",
    "ws_rewire",
    "lattice_clustering",
    "lattice_pathlength",
    "nmw_pathlength",
    "random_clustering",
    "random_pathlength",
    "smallworld_sigma",
    "SweepPoint",
    "overlay_smallworldness",
    "rewiring_sweep",
]
