"""The Watts-Strogatz rewiring sweep and overlay small-worldness.

Two entry points:

* :func:`rewiring_sweep` -- the classic WS experiment: sweep the
  rewiring probability p, report normalized clustering C(p)/C(0) and
  path length L(p)/L(0).  The small-world window is where L has
  collapsed but C has not.
* :func:`overlay_smallworldness` -- score a *simulated overlay graph*
  (from :meth:`OverlayNetwork.graph`) against the theory: sigma
  coefficient plus the lattice/random reference values for its (n, k).

This is the study the paper defers to future work in §8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import networkx as nx
import numpy as np

from ..metrics.analytics import AnalyticsEngine
from .lattice import watts_strogatz
from .predictions import (
    lattice_clustering,
    lattice_pathlength,
    random_clustering,
    random_pathlength,
    smallworld_sigma,
)

__all__ = ["SweepPoint", "rewiring_sweep", "overlay_smallworldness"]


@dataclass(slots=True)
class SweepPoint:
    """One p of the rewiring sweep (averages over repetitions)."""

    p: float
    clustering: float
    path_length: float
    clustering_norm: float
    path_length_norm: float


def rewiring_sweep(
    n: int = 200,
    k: int = 8,
    ps: Sequence[float] = (0.0, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0),
    reps: int = 3,
    seed: int = 0,
) -> List[SweepPoint]:
    """Run the WS sweep; returns one :class:`SweepPoint` per p."""
    rng = np.random.default_rng(seed)
    engine = AnalyticsEngine()
    base_c = base_l = None
    points: List[SweepPoint] = []
    for p in ps:
        cs, ls = [], []
        for _ in range(reps):
            g = watts_strogatz(n, k, p, rng)
            cs.append(engine.clustering_coefficient(g))
            ls.append(engine.characteristic_path_length(g))
        c, l = float(np.mean(cs)), float(np.nanmean(ls))
        if base_c is None:
            base_c, base_l = c, l
        points.append(
            SweepPoint(
                p=float(p),
                clustering=c,
                path_length=l,
                clustering_norm=c / base_c if base_c else float("nan"),
                path_length_norm=l / base_l if base_l else float("nan"),
            )
        )
    return points


def overlay_smallworldness(g: nx.Graph) -> dict:
    """Score an overlay snapshot against the small-world references.

    Returns the measured clustering/path length, the theory's lattice
    and random reference values at the overlay's (n, mean degree), and
    the sigma coefficient.
    """
    n = g.number_of_nodes()
    degrees = [d for _, d in g.degree]
    k = float(np.mean(degrees)) if degrees else 0.0
    engine = AnalyticsEngine()
    c = engine.clustering_coefficient(g)
    l = engine.characteristic_path_length(g)
    out = {
        "n": n,
        "mean_degree": k,
        "clustering": c,
        "path_length": l,
        "sigma": smallworld_sigma(c, l, n, k) if n > 1 and k > 1 else float("nan"),
    }
    k_int = max(int(round(k)), 2)
    if n > k_int:
        out["lattice_clustering"] = lattice_clustering(k_int)
        out["lattice_pathlength"] = lattice_pathlength(n, k_int)
    if n > 1 and k > 1:
        out["random_clustering"] = random_clustering(n, k)
        out["random_pathlength"] = random_pathlength(n, k)
    return out
