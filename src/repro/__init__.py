"""repro -- reproduction of "Peer-to-Peer over Ad-hoc Networks:
(Re)Configuration Algorithms" (Franciscani et al., IPDPS 2003).

The package layers, bottom-up:

* :mod:`repro.sim` -- discrete-event kernel, processes, RNG streams.
* :mod:`repro.mobility` -- random-waypoint and other mobility models.
* :mod:`repro.net` -- unit-disk radio world, packets, controlled
  broadcast, energy accounting.
* :mod:`repro.aodv` / :mod:`repro.routing` -- AODV and an ideal
  shortest-path router.
* :mod:`repro.core` -- the p2p overlay: connections, query engine,
  Zipf file placement, and the paper's four (re)configuration
  algorithms (Basic, Regular, Random, Hybrid).
* :mod:`repro.metrics` -- per-message-type counters, small-world graph
  analysis, multi-run aggregation.
* :mod:`repro.scenarios` -- Table-2 scenario configuration, builder and
  runner.
* :mod:`repro.experiments` -- one entry per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["ScenarioConfig", "run_scenario", "__version__"]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles for
    # consumers that only need the substrate layers.
    if name == "ScenarioConfig":
        from .scenarios.config import ScenarioConfig

        return ScenarioConfig
    if name == "run_scenario":
        from .scenarios.runner import run_scenario

        return run_scenario
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
