"""Command-line interface.

Examples
--------
Reproduce a paper figure at reduced scale::

    p2p-manet figure fig7 --duration 600 --reps 3

Print the paper's tables::

    p2p-manet tables

Run a single scenario and dump its summary::

    p2p-manet run --algorithm hybrid --nodes 50 --duration 600
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .experiments import (
    figure_chart,
    figure_result_to_csv,
    figure_result_to_json,
    render_checks,
    render_figure,
    render_table,
    run_figure,
    run_result_to_json,
    table1_rows,
    table2_rows,
)
from .experiments.report import render_paper_comparison
from .scenarios import ScenarioConfig, build_scenario, run_scenario

__all__ = ["main"]


def _cmd_figure(args: argparse.Namespace) -> int:
    result = run_figure(
        args.figure,
        duration=args.duration,
        reps=args.reps,
        seed=args.seed,
        routing=args.routing,
        overrides={
            "rebroadcast": args.rebroadcast,
            "query_policy": args.query_policy,
        },
    )
    if args.json:
        print(figure_result_to_json(result))
        return 0
    if args.csv:
        print(figure_result_to_csv(result), end="")
        return 0
    print(render_figure(result))
    if args.chart:
        print()
        key = "curve" if result.kind == "message_curve" else "answers"
        print(figure_chart(result, key=key))
    print()
    print(render_checks(result))
    if args.compare:
        print()
        print(render_paper_comparison(result))
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(render_table(table1_rows(), title="Table 1. Topologies and their characteristics."))
    print()
    print(render_table(table2_rows(), title="Table 2. Parameters used and their typical values."))
    return 0


#: CLI sweep parameter -> ScenarioConfig field
_SWEEP_FIELDS = {
    "nodes": "num_nodes",
    "algorithm": "algorithm",
    "mobility": "mobility",
    "routing": "routing",
}


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweeps import SweepSpec, run_sweep

    fieldname = _SWEEP_FIELDS[args.parameter]
    values = tuple(
        int(v) if args.parameter == "nodes" else v for v in args.values
    )
    base = ScenarioConfig(
        duration=args.duration,
        seed=args.seed,
        topology=args.topology,
        topology_refresh=args.topology_refresh,
        queue=args.queue,
        analytics_exec=args.analytics,
        analytics_mode=args.analytics_mode,
        rebroadcast=args.rebroadcast,
        query_policy=args.query_policy,
    )
    store = None
    if args.store:
        from .experiments import ResultStore

        store = ResultStore(args.store)
    cache = args.cache
    if cache is None and args.resume:
        if not args.store:
            print("--resume needs --cache or --store", file=sys.stderr)
            return 2
        cache = args.store + ".runs.ndjson"
    points = run_sweep(
        base,
        [SweepSpec(fieldname, values)],
        reps=args.reps,
        processes=args.processes,
        store=store,
        cache=cache,
    )
    if args.json:
        print(json.dumps([p.to_dict() for p in points], indent=2))
        return 0
    rows = []
    for value, p in zip(args.values, points):
        rows.append(
            [
                str(value),
                f"{p.totals['connect']:g}",
                f"{p.totals['ping']:g}",
                f"{p.totals['query']:g}",
                f"{p.mean_degree:.2f}",
                f"{p.answer_rate:.2f}",
                f"{p.energy:.3f}",
            ]
        )
    print(
        render_table(
            [[args.parameter, "connect", "ping", "query", "degree", "answer_rate", "energy(J)"]]
            + rows,
            title=f"sweep over {args.parameter} ({args.duration:g}s, seed {args.seed})",
        )
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments import reproduce_all

    cache = args.cache
    if cache is None and args.resume:
        # Default resume archive lives next to the artifacts.
        os.makedirs(args.out, exist_ok=True)
        cache = os.path.join(args.out, "runs.ndjson")
    reproduce_all(
        args.out,
        figures=args.figures,
        duration=args.duration,
        reps=args.reps,
        seed=args.seed,
        progress=print,
        processes=args.processes,
        cache=cache,
    )
    print(f"artifacts written to {args.out}/")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from .net.render import render_overlay_summary, render_world

    s = build_scenario(
        ScenarioConfig(
            num_nodes=args.nodes,
            duration=args.duration,
            algorithm=args.algorithm,
            seed=args.seed,
            topology=args.topology,
            topology_refresh=args.topology_refresh,
            queue=args.queue,
        )
    )
    s.run()
    members = set(s.members)
    print(
        render_world(
            s.world,
            label=lambda i: str(i % 10) if i in members else ".",
        )
    )
    print("\noverlay (members only; '.' nodes are ad-hoc relays):")
    print(render_overlay_summary(s.overlay))
    return 0


def _render_run_stats(res) -> str:
    """Wall-clock breakdown + counter table, registry-sourced."""
    lines = ["wall-clock breakdown:"]
    lines.append(f"  {'section':<28} {'seconds':>10} {'calls':>8}")
    for section, (seconds, calls) in sorted(
        res.wall.items(), key=lambda kv: -kv[1][0]
    ):
        lines.append(f"  {section:<28} {seconds:>10.4f} {calls:>8}")
    lines.append("")
    lines.append("counters (per-node labels folded):")
    lines.append(f"  {'metric':<44} {'value':>12}")
    for key, value in sorted(res.counters.items()):
        shown = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {key:<44} {shown:>12}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = ScenarioConfig(
        num_nodes=args.nodes,
        duration=args.duration,
        algorithm=args.algorithm,
        routing=args.routing,
        seed=args.seed,
        topology=args.topology,
        topology_refresh=args.topology_refresh,
        obs_interval=args.obs_interval,
        queue=args.queue,
        analytics_exec=args.analytics,
        analytics_mode=args.analytics_mode,
        analytics_processes=args.processes,
        rebroadcast=args.rebroadcast,
        query_policy=args.query_policy,
    )
    res = run_scenario(cfg)
    if args.store:
        from .experiments import ResultStore

        ResultStore(args.store).append_run(res, source="cli.run")
    if args.json:
        print(run_result_to_json(res))
        return 0
    print(f"scenario: {args.algorithm}, {args.nodes} nodes, {args.duration:g}s (seed {args.seed})")
    print(f"events dispatched: {res.events}")
    print(f"received totals:  {res.totals}")
    print(f"queries issued:   {res.num_queries}")
    print(
        "overlay: "
        + ", ".join(f"{k}={v:.3f}" for k, v in res.overlay_stats.items())
    )
    print(f"energy consumed:  {res.energy.sum():.4f} J")
    if args.stats:
        print()
        print(_render_run_stats(res))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print one archived run from a ResultStore path."""
    from .experiments import ResultStore
    from .scenarios.runner import RunResult

    store = ResultStore(args.store)
    records = store.load(kind="run")
    if not records:
        print(f"no archived runs in {args.store}", file=sys.stderr)
        return 1
    try:
        record = records[args.index]
    except IndexError:
        print(
            f"run index {args.index} out of range ({len(records)} archived)",
            file=sys.stderr,
        )
        return 1
    payload = record["payload"]
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    res = RunResult.from_dict(payload)
    cfg = res.config
    print(
        f"run: {cfg.algorithm}, {cfg.num_nodes} nodes, {cfg.duration:g}s "
        f"(seed {cfg.seed}, routing {cfg.routing})"
    )
    if res.manifest is not None:
        m = res.manifest
        rev = (m.git_rev or "unknown")[:12]
        print(
            f"provenance: config {m.config_sha256[:12]}, rev {rev}, "
            f"python {m.python}, wall {m.wall_seconds:.2f}s"
        )
    print(f"events dispatched: {res.events}")
    print(f"received totals:  {res.totals}")
    print(f"queries issued:   {res.num_queries}")
    print(f"energy consumed:  {res.energy.sum():.4f} J")
    if res.timeseries:
        print(f"timeseries rows:  {len(res.timeseries)}")
    if res.wall or res.counters:
        print()
        print(_render_run_stats(res))
    return 0


def _add_processes_arg(parser: argparse.ArgumentParser, what: str) -> None:
    """The one ``--processes`` knob (shared semantics, see repro.parallel)."""
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help=f"worker processes for {what} (default: all cores)",
    )


def _add_analytics_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analytics",
        choices=("serial", "parallel"),
        default="serial",
        help="analytics execution lane: serial (default) or BFS sharded "
        "over worker processes (exactly equal results)",
    )
    parser.add_argument(
        "--analytics-mode",
        choices=("incremental", "full"),
        default="incremental",
        help="analytics maintenance lane: epoch-keyed incremental deltas "
        "(default) or the stateless full-recompute reference lane "
        "(exactly equal results)",
    )


def _add_policy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rebroadcast",
        default="flood",
        metavar="POLICY",
        help="broadcast-plane rebroadcast policy: flood (reference, "
        "default), probabilistic[:p] (gossip-p, degree-adaptive floor), "
        "counter[:c] (cancel after c duplicate overhears) or contact "
        "(flood + CARD contact harvesting)",
    )
    parser.add_argument(
        "--query-policy",
        choices=("flood", "contact"),
        default="flood",
        help="query-plane policy: flood (reference Gnutella flood, "
        "default) or contact (route to known holders first, "
        "scoped-flood fallback)",
    )


def _add_cache_args(parser: argparse.ArgumentParser, default_hint: str) -> None:
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="content-addressed RunCache archive (ndjson): completed runs "
        "are memoized there and any run requested again -- same config "
        "and seed, byte-identical results -- is an O(1) lookup instead "
        "of a simulation",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"shorthand for --cache {default_hint}: re-running after an "
        "interruption picks up where it died",
    )


def _add_topology_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        choices=("dense", "sparse", "auto"),
        default="auto",
        help="physical-topology backend (auto: sparse at large n)",
    )
    parser.add_argument(
        "--topology-refresh",
        choices=("predictive", "delta", "full"),
        default="predictive",
        help="snapshot refresh lane: predictive kinetic horizons "
        "(default), incremental delta diffing, or the full-rebuild "
        "reference lane (all bit-identical)",
    )
    parser.add_argument(
        "--queue",
        choices=("calendar", "heap"),
        default="calendar",
        help="kernel event queue: calendar (O(1)-amortized, default) or "
        "the binary-heap reference lane (bit-identical dispatch order)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p2p-manet",
        description="Reproduction of 'P2P over Ad-hoc Networks: (Re)Configuration Algorithms' (IPDPS'03)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="reproduce a paper figure (fig5..fig12)")
    fig.add_argument("figure", choices=[f"fig{i}" for i in range(5, 13)])
    fig.add_argument("--duration", type=float, default=600.0, help="seconds per run")
    fig.add_argument("--reps", type=int, default=3, help="repetitions (paper: 33)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--routing", choices=("aodv", "dsdv", "dsr", "oracle"), default="aodv"
    )
    fig.add_argument("--json", action="store_true", help="emit JSON instead of text")
    fig.add_argument("--csv", action="store_true", help="emit long-format CSV")
    fig.add_argument("--chart", action="store_true", help="add an ASCII chart")
    fig.add_argument(
        "--compare", action="store_true", help="compare against the paper's claims"
    )
    _add_policy_args(fig)
    fig.set_defaults(func=_cmd_figure)

    world = sub.add_parser("map", help="render the world + overlay as ASCII")
    world.add_argument("--nodes", type=int, default=50)
    world.add_argument("--duration", type=float, default=300.0)
    world.add_argument(
        "--algorithm", choices=("basic", "regular", "random", "hybrid"), default="regular"
    )
    world.add_argument("--seed", type=int, default=0)
    _add_topology_arg(world)
    world.set_defaults(func=_cmd_map)

    tab = sub.add_parser("tables", help="print Tables 1 and 2")
    tab.set_defaults(func=_cmd_tables)

    run = sub.add_parser("run", help="run one scenario and print a summary")
    run.add_argument("--nodes", type=int, default=50)
    run.add_argument("--duration", type=float, default=600.0)
    run.add_argument(
        "--algorithm", choices=("basic", "regular", "random", "hybrid"), default="regular"
    )
    run.add_argument(
        "--routing", choices=("aodv", "dsdv", "dsr", "oracle"), default="aodv"
    )
    run.add_argument("--seed", type=int, default=0)
    _add_topology_arg(run)
    _add_analytics_args(run)
    _add_policy_args(run)
    _add_processes_arg(run, "the parallel analytics lane")
    run.add_argument("--json", action="store_true", help="emit the full RunResult as JSON")
    run.add_argument(
        "--stats",
        action="store_true",
        help="print the wall-clock breakdown and registry counter table",
    )
    run.add_argument(
        "--obs-interval",
        type=float,
        default=0.0,
        help="sample the metrics registry every N sim-seconds (0: off)",
    )
    run.add_argument("--store", default=None, help="append the run to this ResultStore")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="sweep one parameter across values, one scenario per value"
    )
    sweep.add_argument(
        "parameter", choices=("nodes", "algorithm", "mobility", "routing")
    )
    sweep.add_argument("values", nargs="+", help="values to sweep over")
    sweep.add_argument("--duration", type=float, default=300.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--reps", type=int, default=1, help="repetitions per point")
    _add_topology_arg(sweep)
    _add_analytics_args(sweep)
    _add_policy_args(sweep)
    _add_processes_arg(sweep, "grid points (one simulation each)")
    sweep.add_argument("--json", action="store_true", help="emit point results as JSON")
    sweep.add_argument(
        "--store", default=None, help="append point results to this ResultStore"
    )
    _add_cache_args(sweep, "<store>.runs.ndjson")
    sweep.set_defaults(func=_cmd_sweep)

    stats = sub.add_parser(
        "stats", help="pretty-print an archived run from a ResultStore file"
    )
    stats.add_argument("store", help="path to a ResultStore ndjson archive")
    stats.add_argument(
        "--index",
        type=int,
        default=-1,
        help="which archived run (insertion order; default: latest)",
    )
    stats.add_argument("--json", action="store_true", help="dump the raw payload")
    stats.set_defaults(func=_cmd_stats)

    rep = sub.add_parser(
        "reproduce", help="run the whole evaluation, write artifacts to a directory"
    )
    rep.add_argument("--out", default="results", help="output directory")
    rep.add_argument(
        "--figures", nargs="*", default=None, help="subset (default: fig5..fig12)"
    )
    rep.add_argument("--duration", type=float, default=None, help="override seconds/run")
    rep.add_argument("--reps", type=int, default=None, help="override repetitions")
    rep.add_argument("--seed", type=int, default=0)
    _add_processes_arg(rep, "the deduplicated run batch")
    _add_cache_args(rep, "<out>/runs.ndjson")
    rep.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
