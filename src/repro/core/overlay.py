"""Overlay network manager: builds and wires all servents.

One :class:`OverlayNetwork` owns the p2p side of a simulation: it
creates a flood plane on *every* ad-hoc node (non-members still forward
discovery broadcasts -- they are part of the ad-hoc network), a servent
with the chosen (re)configuration algorithm on each *member*, places
files by the Zipf law, and dispatches routed p2p messages to the right
servent.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..net.broadcast import FloodManager
from ..net.radio import Channel
from ..net.suppression import (
    QUERY_POLICY_KINDS,
    ContactPolicy,
    make_rebroadcast_policy,
    parse_policy_spec,
)
from ..net.world import World
from ..obs.registry import Registry
from ..routing.base import Router
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .algorithms import HybridAlgorithm, make_algorithm
from .config import P2pConfig
from .files import FileStore, place_files
from .messages import P2pMessage
from .query import QueryConfig
from .servent import P2P_KIND, Servent

__all__ = ["OverlayNetwork", "FLOOD_KIND"]

#: frame kind of the p2p discovery flood plane
FLOOD_KIND = "p2p.flood"


class OverlayNetwork:
    """All p2p members of one simulation plus their shared wiring.

    Parameters
    ----------
    sim, world, channel, router:
        The substrate stack.
    members:
        Node ids participating in the p2p network (the paper uses 75 %
        of all nodes).
    algorithm:
        One of ``"basic" | "regular" | "random" | "hybrid"``.
    config, query_config:
        Protocol constants.
    num_files, max_freq:
        Zipf file universe (Table 2: 20 files, 40 %).
    rng:
        Registry for deterministic per-subsystem streams.
    qualifiers:
        Hybrid only: node id -> qualifier.  Defaults to U(0, 1) draws.
    count_received:
        Metrics hook ``(nid, family)`` shared by all servents.
    registry:
        Observability registry shared by the flood planes and servents;
        defaults to the channel's registry.
    rebroadcast:
        Rebroadcast-policy spec for the discovery flood plane
        (``"flood" | "probabilistic[:p]" | "counter[:c]" | "contact"``,
        see :mod:`repro.net.suppression`).  ``"flood"`` keeps the
        historical always-forward behaviour bit-identically.
    query_policy:
        Query-plane policy: ``"flood"`` (reference Gnutella flood) or
        ``"contact"`` (route to known holders first, scoped-flood
        fallback).
    """

    def __init__(
        self,
        sim: Simulator,
        world: World,
        channel: Channel,
        router: Router,
        *,
        members: Sequence[int],
        algorithm: str,
        config: Optional[P2pConfig] = None,
        query_config: Optional[QueryConfig] = None,
        num_files: int = 20,
        max_freq: float = 0.4,
        rng: Optional[RngRegistry] = None,
        qualifiers: Optional[Dict[int, float]] = None,
        count_received: Optional[Callable[[int, str], None]] = None,
        lifetime_log=None,
        registry: Optional[Registry] = None,
        rebroadcast: str = "flood",
        query_policy: str = "flood",
    ) -> None:
        self.sim = sim
        self.world = world
        self.channel = channel
        self.router = router
        self.algorithm_name = algorithm
        self.cfg = config if config is not None else P2pConfig()
        self.query_cfg = query_config if query_config is not None else QueryConfig()
        self.rng = rng if rng is not None else RngRegistry(0)
        self.members: List[int] = sorted(int(m) for m in members)
        if not self.members:
            raise ValueError("overlay needs at least one member")
        if max(self.members) >= world.n or min(self.members) < 0:
            raise ValueError("member ids must be valid node ids")

        if registry is None:
            registry = getattr(channel, "registry", None)
        self.registry = registry if registry is not None else Registry()

        spec = parse_policy_spec(rebroadcast)
        self.rebroadcast = str(spec)
        if query_policy not in QUERY_POLICY_KINDS:
            raise ValueError(
                f"unknown query policy {query_policy!r} (choose from {QUERY_POLICY_KINDS})"
            )
        self.query_policy = query_policy

        # Flood plane on every node; non-members forward but don't listen.
        # One suppression policy per node decides its rebroadcasts; the
        # rng stream and degree view are created lazily so the reference
        # lane touches neither.
        self.flood_policies = [
            make_rebroadcast_policy(
                spec,
                plane=FLOOD_KIND,
                node=node.nid,
                registry=self.registry,
                sim=sim,
                rng_factory=(
                    lambda nid=node.nid: self.rng.stream(
                        f"suppression.{FLOOD_KIND}.{nid}"
                    )
                ),
                degree=(lambda nid=node.nid: len(world.neighbors(nid))),
            )
            for node in channel.nodes
        ]
        self.floods: List[FloodManager] = [
            FloodManager(
                node,
                channel,
                FLOOD_KIND,
                registry=self.registry,
                policy=self.flood_policies[node.nid],
            )
            for node in channel.nodes
        ]

        holdings = place_files(
            self.members, num_files, max_freq, self.rng.stream("files")
        )

        if qualifiers is None:
            qstream = self.rng.stream("qualifiers")
            qualifiers = {m: float(qstream.uniform(0.0, 1.0)) for m in self.members}
        self.qualifiers = qualifiers

        self.servents: Dict[int, Servent] = {}
        for m in self.members:
            qpolicy = None
            if query_policy == "contact":
                # Share the member's flood-plane contact table when the
                # broadcast plane harvests one too; otherwise the query
                # plane keeps its own (fed by query answers only).
                flood_policy = self.flood_policies[m]
                qpolicy = (
                    flood_policy
                    if isinstance(flood_policy, ContactPolicy)
                    else ContactPolicy(
                        registry=self.registry, plane="p2p.query", node=m
                    )
                )
            servent = Servent(
                m,
                sim,
                world,
                router,
                self.floods[m],
                config=self.cfg,
                query_config=self.query_cfg,
                store=FileStore(m, holdings[m]),
                num_files=num_files,
                rng=self.rng.stream(f"p2p.node.{m}"),
                count_received=count_received,
                lifetime_log=lifetime_log,
                registry=self.registry,
                query_policy=qpolicy,
            )
            alg = make_algorithm(
                algorithm,
                servent,
                self.cfg,
                self.rng.stream(f"alg.node.{m}"),
                qualifier=self.qualifiers.get(m, 1.0),
            )
            servent.attach_algorithm(alg)
            self.servents[m] = servent

        router.register(P2P_KIND, self._dispatch)

    # ------------------------------------------------------------------
    def _dispatch(self, dst: int, src: int, payload: P2pMessage, hops: int) -> None:
        servent = self.servents.get(dst)
        if servent is not None:
            servent.on_p2p(src, payload, hops)

    # ------------------------------------------------------------------
    def start(self, *, queries: bool = True) -> None:
        """Start every servent's algorithm (and query loop)."""
        for servent in self.servents.values():
            servent.start(queries=queries)

    def stop(self) -> None:
        for servent in self.servents.values():
            servent.stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def servent(self, nid: int) -> Servent:
        return self.servents[nid]

    def graph(self) -> nx.Graph:
        """Undirected snapshot of the current overlay references.

        An edge exists if either endpoint references the other; Hybrid
        master-slave links are included.  Every member appears as a node
        even when isolated.
        """
        g = nx.Graph()
        g.add_nodes_from(self.members)
        for servent in self.servents.values():
            for conn in servent.connections:
                g.add_edge(servent.nid, conn.peer, random=conn.random)
            alg = servent.algorithm
            if isinstance(alg, HybridAlgorithm):
                for conn in alg.slaves:
                    g.add_edge(servent.nid, conn.peer, slave=True)
        return g

    def connection_counts(self) -> Dict[int, int]:
        """Member -> current number of references held."""
        return {m: s.connections.count for m, s in self.servents.items()}

    def open_connections(self) -> int:
        """Total references currently held across all members."""
        return sum(s.connections.count for s in self.servents.values())

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        out = {
            "members": len(self.members),
            "open_connections": self.open_connections(),
            "flood_originated": sum(f._c_originated.value for f in self.floods),
            "flood_forwarded": sum(f._c_forwarded.value for f in self.floods),
            "flood_duplicates": sum(f._c_duplicates.value for f in self.floods),
        }
        if self.rebroadcast != "flood":
            out["flood_suppressed"] = sum(
                p.stats().get("suppressed", 0.0) for p in self.flood_policies
            )
        if self.query_policy == "contact":
            qstats = [
                s.query_engine.policy.stats()
                for s in self.servents.values()
                if s.query_engine.policy is not None
            ]
            out["card_contact_hits"] = sum(s["contact_hits"] for s in qstats)
            out["card_fallback_floods"] = sum(s["fallback_floods"] for s in qstats)
        return out

    def query_records(self):
        """All finished QueryRecords across members (metrics harvest)."""
        out = []
        for servent in self.servents.values():
            out.extend(servent.query_engine.records)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<OverlayNetwork alg={self.algorithm_name} members={len(self.members)}>"
        )
