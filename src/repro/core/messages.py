"""P2P overlay message types.

Every message carries a ``FAMILY`` class attribute naming the traffic
family the paper's metrics group it under:

* ``"connect"`` -- discovery floods, three-way-handshake legs, and the
  Hybrid algorithm's capture/slave messages (all messages whose purpose
  is establishing references);
* ``"ping"`` -- keep-alive pings and pongs;
* ``"query"`` -- Gnutella-style queries and query hits.

Sizes (bytes) are nominal wire sizes used for energy accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = [
    "P2pMessage",
    "Discover",
    "DiscoverReply",
    "ConnectOffer",
    "ConnectAccept",
    "ConnectConfirm",
    "Ping",
    "Pong",
    "Capture",
    "SlaveRequest",
    "SlaveAccept",
    "SlaveConfirm",
    "Query",
    "QueryHit",
    "FileRequest",
    "FileData",
]

_qid = itertools.count()


class P2pMessage:
    """Base class; concrete messages define FAMILY and SIZE."""

    FAMILY = "other"
    SIZE = 32


# ----------------------------------------------------------------------
# connection establishment (decentralized algorithms)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Discover(P2pMessage):
    """Flooded "I am looking for connections" announcement.

    Attributes
    ----------
    seeker:
        Node looking for connections.
    want_random:
        True when this discovery seeks the Random algorithm's long-range
        connection (responders are collected and the farthest wins).
    masters_only:
        Hybrid: only masters may respond (master-to-master discovery).
    basic:
        True for the Basic algorithm (responders reply unconditionally
        and the connection is an asymmetric reference, no handshake).
    """

    FAMILY = "connect"
    SIZE = 48

    seeker: int
    want_random: bool = False
    masters_only: bool = False
    basic: bool = False


@dataclass(slots=True)
class DiscoverReply(P2pMessage):
    """Basic algorithm's reply: "I heard you" (no handshake follows)."""

    FAMILY = "connect"
    SIZE = 32

    responder: int


@dataclass(slots=True)
class ConnectOffer(P2pMessage):
    """Handshake leg 1 (responder -> seeker): willing to connect.

    ``hops_seen`` is the ad-hoc hop count at which the responder heard
    the discovery flood -- the seeker uses it to pick the *farthest*
    offer for random connections.
    ``random`` echoes the discovery's ``want_random``.
    """

    FAMILY = "connect"
    SIZE = 32

    responder: int
    hops_seen: int
    random: bool = False


@dataclass(slots=True)
class ConnectAccept(P2pMessage):
    """Handshake leg 2 (seeker -> responder): offer accepted."""

    FAMILY = "connect"
    SIZE = 24

    seeker: int
    random: bool = False


@dataclass(slots=True)
class ConnectConfirm(P2pMessage):
    """Handshake leg 3 (responder -> seeker): connection is live."""

    FAMILY = "connect"
    SIZE = 24

    responder: int
    random: bool = False


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Ping(P2pMessage):
    """Keep-alive probe along an overlay connection."""

    FAMILY = "ping"
    SIZE = 16

    sender: int


@dataclass(slots=True)
class Pong(P2pMessage):
    """Keep-alive answer."""

    FAMILY = "ping"
    SIZE = 16

    sender: int


# ----------------------------------------------------------------------
# Hybrid algorithm
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Capture(P2pMessage):
    """Hybrid's flooded presence/capture message carrying the qualifier."""

    FAMILY = "connect"
    SIZE = 40

    sender: int
    qualifier: float


@dataclass(slots=True)
class SlaveRequest(P2pMessage):
    """Slave handshake leg 1 (candidate slave -> master candidate)."""

    FAMILY = "connect"
    SIZE = 32

    sender: int
    qualifier: float


@dataclass(slots=True)
class SlaveAccept(P2pMessage):
    """Slave handshake leg 2 (master -> slave)."""

    FAMILY = "connect"
    SIZE = 24

    sender: int


@dataclass(slots=True)
class SlaveConfirm(P2pMessage):
    """Slave handshake leg 3 (slave -> master): enslavement final."""

    FAMILY = "connect"
    SIZE = 24

    sender: int


# ----------------------------------------------------------------------
# query plane (Gnutella-like)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Query(P2pMessage):
    """A file search, forwarded across overlay connections with a TTL.

    ``p2p_hops`` counts overlay hops travelled so far (0 when leaving
    the requirer).  ``qid`` is globally unique.
    """

    FAMILY = "query"
    SIZE = 80

    requirer: int
    file_id: int
    ttl: int
    p2p_hops: int = 0
    qid: int = field(default_factory=lambda: next(_qid))


@dataclass(slots=True)
class QueryHit(P2pMessage):
    """Direct response from a file holder to the requirer.

    ``p2p_hops`` is the overlay distance at which the holder received
    the query (the paper's minimum-distance metric).
    """

    FAMILY = "query"
    SIZE = 80

    holder: int
    file_id: int
    qid: int
    p2p_hops: int


# ----------------------------------------------------------------------
# file transfer ("the file properly said, which is transferred directly
# between the peers" -- §2's Gnutella description)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FileRequest(P2pMessage):
    """Direct download request from the requirer to a chosen holder."""

    FAMILY = "transfer"
    SIZE = 48

    requirer: int
    file_id: int
    qid: int


@dataclass(slots=True)
class FileData(P2pMessage):
    """The file content (bulky: dominates energy when transfers are on)."""

    FAMILY = "transfer"
    SIZE = 4096

    holder: int
    file_id: int
    qid: int
