"""Gnutella-like query engine (§7.2 of the paper).

A node sends a query for a file to all of its overlay neighbours.  Each
receiver processes and forwards it under three traffic-control rules:

1. a node forwards / responds to a given query only once,
2. a query is never forwarded back to the neighbour it came from,
3. a query is never forwarded to its original source.

A holder of the requested file sends a :class:`QueryHit` *directly* to
the requirer (unicast over the ad-hoc network).  Queries carry a TTL in
p2p hops (Table 2: 6).  After issuing a query the requirer collects
answers for ``response_wait`` seconds (30 s), then waits a uniform
15-45 s before the next query.

The engine is written against the narrow servent surface (neighbours /
send / store) so it can be unit-tested over a fake overlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..sim.process import Process
from .messages import FileData, FileRequest, Query, QueryHit

__all__ = ["QueryConfig", "QueryRecord", "QueryEngine"]


@dataclass(frozen=True)
class QueryConfig:
    """Query-plane parameters (defaults from Table 2 / §7.2)."""

    ttl: int = 6
    response_wait: float = 30.0
    gap_min: float = 15.0
    gap_max: float = 45.0
    #: how requirers pick the file to search: "uniform" over all files
    #: or "zipf" (popular files searched proportionally more often)
    target: str = "uniform"
    #: delay before a node issues its first query (lets the overlay form)
    warmup: float = 60.0
    #: when True, an answered query is followed by a direct download
    #: from the nearest holder, and the file replicates onto the
    #: requirer (Gnutella's transfer phase; changes file availability
    #: over time)
    download: bool = False

    def __post_init__(self) -> None:
        if self.ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {self.ttl}")
        if self.target not in ("uniform", "zipf"):
            raise ValueError(f"unknown target policy {self.target!r}")
        if self.gap_min > self.gap_max:
            raise ValueError("gap_min must be <= gap_max")


@dataclass(slots=True)
class QueryRecord:
    """Outcome of one issued query (one point of Figures 5/6 data)."""

    requirer: int
    file_id: int
    qid: int
    issued_at: float
    #: (holder, p2p_hops, adhoc_hops) per answer
    answers: List[Tuple[int, int, int]] = field(default_factory=list)
    closed: bool = False

    @property
    def answered(self) -> bool:
        return bool(self.answers)

    @property
    def min_p2p_hops(self) -> Optional[int]:
        return min(a[1] for a in self.answers) if self.answers else None

    @property
    def min_adhoc_hops(self) -> Optional[int]:
        hops = [a[2] for a in self.answers if a[2] >= 0]
        return min(hops) if hops else None


class QueryEngine:
    """Per-servent query issue/forward/answer logic.

    When a :class:`~repro.net.suppression.ContactPolicy` is attached
    (``ScenarioConfig.query_policy = "contact"``), the engine routes a
    query *directly* to holders it learned from earlier answers and
    only falls back to the reference TTL-scoped flood when no answer
    arrives within the policy's ``fallback_wait``; with no policy the
    behaviour is bit-identical to the paper's Gnutella flood.
    """

    def __init__(
        self,
        servent,
        config: QueryConfig,
        rng: np.random.Generator,
        *,
        policy=None,
    ) -> None:
        self.servent = servent
        self.cfg = config
        self.rng = rng
        #: optional ContactPolicy (duck-typed; None = reference flood)
        self.policy = policy
        self._seen: Set[int] = set()
        self._open: Dict[int, QueryRecord] = {}
        #: finished QueryRecords (harvested by the metrics layer)
        self.records: List[QueryRecord] = []
        self._proc: Optional[Process] = None
        #: files successfully downloaded (transfer plane)
        self.downloads: List[int] = []
        #: transfers served to other peers
        self.uploads: List[int] = []

    # ------------------------------------------------------------------
    # issuing
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic query loop (idempotent)."""
        if self._proc is None:
            self._proc = Process(
                self.servent.sim, self._loop(), name=f"query[{self.servent.nid}]"
            )

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        # Spread first queries out so requirers don't synchronize.
        yield float(self.rng.uniform(0.5, 1.0)) * self.cfg.warmup
        while True:
            issued = self.issue_query()
            if issued is not None:
                yield self.cfg.response_wait
                self._close(issued)
            yield float(self.rng.uniform(self.cfg.gap_min, self.cfg.gap_max))

    def _pick_file(self) -> int:
        num = self.servent.num_files
        if self.cfg.target == "uniform":
            return int(self.rng.integers(1, num + 1))
        # zipf: popularity-proportional search (weight 1/rank)
        ranks = np.arange(1, num + 1, dtype=float)
        w = 1.0 / ranks
        return int(self.rng.choice(ranks, p=w / w.sum()))

    def issue_query(self, file_id: Optional[int] = None) -> Optional[QueryRecord]:
        """Send one query to all overlay neighbours; None if no neighbours."""
        neighbors = self.servent.overlay_neighbors()
        if not neighbors:
            return None
        fid = file_id if file_id is not None else self._pick_file()
        q = Query(requirer=self.servent.nid, file_id=fid, ttl=self.cfg.ttl, p2p_hops=0)
        record = QueryRecord(
            requirer=self.servent.nid,
            file_id=fid,
            qid=q.qid,
            issued_at=self.servent.sim.now,
        )
        self._open[q.qid] = record
        self._seen.add(q.qid)  # never answer/forward our own query
        if self.policy is not None:
            contacts = [h for h in self.policy.contacts_for(fid) if h != self.servent.nid]
            if contacts:
                # Contact route: a couple of TTL-1 unicasts instead of a
                # network-wide flood; receivers dedup on the same qid, so
                # a later fallback flood can never double-answer.
                self.policy.count_contact_hit()
                direct = Query(
                    requirer=self.servent.nid, file_id=fid, ttl=1, p2p_hops=0, qid=q.qid
                )
                for holder in contacts:
                    self.servent.send(holder, direct)
                # The fallback must fire inside the response window or a
                # stale-contact miss can never be recovered.
                wait = min(self.policy.fallback_wait, 0.5 * self.cfg.response_wait)
                self.servent.sim.schedule(wait, self._fallback_flood, record)
                return record
        for peer in neighbors:
            self.servent.send(peer, q)
        return record

    def _fallback_flood(self, record: QueryRecord) -> None:
        """Contact route missed: fall back to the reference scoped flood."""
        if record.closed or record.answers:
            return
        self.policy.count_fallback()
        self.policy.forget(record.file_id)  # the bindings were stale
        fwd = Query(
            requirer=record.requirer,
            file_id=record.file_id,
            ttl=self.cfg.ttl,
            p2p_hops=0,
            qid=record.qid,
        )
        for peer in self.servent.overlay_neighbors():
            self.servent.send(peer, fwd)

    def _close(self, record: QueryRecord) -> None:
        record.closed = True
        self._open.pop(record.qid, None)
        self.records.append(record)
        if self.cfg.download and record.answers and not self.servent.store.has(
            record.file_id
        ):
            # Download from the closest holder (ties: lowest id).
            holder = min(record.answers, key=lambda a: (a[1], a[0]))[0]
            self.servent.send(
                holder,
                FileRequest(
                    requirer=self.servent.nid, file_id=record.file_id, qid=record.qid
                ),
            )

    # ------------------------------------------------------------------
    # transfer plane (optional; Gnutella's direct file exchange)
    # ------------------------------------------------------------------
    def on_file_request(self, src: int, req: FileRequest) -> None:
        """Serve a download if we still hold the file."""
        if self.servent.store.has(req.file_id):
            self.uploads.append(req.file_id)
            self.servent.send(
                src,
                FileData(holder=self.servent.nid, file_id=req.file_id, qid=req.qid),
            )

    def on_file_data(self, src: int, data: FileData) -> None:
        """A download completed: the file replicates onto this node."""
        if not self.servent.store.has(data.file_id):
            self.servent.store.add(data.file_id)
            self.downloads.append(data.file_id)
        if self.policy is not None:
            self.policy.learn_holder(data.file_id, data.holder)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_query(self, src: int, q: Query) -> None:
        """Handle a query copy arriving from overlay neighbour ``src``."""
        if q.qid in self._seen:
            return  # rule 1: process/forward once
        self._seen.add(q.qid)
        if self.policy is not None:
            self.policy.observe_query(q.requirer, q.file_id, q.p2p_hops + 1)
        arrived = Query(
            requirer=q.requirer,
            file_id=q.file_id,
            ttl=q.ttl,
            p2p_hops=q.p2p_hops + 1,
            qid=q.qid,
        )
        if self.servent.store.has(q.file_id):
            hit = QueryHit(
                holder=self.servent.nid,
                file_id=q.file_id,
                qid=q.qid,
                p2p_hops=arrived.p2p_hops,
            )
            self.servent.send(q.requirer, hit)
        # Forward even when we hold the file (§7.2).
        if arrived.ttl > 1:
            fwd = Query(
                requirer=q.requirer,
                file_id=q.file_id,
                ttl=arrived.ttl - 1,
                p2p_hops=arrived.p2p_hops,
                qid=q.qid,
            )
            for peer in self.servent.overlay_neighbors():
                if peer != src and peer != q.requirer:  # rules 2 and 3
                    self.servent.send(peer, fwd)

    def on_hit(self, src: int, hit: QueryHit) -> None:
        """Record an answer to one of our open queries."""
        if self.policy is not None:
            self.policy.learn_holder(hit.file_id, hit.holder)
        record = self._open.get(hit.qid)
        if record is None:
            return  # late answer after the 30 s window: discarded
        adhoc = self.servent.adhoc_distance(hit.holder)
        record.answers.append((hit.holder, hit.p2p_hops, adhoc))
