"""The Regular (re)configuration algorithm (§6.1.3, Figure 2).

Its four improvements over Basic, all implemented here:

1. **Expanding ring** -- discovery broadcasts start at
   ``NHOPS_INITIAL`` and grow by 2 up to ``MAXNHOPS``
   (``nhops = (nhops + 2) mod (MAXNHOPS + 2)``; the 0 value marks a
   completed cycle);
2. **Distance-bounded connections** -- a maintained connection is closed
   once the peer is farther than ``MAXDIST`` ad-hoc hops, keeping
   ping/pong traffic local;
3. **Symmetric connections via three-way handshake** -- the willing
   responder offers, the seeker accepts, the responder confirms; only
   the *seeker* (initiator) pings afterwards, halving ping traffic;
4. **Exponential retry back-off** -- after a whole nhops cycle without
   filling MAXNCONN, the retry timer doubles (up to ``MAXTIMER``) and is
   reset to ``TIMER_INITIAL`` whenever a connection is established.
"""

from __future__ import annotations

from typing import Dict

from ..connection import Connection
from ..messages import (
    ConnectAccept,
    ConnectConfirm,
    ConnectOffer,
    Discover,
    P2pMessage,
)
from .base import ReconfigAlgorithm

__all__ = ["RegularAlgorithm"]


class RegularAlgorithm(ReconfigAlgorithm):
    """Expanding-ring, symmetric-handshake reconfiguration."""

    name = "regular"

    def __init__(self, servent, config, rng) -> None:
        super().__init__(servent, config, rng)
        self.nhops = config.nhops_initial
        self.timer = config.timer_initial
        # seeker-side pending handshakes: responder -> accept-sent time
        self._pending: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # establishment (Figure 2, "A Regular: Establishing connections")
    # ------------------------------------------------------------------
    def _establish_loop(self):
        cfg = self.cfg
        servent = self.servent
        yield float(self.rng.uniform(0.0, cfg.timer_initial))
        while True:
            if servent.connections.count < self._target_connections():
                if self.nhops != 0:
                    self._send_discovery()
                    self._advance_nhops()
                    yield self.timer
                else:
                    self.timer = min(self.timer * 2, cfg.max_timer)
                    self._advance_nhops()
            else:
                # At capacity: idle until a maintenance close frees a slot.
                yield cfg.timer_initial

    def _target_connections(self) -> int:
        """How many connections establishment aims for (Random overrides)."""
        return self.cfg.max_connections

    def _send_discovery(self) -> None:
        self.servent.flood(self._make_discover(), self.nhops)

    def _make_discover(self) -> Discover:
        return Discover(seeker=self.servent.nid)

    def _advance_nhops(self) -> None:
        self.nhops = (self.nhops + 2) % (self.cfg.max_nhops + 2)

    def _on_connected(self) -> None:
        """A connection was established: reset the back-off (§6.1.3)."""
        self.timer = self.cfg.timer_initial

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def _willing(self, origin: int, msg: Discover) -> bool:
        """Whether this node answers a discovery with an offer."""
        table = self.servent.connections
        return (
            not msg.basic
            and not msg.masters_only
            and not table.is_full
            and not table.has(origin)
        )

    def on_discovery(self, origin: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, Discover) and self._willing(origin, msg):
            self.servent.send(
                origin,
                ConnectOffer(
                    responder=self.servent.nid, hops_seen=hops, random=msg.want_random
                ),
            )

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def on_message(self, src: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, ConnectOffer):
            self._on_offer(src, msg)
        elif isinstance(msg, ConnectAccept):
            self._on_accept(src, msg)
        elif isinstance(msg, ConnectConfirm):
            self._on_confirm(src, msg)

    def _accepts_offer(self, src: int, offer: ConnectOffer) -> bool:
        table = self.servent.connections
        return (
            not offer.random
            and table.count + len(self._pending) < self._target_connections()
            and not table.has(src)
            and src not in self._pending
        )

    def _on_offer(self, src: int, offer: ConnectOffer) -> None:
        if self._accepts_offer(src, offer):
            self._accept(src, random=offer.random)

    def _accept(self, src: int, *, random: bool) -> None:
        """Leg 2: accept an offer and await the confirm."""
        now = self.servent.sim.now
        self._pending[src] = now
        self.servent.send(src, ConnectAccept(seeker=self.servent.nid, random=random))
        self.servent.sim.schedule(
            self.cfg.handshake_timeout, self._maybe_expire_pending, src, now
        )

    def _maybe_expire_pending(self, src: int, accepted_at: float) -> None:
        # Only expire the handshake this timer belongs to (a newer
        # handshake with the same peer carries a newer timestamp).
        if self._pending.get(src) == accepted_at:
            self._pending_timeout(src)

    def _pending_timeout(self, src: int) -> None:
        self._pending.pop(src, None)

    def _on_accept(self, src: int, msg: ConnectAccept) -> None:
        """Leg 2 arrives at the responder: install and confirm."""
        table = self.servent.connections
        if table.is_full or table.has(src):
            return  # capacity raced away; seeker's pending will time out
        if self.add_connection(
            Connection(peer=src, symmetric=True, initiator=False, random=msg.random)
        ):
            self.servent.send(
                src, ConnectConfirm(responder=self.servent.nid, random=msg.random)
            )
            self._on_connected()

    def _on_confirm(self, src: int, msg: ConnectConfirm) -> None:
        """Leg 3 arrives at the seeker: the connection is live."""
        if src not in self._pending:
            return  # timed out / duplicate confirm
        self._pending.pop(src, None)
        table = self.servent.connections
        if table.is_full or table.has(src):
            return  # acceptor side will garbage-collect via ping deadline
        if self.add_connection(
            Connection(peer=src, symmetric=True, initiator=True, random=msg.random)
        ):
            self._on_connected()
