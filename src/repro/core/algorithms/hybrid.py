"""The Hybrid (re)configuration algorithm (§6.2, Figure 4).

For *heterogeneous* networks: every peer carries a scalar **qualifier**
(battery level, CPU class, ...).  The network self-organizes into
subnets of one *master* and up to ``MAXNSLAVES`` *slaves*; slaves talk
only to their master, masters interconnect with the Regular algorithm,
yielding a hybrid (super-peer) overlay.

States and transitions implemented exactly as described:

* ``INITIAL`` -- flood ``capture(qualifier)`` over an expanding ring.
  A peer that exhausts the ring (``nhops`` wraps to 0) entitles itself
  ``MASTER``.
* Capture handling: an INITIAL peer with a *smaller* qualifier tries
  (three-way handshake: request / accept / confirm) to become the
  sender's slave; a peer with a *bigger* qualifier in INITIAL or MASTER
  answers with its own capture so the smaller sender can enslave itself.
  Qualifier ties are broken by node id so two equal peers never
  deadlock.
* ``MASTER`` -- runs the Regular algorithm against other masters
  (discoveries are flagged ``masters_only``), accepts slave requests up
  to MAXNSLAVES, and reverts to INITIAL after ``MAXTIMERMASTER``
  without a single slave.
* ``SLAVE`` -- maintains only the master connection; if the master is
  lost or drifts beyond MAXDIST, the peer resets to INITIAL.
* ``RESERVED`` -- transitional state during the slave handshake,
  guarded by a timeout.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..connection import Connection, ConnectionTable
from ..messages import (
    Capture,
    Discover,
    P2pMessage,
    SlaveAccept,
    SlaveConfirm,
    SlaveRequest,
)
from .regular import RegularAlgorithm

__all__ = ["HybridAlgorithm", "PeerState"]


class PeerState(enum.Enum):
    """Hybrid peer roles (§6.2)."""

    INITIAL = "initial"
    MASTER = "master"
    SLAVE = "slave"
    RESERVED = "reserved"


class HybridAlgorithm(RegularAlgorithm):
    """Master/slave self-organization for heterogeneous networks.

    The qualifier is static by default, but the paper allows it to "be
    related to any characteristic of the node, e.g. energy level":
    call :meth:`use_energy_qualifier` to make it track the node's
    remaining battery, so drained masters lose their rank and the
    hierarchy re-elects around them.
    """

    name = "hybrid"

    def __init__(self, servent, config, rng, qualifier: float = 1.0) -> None:
        super().__init__(servent, config, rng)
        self._static_qualifier = float(qualifier)
        self._energy_qualifier = False
        self.state = PeerState.INITIAL
        self.master: Optional[int] = None
        #: master side: connections to our slaves (acceptor role)
        self.slaves = ConnectionTable(servent.nid, config.max_slaves)
        self._reserved_with: Optional[int] = None
        self._reserved_at = -1.0
        #: pending slave handshakes on the master side: peer -> accept time
        self._pending_slaves: Dict[int, float] = {}
        self._no_slaves_since = 0.0

    # ------------------------------------------------------------------
    # qualifier ordering (ties broken by node id, never ambiguous)
    # ------------------------------------------------------------------
    @property
    def qualifier(self) -> float:
        """Current qualifier (static, or live remaining-energy fraction)."""
        if self._energy_qualifier:
            energy = self.servent.world.energy
            cap = energy.capacity
            if cap == float("inf"):
                return self._static_qualifier
            return max(energy.remaining(self.servent.nid), 0.0) / cap
        return self._static_qualifier

    @qualifier.setter
    def qualifier(self, value: float) -> None:
        self._static_qualifier = float(value)

    def use_energy_qualifier(self, enabled: bool = True) -> None:
        """Tie the qualifier to the node's remaining battery fraction."""
        self._energy_qualifier = bool(enabled)

    def stats(self) -> dict:
        """Base counters plus master/slave structure."""
        out = super().stats()
        out["state"] = self.state.name.lower()
        out["slaves"] = self.slaves.count
        return out

    def _beats(self, other_q: float, other_id: int) -> bool:
        """True if this peer outranks (qualifier, id) -- it can be master."""
        return (self.qualifier, self.servent.nid) > (other_q, other_id)

    # ------------------------------------------------------------------
    # establishment (Figure 4)
    # ------------------------------------------------------------------
    def _establish_loop(self):
        cfg = self.cfg
        servent = self.servent
        yield float(self.rng.uniform(0.0, cfg.timer_initial))
        while True:
            if self.state is PeerState.INITIAL:
                if self.nhops != 0:
                    servent.flood(
                        Capture(sender=servent.nid, qualifier=self.qualifier),
                        self.nhops,
                    )
                    self._advance_nhops()
                    yield self.timer
                else:
                    self._become_master()
            elif self.state is PeerState.MASTER:
                # Master with no slaves for too long demotes itself: it
                # "could, potentially, be another peer's slave".
                now = servent.sim.now
                if (
                    self.slaves.count == 0
                    and not self._pending_slaves
                    and now - self._no_slaves_since > cfg.master_timeout
                ):
                    self._become_initial()
                    continue
                # Regular algorithm toward other masters.
                if not servent.connections.is_full:
                    if self.nhops != 0:
                        self._send_discovery()
                        self._advance_nhops()
                        yield self.timer
                    else:
                        self.timer = min(self.timer * 2, cfg.max_timer)
                        self._advance_nhops()
                else:
                    yield cfg.timer_initial
            else:
                # SLAVE / RESERVED: nothing to establish, just idle.
                yield cfg.timer_initial

    def _make_discover(self) -> Discover:
        return Discover(seeker=self.servent.nid, masters_only=True)

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def _become_master(self) -> None:
        self.state = PeerState.MASTER
        self.master = None
        self.nhops = self.cfg.nhops_initial
        self.timer = self.cfg.timer_initial
        self._no_slaves_since = self.servent.sim.now

    def _become_initial(self) -> None:
        # Drop the master-side overlay completely.
        for peer in list(self.servent.connections.peers()):
            self.close_connection(peer)
        # Dropped slaves notice via ping silence and reset themselves.
        self.slaves.clear()
        self._pending_slaves.clear()
        self.state = PeerState.INITIAL
        self.master = None
        self._reserved_with = None
        self.nhops = self.cfg.nhops_initial
        self.timer = self.cfg.timer_initial

    def _reset_to_initial_as_slave(self) -> None:
        """A slave lost its master: start over."""
        self.master = None
        self.state = PeerState.INITIAL
        self.nhops = self.cfg.nhops_initial
        self.timer = self.cfg.timer_initial

    # ------------------------------------------------------------------
    # capture / slave handshake
    # ------------------------------------------------------------------
    def _handle_capture(self, origin: int, qualifier: float) -> None:
        if self.state is PeerState.INITIAL and not self._beats(qualifier, origin):
            # Smaller qualifier: try to become the sender's slave.
            self._request_enslavement(origin)
        elif self.state in (PeerState.INITIAL, PeerState.MASTER) and self._beats(
            qualifier, origin
        ):
            # Bigger qualifier: announce ourselves back to the sender.
            self.servent.send(
                origin, Capture(sender=self.servent.nid, qualifier=self.qualifier)
            )

    def _request_enslavement(self, master_candidate: int) -> None:
        now = self.servent.sim.now
        self.state = PeerState.RESERVED
        self._reserved_with = master_candidate
        self._reserved_at = now
        self.servent.send(
            master_candidate,
            SlaveRequest(sender=self.servent.nid, qualifier=self.qualifier),
        )
        self.servent.sim.schedule(self.cfg.reserve_timeout, self._reserve_timeout, now)

    def _reserve_timeout(self, reserved_at: float) -> None:
        if self.state is PeerState.RESERVED and self._reserved_at == reserved_at:
            self.state = PeerState.INITIAL
            self._reserved_with = None

    def _on_slave_request(self, src: int, msg: SlaveRequest) -> None:
        ok = (
            self.state in (PeerState.INITIAL, PeerState.MASTER)
            and self._beats(msg.qualifier, src)
            and self.slaves.count + len(self._pending_slaves) < self.cfg.max_slaves
            and not self.slaves.has(src)
        )
        if not ok:
            return
        if self.state is PeerState.INITIAL:
            self._become_master()
        now = self.servent.sim.now
        self._pending_slaves[src] = now
        self.servent.send(src, SlaveAccept(sender=self.servent.nid))
        self.servent.sim.schedule(
            self.cfg.handshake_timeout, self._expire_pending_slave, src, now
        )

    def _expire_pending_slave(self, src: int, accepted_at: float) -> None:
        if self._pending_slaves.get(src) == accepted_at:
            self._pending_slaves.pop(src, None)

    def _on_slave_accept(self, src: int, msg: SlaveAccept) -> None:
        if self.state is not PeerState.RESERVED or self._reserved_with != src:
            return
        self.state = PeerState.SLAVE
        self.master = src
        self._reserved_with = None
        # The slave initiates (pings) the master connection.
        conn = Connection(peer=src, symmetric=True, initiator=True)
        conn.established_at = conn.last_seen = self.servent.sim.now
        self.servent.connections.add(conn)
        self.servent.send(src, SlaveConfirm(sender=self.servent.nid))

    def _on_slave_confirm(self, src: int, msg: SlaveConfirm) -> None:
        if src not in self._pending_slaves or self.state is not PeerState.MASTER:
            return
        self._pending_slaves.pop(src, None)
        conn = Connection(peer=src, symmetric=True, initiator=False)
        conn.established_at = conn.last_seen = self.servent.sim.now
        if self.slaves.add(conn):
            self._no_slaves_since = self.servent.sim.now

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_discovery(self, origin: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, Capture):
            self._handle_capture(origin, msg.qualifier)
        elif isinstance(msg, Discover) and msg.masters_only:
            if self.state is PeerState.MASTER:
                super().on_discovery(origin, msg, hops)

    def _willing(self, origin: int, msg: Discover) -> bool:
        table = self.servent.connections
        return (
            msg.masters_only
            and self.state is PeerState.MASTER
            and not table.is_full
            and not table.has(origin)
        )

    def on_message(self, src: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, Capture):
            self._handle_capture(src, msg.qualifier)
        elif isinstance(msg, SlaveRequest):
            self._on_slave_request(src, msg)
        elif isinstance(msg, SlaveAccept):
            self._on_slave_accept(src, msg)
        elif isinstance(msg, SlaveConfirm):
            self._on_slave_confirm(src, msg)
        elif self.state is PeerState.MASTER:
            # master-master handshake legs
            super().on_message(src, msg, hops)

    # ------------------------------------------------------------------
    # maintenance: master links (inherited) + slave links
    # ------------------------------------------------------------------
    def _maintenance_round(self, now: float) -> None:
        super()._maintenance_round(now)
        # Master side: drop slaves that went silent.
        for conn in list(self.slaves):
            if now - conn.last_seen > self.cfg.ping_deadline:
                self._close_slave(conn.peer)

    def _close_slave(self, peer: int) -> None:
        if self.slaves.remove(peer) is not None and self.slaves.count == 0:
            self._no_slaves_since = self.servent.sim.now

    def handle_ping(self, src, msg, hops):
        # Pings from slaves land in the slave table.
        conn = self.slaves.get(src)
        if conn is not None:
            conn.last_seen = self.servent.sim.now
            from ..messages import Pong

            self.servent.send(src, Pong(sender=self.servent.nid))
            return
        super().handle_ping(src, msg, hops)

    def on_connection_closed(self, conn: Connection) -> None:
        if self.state is PeerState.SLAVE and conn.peer == self.master:
            self._reset_to_initial_as_slave()

    # ------------------------------------------------------------------
    # query plane
    # ------------------------------------------------------------------
    def overlay_neighbors(self) -> list[int]:
        if self.state is PeerState.SLAVE:
            return [self.master] if self.master is not None else []
        if self.state is PeerState.MASTER:
            return self.servent.connections.peers() + self.slaves.peers()
        return []
