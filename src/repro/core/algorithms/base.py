"""(Re)configuration algorithm base class + shared maintenance machinery.

All four algorithms share the ping/pong connection-maintenance scheme of
§6.1.3 (with the Basic algorithm as the degenerate both-sides-ping
case), so it lives here:

* the *initiator* of a connection sends a :class:`Ping` every
  ``ping_interval`` and closes the connection if no :class:`Pong`
  arrives within ``pong_timeout`` or the peer is farther than the
  allowed distance (MAXDIST; doubled for random connections);
* the *acceptor* answers pongs and closes the connection when no ping
  has arrived for ``ping_deadline`` seconds;
* in the Basic algorithm every reference is maintained initiator-style
  by its owner (which is exactly why its ping traffic is ~2x).

Distance is measured from the hop count the pong actually travelled
(reported by the routing layer on delivery), which is how a real
deployment would estimate it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...sim.process import Process
from ..config import P2pConfig
from ..connection import Connection
from ..messages import P2pMessage, Ping, Pong

if TYPE_CHECKING:  # pragma: no cover
    from ..servent import Servent

__all__ = ["ReconfigAlgorithm"]


class ReconfigAlgorithm(abc.ABC):
    """Base of Basic / Regular / Random / Hybrid.

    Subclasses implement the *establishment* side (discovery floods and
    handshakes); maintenance is shared.

    Parameters
    ----------
    servent:
        The owning servent (provides send/flood/table access).
    config:
        Shared constants.
    rng:
        This node's private random stream.
    """

    #: subclass tag used in configs and reports
    name: str = "abstract"

    def __init__(self, servent: "Servent", config: P2pConfig, rng: np.random.Generator) -> None:
        self.servent = servent
        self.cfg = config
        self.rng = rng
        self._procs: list[Process] = []
        # initiator-side: peers whose ping is awaiting a pong, with the
        # time the ping went out
        self._await_pong: dict[int, float] = {}
        labels = {"alg": self.name, "node": servent.nid}
        registry = servent.registry
        self._c_pings = registry.counter("alg.pings_sent", **labels)
        self._c_established = registry.counter("alg.connections_established", **labels)
        self._c_closed = registry.counter("alg.connections_closed", **labels)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the algorithm's processes (establishment + maintenance)."""
        self._spawn(self._establish_loop(), "establish")
        self._spawn(self._maintenance_loop(), "maintain")

    def stop(self) -> None:
        for p in self._procs:
            p.kill()
        self._procs.clear()

    def _spawn(self, gen, tag: str) -> Process:
        p = Process(self.servent.sim, gen, name=f"{self.name}.{tag}[{self.servent.nid}]")
        self._procs.append(p)
        return p

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _establish_loop(self):
        """Generator implementing the paper's establishment pseudo-code."""

    @abc.abstractmethod
    def on_discovery(self, origin: int, msg: P2pMessage, hops: int) -> None:
        """A flooded discovery/capture message reached this node."""

    @abc.abstractmethod
    def on_message(self, src: int, msg: P2pMessage, hops: int) -> None:
        """A unicast overlay-management message arrived."""

    def on_connection_closed(self, conn: Connection) -> None:
        """Hook: a connection was just removed (subclasses may react)."""

    def overlay_neighbors(self) -> list[int]:
        """Peers the query plane may talk to (Hybrid overrides)."""
        return self.servent.connections.peers()

    # ------------------------------------------------------------------
    # shared maintenance
    # ------------------------------------------------------------------
    def _maintenance_loop(self):
        cfg = self.cfg
        # Desynchronize ping rounds across nodes.
        yield float(self.rng.uniform(0.0, cfg.ping_interval))
        while True:
            self._maintenance_round(self.servent.sim.now)
            yield cfg.ping_interval

    def _maintenance_round(self, now: float) -> None:
        """One pass over all connections (Hybrid extends with slaves)."""
        for conn in list(self.servent.connections):
            if conn.initiator or not conn.symmetric:
                self._ping_round(conn, now)
            else:
                # acceptor: close silently-dead connections
                if now - conn.last_seen > self.cfg.ping_deadline:
                    self.close_connection(conn.peer)

    def _ping_round(self, conn: Connection, now: float) -> None:
        peer = conn.peer
        if peer in self._await_pong:
            # Previous ping from the last round is still unanswered.
            if now - self._await_pong[peer] >= self.cfg.pong_timeout:
                self._await_pong.pop(peer, None)
                self.close_connection(peer)
                return
        self._await_pong[peer] = now
        self._c_pings.value += 1
        self.servent.send(peer, Ping(sender=self.servent.nid))
        self.servent.sim.schedule(self.cfg.pong_timeout, self._pong_deadline, peer, now)

    def _pong_deadline(self, peer: int, pinged_at: float) -> None:
        if self._await_pong.get(peer) == pinged_at:
            self._await_pong.pop(peer, None)
            self.close_connection(peer)

    def allowed_distance(self, conn: Connection) -> int:
        """Maintenance distance bound: MAXDIST, doubled for random links."""
        return self.cfg.max_dist * (2 if conn.random else 1)

    def handle_ping(self, src: int, msg: Ping, hops: int) -> None:
        """Acceptor side: answer with a pong, refresh the deadline."""
        conn = self.servent.connections.get(src)
        if conn is None:
            return  # ping for a reference we no longer hold
        conn.last_seen = self.servent.sim.now
        self.servent.send(src, Pong(sender=self.servent.nid))

    def handle_pong(self, src: int, msg: Pong, hops: int) -> None:
        """Initiator side: connection alive; enforce the distance bound."""
        conn = self.servent.connections.get(src)
        self._await_pong.pop(src, None)
        if conn is None:
            return
        conn.last_seen = self.servent.sim.now
        if hops > self.allowed_distance(conn):
            self.close_connection(src)

    # ------------------------------------------------------------------
    def close_connection(self, peer: int) -> None:
        """Remove the reference to ``peer`` and fire the subclass hook."""
        conn = self.servent.connections.remove(peer)
        self._await_pong.pop(peer, None)
        if conn is not None:
            self._c_closed.value += 1
            if self.servent.lifetime_log is not None:
                self.servent.lifetime_log.record(
                    self.servent.nid, conn, self.servent.sim.now
                )
            self.on_connection_closed(conn)

    def add_connection(self, conn: Connection) -> bool:
        """Install a connection (stamped with the current time)."""
        conn.established_at = self.servent.sim.now
        conn.last_seen = conn.established_at
        added = self.servent.connections.add(conn)
        if added:
            self._c_established.value += 1
        return added

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "connections": self.servent.connections.count,
            "pings_sent": self._c_pings.value,
            "connections_established": self._c_established.value,
            "connections_closed": self._c_closed.value,
            "awaiting_pong": len(self._await_pong),
        }
