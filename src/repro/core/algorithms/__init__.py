"""The paper's four (re)configuration algorithms."""

from typing import Callable, Dict, Type

from .base import ReconfigAlgorithm
from .basic import BasicAlgorithm
from .hybrid import HybridAlgorithm, PeerState
from .random_alg import RandomAlgorithm
from .regular import RegularAlgorithm

__all__ = [
    "ReconfigAlgorithm",
    "BasicAlgorithm",
    "RegularAlgorithm",
    "RandomAlgorithm",
    "HybridAlgorithm",
    "PeerState",
    "ALGORITHMS",
    "make_algorithm",
]

#: registry keyed by the names used throughout configs and reports
ALGORITHMS: Dict[str, Type[ReconfigAlgorithm]] = {
    "basic": BasicAlgorithm,
    "regular": RegularAlgorithm,
    "random": RandomAlgorithm,
    "hybrid": HybridAlgorithm,
}


def make_algorithm(
    name: str, servent, config, rng, *, qualifier: float = 1.0
) -> ReconfigAlgorithm:
    """Instantiate an algorithm by name (qualifier only used by hybrid)."""
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    if cls is HybridAlgorithm:
        return cls(servent, config, rng, qualifier=qualifier)
    return cls(servent, config, rng)
