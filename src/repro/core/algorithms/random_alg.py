"""The Random (re)configuration algorithm (§6.1.4, Figure 3).

Identical to Regular except for the *last* connection slot, which is
filled by a long-range "random connection" to create small-world
bridges:

* the first ``MAXNCONN - 1`` connections are regular (same expanding
  ring, same handshake);
* for the last slot the node draws ``randhops`` uniformly between the
  current ``nhops`` and ``2 * MAXNHOPS``, floods a random-discovery to
  that radius, collects offers for a short window, and completes the
  handshake with the *farthest* responder;
* a random connection that drops must be replaced by another random
  connection;
* maintenance allows random connections twice the distance
  (``2 * MAXDIST``) before closing them.
"""

from __future__ import annotations

from typing import List, Tuple

from ..messages import ConnectOffer, Discover, P2pMessage
from .regular import RegularAlgorithm

__all__ = ["RandomAlgorithm"]


class RandomAlgorithm(RegularAlgorithm):
    """Regular plus one far, randomly-discovered small-world link."""

    name = "random"

    def __init__(self, servent, config, rng) -> None:
        super().__init__(servent, config, rng)
        self._collecting = False
        self._random_offers: List[Tuple[int, int]] = []  # (responder, hops_seen)
        #: peer we sent a random-connection accept to (confirm awaited)
        self._pending_random_peer: int | None = None

    # ------------------------------------------------------------------
    # establishment (Figure 3)
    # ------------------------------------------------------------------
    def _regular_count(self) -> int:
        return sum(1 for c in self.servent.connections if not c.random)

    def _target_connections(self) -> int:
        # Regular discoveries only fill MAXNCONN - 1 slots.
        return self.cfg.max_connections - 1

    def _needs_random(self) -> bool:
        # "The difference of the two algorithms lies in the LAST
        # connection": the long-range link is only sought once the
        # MAXNCONN-1 regular slots are filled.
        table = self.servent.connections
        return (
            self._regular_count() >= self._target_connections()
            and not table.has_random()
            and not table.is_full
            and self._pending_random_peer is None
        )

    def _establish_loop(self):
        cfg = self.cfg
        servent = self.servent
        yield float(self.rng.uniform(0.0, cfg.timer_initial))
        while True:
            if not servent.connections.is_full:
                waited = False
                if self.nhops != 0:
                    if self._regular_count() < self._target_connections():
                        self._send_discovery()
                else:
                    self.timer = min(self.timer * 2, cfg.max_timer)
                if self._needs_random():
                    lo = self.nhops if self.nhops != 0 else cfg.nhops_initial
                    hi = 2 * cfg.max_nhops
                    randhops = int(self.rng.integers(lo, hi + 1))
                    self._collecting = True
                    self._random_offers.clear()
                    servent.flood(
                        Discover(seeker=servent.nid, want_random=True), randhops
                    )
                    yield cfg.random_offer_wait
                    waited = True
                    self._finish_random_collection()
                if self.nhops != 0:
                    yield max(self.timer - (cfg.random_offer_wait if waited else 0.0), 0.0)
                self._advance_nhops()
            else:
                yield cfg.timer_initial

    def _finish_random_collection(self) -> None:
        self._collecting = False
        if not self._needs_random():
            self._random_offers.clear()
            return
        offers = [
            (src, hops)
            for src, hops in self._random_offers
            if not self.servent.connections.has(src) and src not in self._pending
        ]
        self._random_offers.clear()
        if not offers:
            return
        # "only continues the three-way handshake with the most distant
        # neighbour" -- ties broken deterministically by node id.
        best_src, _ = max(offers, key=lambda o: (o[1], o[0]))
        self._pending_random_peer = best_src
        self._accept(best_src, random=True)

    # ------------------------------------------------------------------
    # slot discipline: regular links cap at MAXNCONN - 1 on BOTH sides,
    # so every node keeps one slot free for a random (long-range) link --
    # its own or a distant seeker's.
    # ------------------------------------------------------------------
    def _pending_regular(self) -> int:
        n = len(self._pending)
        if self._pending_random_peer is not None and self._pending_random_peer in self._pending:
            n -= 1
        return n

    def _willing(self, origin: int, msg: Discover) -> bool:
        table = self.servent.connections
        if msg.basic or msg.masters_only or table.has(origin):
            return False
        if msg.want_random:
            return not table.is_full
        return self._regular_count() < self._target_connections()

    def _accepts_offer(self, src: int, offer: ConnectOffer) -> bool:
        table = self.servent.connections
        return (
            not offer.random
            and self._regular_count() + self._pending_regular() < self._target_connections()
            and not table.has(src)
            and src not in self._pending
        )

    def _on_accept(self, src: int, msg) -> None:
        # Responder side: enforce the regular-slot cap for non-random
        # accepts (the parent only checks total capacity).
        if not msg.random and self._regular_count() >= self._target_connections():
            return
        super()._on_accept(src, msg)

    # ------------------------------------------------------------------
    # offer handling
    # ------------------------------------------------------------------
    def _on_offer(self, src: int, offer: ConnectOffer) -> None:
        if offer.random:
            if self._collecting:
                self._random_offers.append((src, offer.hops_seen))
            return
        super()._on_offer(src, offer)

    def _pending_timeout(self, src: int) -> None:
        super()._pending_timeout(src)
        if src == self._pending_random_peer:
            self._pending_random_peer = None

    def _on_confirm(self, src: int, msg) -> None:
        if src == self._pending_random_peer:
            self._pending_random_peer = None
        super()._on_confirm(src, msg)

    def on_connection_closed(self, conn) -> None:
        # A dropped random connection is replaced on the next loop pass
        # (the _needs_random() check picks it up automatically).
        super().on_connection_closed(conn)

    def on_discovery(self, origin: int, msg: P2pMessage, hops: int) -> None:
        # Responders treat random discoveries like regular ones: willing
        # if they have capacity.  The *seeker* is the one that insists on
        # the farthest responder.
        super().on_discovery(origin, msg, hops)
