"""The Basic (re)configuration algorithm (§6.1.1) -- the baseline.

Characteristics, straight from the paper's Figure 1 pseudo-code:

* discovery broadcasts always travel the full fixed ``NHOPS`` radius
  (no expanding ring) and repeat every fixed ``TIMER`` while the node
  has fewer than MAXNCONN references -- the "indiscriminate use of
  broadcasts" the improved algorithms attack;
* *every* node that hears a discovery answers it (no willingness
  check), and the seeker adds references as replies arrive -- no
  handshake, so references are *asymmetric*;
* each node maintains each of its own references by pinging it
  (both endpoints of a mutual reference ping, doubling ping traffic);
* there is no distance bound on maintained references.
"""

from __future__ import annotations

from ..connection import Connection
from ..messages import Discover, DiscoverReply, P2pMessage
from .base import ReconfigAlgorithm

__all__ = ["BasicAlgorithm"]


class BasicAlgorithm(ReconfigAlgorithm):
    """Simple fixed-radius, fixed-timer reconfiguration."""

    name = "basic"

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    def _establish_loop(self):
        cfg = self.cfg
        servent = self.servent
        # Small initial jitter so all nodes don't flood at t=0 together.
        yield float(self.rng.uniform(0.0, cfg.timer_basic))
        while True:
            if not servent.connections.is_full:
                servent.flood(Discover(seeker=servent.nid, basic=True), cfg.nhops_basic)
            yield cfg.timer_basic

    def on_discovery(self, origin: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, Discover) and msg.basic:
            # "Every node that listens to this message answers it."
            self.servent.send(origin, DiscoverReply(responder=self.servent.nid))

    def on_message(self, src: int, msg: P2pMessage, hops: int) -> None:
        if isinstance(msg, DiscoverReply):
            table = self.servent.connections
            if not table.is_full and not table.has(src):
                # Asymmetric reference, maintained by us (initiator pings).
                self.add_connection(
                    Connection(peer=src, symmetric=False, initiator=True)
                )

    # ------------------------------------------------------------------
    # maintenance deviations from the shared scheme
    # ------------------------------------------------------------------
    def handle_ping(self, src, msg, hops):
        """Basic §6.1.1: 'whenever a node receives a ping it answers with
        a pong' -- even when it holds no reference back (references are
        asymmetric, so that is the common case)."""
        from ..messages import Pong

        conn = self.servent.connections.get(src)
        if conn is not None:
            conn.last_seen = self.servent.sim.now
        self.servent.send(src, Pong(sender=self.servent.nid))

    def allowed_distance(self, conn) -> int:
        """Basic has no distance bound on maintained references."""
        return 10**9
