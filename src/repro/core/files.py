"""Zipf file placement and per-servent file stores.

The paper distributes ``num_files`` distinct searchable files so that
the most popular file is present on ``max_freq`` (40 %) of all p2p
nodes, the second on ``max_freq / 2``, the k-th on ``max_freq / k`` --
a Zipf law with exponent 1 scaled to ``max_freq``.

File ids are 1-based (file 1 is the most popular), matching the x-axis
of the paper's Figures 5 and 6.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

__all__ = ["zipf_frequencies", "place_files", "FileStore"]


def zipf_frequencies(num_files: int, max_freq: float) -> np.ndarray:
    """Presence frequency of each file: ``max_freq / rank``.

    Returns an array of length ``num_files`` indexed by ``rank-1``.
    """
    if num_files < 1:
        raise ValueError(f"num_files must be >= 1, got {num_files}")
    if not 0 < max_freq <= 1:
        raise ValueError(f"max_freq must be in (0, 1], got {max_freq}")
    ranks = np.arange(1, num_files + 1, dtype=float)
    return max_freq / ranks


def place_files(
    members: Sequence[int],
    num_files: int,
    max_freq: float,
    rng: np.random.Generator,
) -> Dict[int, Set[int]]:
    """Assign files to p2p members following the Zipf presence law.

    File ``k`` is placed on ``round(max_freq / k * len(members))`` nodes
    chosen uniformly at random without replacement (at least one node,
    so every file is findable somewhere).

    Returns a mapping node id -> set of file ids held.
    """
    members = list(members)
    if not members:
        raise ValueError("need at least one p2p member")
    freqs = zipf_frequencies(num_files, max_freq)
    holdings: Dict[int, Set[int]] = {m: set() for m in members}
    n = len(members)
    for rank, f in enumerate(freqs, start=1):
        count = max(1, int(round(f * n)))
        chosen = rng.choice(n, size=min(count, n), replace=False)
        for idx in chosen:
            holdings[members[int(idx)]].add(rank)
    return holdings


class FileStore:
    """The files one servent shares."""

    __slots__ = ("owner", "_files")

    def __init__(self, owner: int, files: Set[int] | None = None) -> None:
        self.owner = owner
        self._files: Set[int] = set(files) if files else set()

    def has(self, file_id: int) -> bool:
        return file_id in self._files

    def add(self, file_id: int) -> None:
        self._files.add(file_id)

    def files(self) -> List[int]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FileStore node={self.owner} files={self.files()}>"
