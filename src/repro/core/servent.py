"""The servent: one p2p participant tying together its connection
table, (re)configuration algorithm, file store and query engine.

A servent does not talk to the radio directly; it uses

* ``send``  -- unicast a p2p message over the routing layer, and
* ``flood`` -- TTL-limited controlled broadcast for discovery,

and receives everything through :meth:`on_p2p` (routed unicasts) and
:meth:`on_flood` (discovery floods), which also feed the per-family
received-message counters the paper's Figures 7-12 are built from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from ..net.broadcast import FloodManager
from ..net.topology import UNREACHABLE
from ..net.world import World
from ..obs.registry import Registry
from ..routing.base import Router
from ..sim.kernel import Simulator
from .config import P2pConfig
from .connection import ConnectionTable
from .files import FileStore
from .messages import FileData, FileRequest, P2pMessage, Ping, Pong, Query, QueryHit
from .query import QueryConfig, QueryEngine

if TYPE_CHECKING:  # pragma: no cover
    from .algorithms.base import ReconfigAlgorithm

__all__ = ["Servent", "P2P_KIND"]

#: routing-layer kind for unicast p2p messages
P2P_KIND = "p2p"


class Servent:
    """One peer of the overlay.

    Parameters
    ----------
    nid:
        Node id (also the ad-hoc address).
    sim, world, router:
        Substrate handles.
    flood:
        This node's discovery-plane flood manager.
    config, query_config:
        Protocol constants.
    store:
        The files this node shares.
    num_files:
        Total distinct files in the network (query target space).
    rng:
        Private random stream.
    count_received:
        Metrics hook ``count_received(nid, family)`` fired for every
        p2p message copy this node receives.
    registry:
        Observability registry; defaults to the flood manager's (and
        hence the whole simulation's) registry.
    """

    def __init__(
        self,
        nid: int,
        sim: Simulator,
        world: World,
        router: Router,
        flood: FloodManager,
        *,
        config: P2pConfig,
        query_config: QueryConfig,
        store: FileStore,
        num_files: int,
        rng: np.random.Generator,
        count_received: Optional[Callable[[int, str], None]] = None,
        lifetime_log=None,
        registry: Optional[Registry] = None,
        query_policy=None,
    ) -> None:
        self.nid = nid
        self.sim = sim
        self.world = world
        self.router = router
        self.flood_mgr = flood
        self.cfg = config
        self.store = store
        self.num_files = num_files
        self.rng = rng
        self.count_received = count_received
        #: optional LifetimeLog for closed-connection statistics
        self.lifetime_log = lifetime_log
        self.connections = ConnectionTable(nid, config.max_connections)
        self.query_engine = QueryEngine(self, query_config, rng, policy=query_policy)
        self.algorithm: Optional["ReconfigAlgorithm"] = None
        if registry is None:
            registry = getattr(flood, "registry", None)
        self.registry = registry if registry is not None else Registry()
        self._h_flood_hops = self.registry.histogram(
            "p2p.flood_hops", node=nid
        )
        # Wire the flood plane into this servent.
        flood.deliver = self._on_flood
        flood.count_duplicate = self._on_flood_duplicate

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach_algorithm(self, algorithm: "ReconfigAlgorithm") -> None:
        if self.algorithm is not None:
            raise RuntimeError(f"servent {self.nid} already has an algorithm")
        self.algorithm = algorithm

    def start(self, *, queries: bool = True) -> None:
        """Start (re)configuration and, optionally, the query loop."""
        if self.algorithm is None:
            raise RuntimeError(f"servent {self.nid} has no algorithm attached")
        self.algorithm.start()
        if queries:
            self.query_engine.start()

    def stop(self) -> None:
        if self.algorithm is not None:
            self.algorithm.stop()
        self.query_engine.stop()

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def send(self, peer: int, msg: P2pMessage) -> None:
        """Unicast ``msg`` to ``peer`` over the ad-hoc routing layer."""
        self.router.send(self.nid, peer, msg, kind=P2P_KIND, size=msg.SIZE)

    def flood(self, msg: P2pMessage, nhops: int) -> None:
        """Controlled-broadcast ``msg`` within ``nhops`` ad-hoc hops."""
        self.flood_mgr.originate(msg, nhops=nhops, size=msg.SIZE)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def on_p2p(self, src: int, msg: P2pMessage, hops: int) -> None:
        """Routed p2p message delivery (called by the overlay dispatcher)."""
        self._count(msg.FAMILY)
        if isinstance(msg, Ping):
            self.algorithm.handle_ping(src, msg, hops)
        elif isinstance(msg, Pong):
            self.algorithm.handle_pong(src, msg, hops)
        elif isinstance(msg, Query):
            self.query_engine.on_query(src, msg)
        elif isinstance(msg, QueryHit):
            self.query_engine.on_hit(src, msg)
        elif isinstance(msg, FileRequest):
            self.query_engine.on_file_request(src, msg)
        elif isinstance(msg, FileData):
            self.query_engine.on_file_data(src, msg)
        else:
            self.algorithm.on_message(src, msg, hops)

    def _on_flood(self, origin: int, msg: P2pMessage, hops: int) -> None:
        if origin == self.nid:
            return
        self._count(msg.FAMILY)
        self._h_flood_hops.observe(hops)
        self.algorithm.on_discovery(origin, msg, hops)

    def _on_flood_duplicate(self, origin: int, msg: P2pMessage) -> None:
        # The radio still received (and paid for) the duplicate copy;
        # it counts as a received message even though it is not processed.
        if origin != self.nid:
            self._count(msg.FAMILY)

    def _count(self, family: str) -> None:
        if self.count_received is not None:
            self.count_received(self.nid, family)

    # ------------------------------------------------------------------
    # query-engine surface
    # ------------------------------------------------------------------
    def overlay_neighbors(self) -> list[int]:
        """Current query-plane neighbours (algorithm-defined)."""
        return self.algorithm.overlay_neighbors()

    def adhoc_distance(self, peer: int) -> int:
        """Ground-truth ad-hoc hop distance to ``peer`` (metrics only)."""
        d = self.world.hop_distance(self.nid, peer)
        return d if d != UNREACHABLE else -1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "connections": self.connections.count,
            "flood_deliveries": self._h_flood_hops.count,
            "flood_hops_mean": self._h_flood_hops.mean,
            "queries_finished": len(self.query_engine.records),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        alg = self.algorithm.name if self.algorithm else "-"
        return f"<Servent {self.nid} alg={alg} conns={self.connections.count}>"
