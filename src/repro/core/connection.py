"""Connection (reference) table of a servent.

The paper is explicit that "connections" are *references*: knowledge of
the address of a reachable peer.  A symmetric connection exists when
both endpoints reference each other (the improved algorithms' three-way
handshake); the Basic algorithm keeps asymmetric references.

The table enforces the MAXNCONN cap and tracks, per connection, the
bookkeeping maintenance needs: who pings (the *initiator*), whether the
link is a Random-algorithm long-range ("random") connection, and when
we last heard from the peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Connection", "ConnectionTable"]


@dataclass(slots=True)
class Connection:
    """One overlay reference.

    Attributes
    ----------
    peer:
        The referenced node.
    symmetric:
        Whether this was established by the three-way handshake.
    initiator:
        True on the endpoint that sought the connection (it pings);
        False on the acceptor (it pongs and watches a ping deadline).
    random:
        Random-algorithm long-range connection (2x MAXDIST allowance,
        replaced by another random connection when it drops).
    established_at, last_seen:
        Timestamps for diagnostics and maintenance.
    """

    peer: int
    symmetric: bool = True
    initiator: bool = True
    random: bool = False
    established_at: float = 0.0
    last_seen: float = 0.0


class ConnectionTable:
    """Per-servent reference set with a MAXNCONN capacity cap."""

    def __init__(self, owner: int, max_connections: int) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self.owner = owner
        self.max_connections = int(max_connections)
        self._conns: Dict[int, Connection] = {}

    # ------------------------------------------------------------------
    def add(self, conn: Connection) -> bool:
        """Install a connection; False if full or duplicate."""
        if conn.peer == self.owner:
            raise ValueError(f"node {self.owner} cannot connect to itself")
        if conn.peer in self._conns or self.is_full:
            return False
        self._conns[conn.peer] = conn
        return True

    def remove(self, peer: int) -> Optional[Connection]:
        """Drop the connection to ``peer``; returns it if present."""
        return self._conns.pop(peer, None)

    def get(self, peer: int) -> Optional[Connection]:
        return self._conns.get(peer)

    def has(self, peer: int) -> bool:
        return peer in self._conns

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._conns)

    @property
    def is_full(self) -> bool:
        return len(self._conns) >= self.max_connections

    @property
    def missing(self) -> int:
        """How many more connections fit under the cap."""
        return self.max_connections - len(self._conns)

    def peers(self) -> List[int]:
        """Connected peer ids (stable insertion order)."""
        return list(self._conns)

    def random_connections(self) -> List[Connection]:
        """The Random algorithm's long-range connections."""
        return [c for c in self._conns.values() if c.random]

    def has_random(self) -> bool:
        return any(c.random for c in self._conns.values())

    def __iter__(self) -> Iterator[Connection]:
        return iter(list(self._conns.values()))

    def __len__(self) -> int:
        return len(self._conns)

    def clear(self) -> List[Connection]:
        """Drop everything (slave reset); returns what was dropped."""
        dropped = list(self._conns.values())
        self._conns.clear()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ConnectionTable node={self.owner} "
            f"{len(self._conns)}/{self.max_connections} peers={self.peers()}>"
        )
