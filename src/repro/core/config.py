"""P2P layer parameters (Table 2 of the paper plus timing constants).

Table 2 gives the structural constants (NHOPS_INITIAL, MAXNHOPS,
MAXNCONN, MAXDIST, MAXNSLAVES, query TTL).  The paper does not publish
its timer values; the defaults here are chosen so that several
(re)configuration cycles and ping rounds fit in the simulated hour --
they are plain dataclass fields, so sweeps can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["P2pConfig"]


@dataclass(frozen=True)
class P2pConfig:
    """Constants shared by the four (re)configuration algorithms."""

    # ---- Table 2 -----------------------------------------------------
    #: MAXNCONN: maximum overlay connections per node
    max_connections: int = 3
    #: NHOPS_INITIAL: first discovery radius (ad-hoc hops)
    nhops_initial: int = 2
    #: MAXNHOPS: maximum discovery radius
    max_nhops: int = 6
    #: NHOPS: the Basic algorithm's fixed discovery radius
    nhops_basic: int = 6
    #: MAXDIST: maximum hop distance of a maintained connection
    max_dist: int = 6
    #: MAXNSLAVES: slaves a Hybrid master accepts
    max_slaves: int = 3

    # ---- timers (not published; see module docstring) ------------------
    #: TIMER_INITIAL: gap between connection attempts (doubles up to
    #: MAXTIMER when a full nhops cycle failed; reset on success)
    timer_initial: float = 10.0
    #: MAXTIMER cap for the exponential back-off
    max_timer: float = 160.0
    #: TIMER: the Basic algorithm's fixed retry gap
    timer_basic: float = 10.0
    #: keep-alive period of the connection initiator
    ping_interval: float = 10.0
    #: how long the initiator waits for a pong before closing
    pong_timeout: float = 5.0
    #: acceptor closes if no ping for ping_interval * this factor
    ping_deadline_factor: float = 2.5
    #: seeker-side handshake timeout (offer accepted, confirm pending)
    handshake_timeout: float = 5.0
    #: how long the Random algorithm collects offers before picking the
    #: farthest responder
    random_offer_wait: float = 3.0
    #: MAXTIMERMASTER: a master with zero slaves for this long resets
    master_timeout: float = 60.0
    #: RESERVED-state slave handshake timeout (Hybrid)
    reserve_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if not (1 <= self.nhops_initial <= self.max_nhops):
            raise ValueError("need 1 <= nhops_initial <= max_nhops")
        if self.timer_initial <= 0 or self.max_timer < self.timer_initial:
            raise ValueError("need 0 < timer_initial <= max_timer")
        if self.max_slaves < 1:
            raise ValueError("max_slaves must be >= 1")

    @property
    def ping_deadline(self) -> float:
        """Acceptor-side silence limit before closing a connection."""
        return self.ping_interval * self.ping_deadline_factor
