"""P2P overlay core: the paper's contribution plus the query plane."""

from .algorithms import (
    ALGORITHMS,
    BasicAlgorithm,
    HybridAlgorithm,
    PeerState,
    RandomAlgorithm,
    ReconfigAlgorithm,
    RegularAlgorithm,
    make_algorithm,
)
from .config import P2pConfig
from .connection import Connection, ConnectionTable
from .files import FileStore, place_files, zipf_frequencies
from .messages import (
    Capture,
    ConnectAccept,
    ConnectConfirm,
    ConnectOffer,
    Discover,
    DiscoverReply,
    P2pMessage,
    Ping,
    Pong,
    Query,
    QueryHit,
    SlaveAccept,
    SlaveConfirm,
    SlaveRequest,
)
from .overlay import FLOOD_KIND, OverlayNetwork
from .query import QueryConfig, QueryEngine, QueryRecord
from .servent import P2P_KIND, Servent

__all__ = [
    "ALGORITHMS",
    "BasicAlgorithm",
    "HybridAlgorithm",
    "PeerState",
    "RandomAlgorithm",
    "ReconfigAlgorithm",
    "RegularAlgorithm",
    "make_algorithm",
    "P2pConfig",
    "Connection",
    "ConnectionTable",
    "FileStore",
    "place_files",
    "zipf_frequencies",
    "Capture",
    "ConnectAccept",
    "ConnectConfirm",
    "ConnectOffer",
    "Discover",
    "DiscoverReply",
    "P2pMessage",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "SlaveAccept",
    "SlaveConfirm",
    "SlaveRequest",
    "FLOOD_KIND",
    "OverlayNetwork",
    "QueryConfig",
    "QueryEngine",
    "QueryRecord",
    "P2P_KIND",
    "Servent",
]
