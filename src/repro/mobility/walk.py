"""Random-walk (random-direction) mobility.

Not used by the paper's headline experiments but provided for the
future-work sweeps (§8: "effects of ... mobility"): each epoch the node
picks a uniform direction and constant speed and walks for a fixed epoch
duration, reflecting off the area boundary.  Reflection is implemented by
clipping the epoch at the first boundary crossing, which keeps segments
linear (the trajectory stays piecewise-linear as the base class needs).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["RandomWalk"]


class RandomWalk(MobilityModel):
    """Boundary-reflecting random walk with per-epoch direction changes.

    Parameters
    ----------
    speed:
        Constant movement speed (m/s).
    epoch:
        Nominal duration of each straight-line leg (s); legs are cut
        short at area boundaries.
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        speed: float = 1.0,
        epoch: float = 60.0,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        self.speed = float(speed)
        self.epoch = float(epoch)
        super().__init__(n, area, rng)

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        theta = float(self._rngs[i].uniform(0.0, 2.0 * np.pi))
        vel = np.array([np.cos(theta), np.sin(theta)]) * self.speed
        dur = self.epoch
        # Clip the leg at the first boundary crossing along each axis.
        for axis, limit in ((0, self.area.width), (1, self.area.height)):
            v = vel[axis]
            if v > 1e-12:
                dur = min(dur, (limit - pos[axis]) / v)
            elif v < -1e-12:
                dur = min(dur, (0.0 - pos[axis]) / v)
        dur = max(dur, 1e-6)  # already on a boundary moving outwards
        dest = pos + vel * dur
        # Numerical safety: keep strictly inside.
        dest[0] = min(max(dest[0], 0.0), self.area.width)
        dest[1] = min(max(dest[1], 0.0), self.area.height)
        return dur, dest
