"""Random Direction mobility (Camp et al. survey, §2.3).

The node picks a uniform direction, travels in it *all the way to the
area boundary*, pauses there, then picks a new direction.  Compared to
random waypoint, this removes the well-known density bias toward the
area centre -- nodes spend more time near the edges, which stresses the
(re)configuration algorithms with longer, sparser paths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["RandomDirection"]


class RandomDirection(MobilityModel):
    """Travel to the boundary, pause, turn.

    Parameters
    ----------
    min_speed, max_speed:
        Uniform speed range (m/s), lower bound > 0.
    max_pause:
        Uniform pause bound at each boundary hit (s).
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        min_speed: float = 0.1,
        max_speed: float = 1.0,
        max_pause: float = 60.0,
    ) -> None:
        if not 0 < min_speed <= max_speed:
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if max_pause < 0:
            raise ValueError(f"max_pause must be >= 0, got {max_pause}")
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.max_pause = float(max_pause)
        self._pause_next = np.zeros(n, dtype=bool)
        super().__init__(n, area, rng)

    def _time_to_boundary(self, pos: np.ndarray, vel: np.ndarray) -> float:
        """Seconds until the ray pos + t*vel first exits the area."""
        t_exit = np.inf
        for axis, limit in ((0, self.area.width), (1, self.area.height)):
            v = vel[axis]
            if v > 1e-12:
                t_exit = min(t_exit, (limit - pos[axis]) / v)
            elif v < -1e-12:
                t_exit = min(t_exit, (0.0 - pos[axis]) / v)
        return float(t_exit)

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        rng = self._rngs[i]
        if self._pause_next[i]:
            self._pause_next[i] = False
            return max(float(rng.uniform(0.0, self.max_pause)), 1e-6), pos.copy()
        self._pause_next[i] = True
        theta = float(rng.uniform(0.0, 2.0 * np.pi))
        speed = float(rng.uniform(self.min_speed, self.max_speed))
        vel = speed * np.array([np.cos(theta), np.sin(theta)])
        dur = self._time_to_boundary(pos, vel)
        if not np.isfinite(dur) or dur <= 1e-9:
            # Already on the boundary pointing outward: tiny pause, re-roll.
            return 1e-6, pos.copy()
        dest = pos + vel * dur
        dest[0] = min(max(dest[0], 0.0), self.area.width)
        dest[1] = min(max(dest[1], 0.0), self.area.height)
        return dur, dest
