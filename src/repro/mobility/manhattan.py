"""Manhattan-grid mobility (Camp et al. survey; urban street maps).

Nodes move only along the lines of a regular street grid.  At each
intersection the node keeps its direction with probability
``p_straight``, otherwise turns uniformly onto one of the available
perpendicular streets; at area edges it turns back in.  Speed is drawn
per street segment.

Useful for the §8 mobility studies: compared to random waypoint it
concentrates nodes on lines (locally dense, globally stringy), a very
different connectivity regime for the overlay to survive.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["ManhattanGrid"]


class ManhattanGrid(MobilityModel):
    """Street-grid mobility.

    Parameters
    ----------
    blocks_x, blocks_y:
        Number of city blocks per axis (streets = blocks + 1).
    min_speed, max_speed:
        Uniform per-segment speed range (m/s).
    p_straight:
        Probability of continuing straight at an intersection when
        possible.
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        blocks_x: int = 4,
        blocks_y: int = 4,
        min_speed: float = 0.1,
        max_speed: float = 1.0,
        p_straight: float = 0.5,
    ) -> None:
        if blocks_x < 1 or blocks_y < 1:
            raise ValueError("need at least one block per axis")
        if not 0 < min_speed <= max_speed:
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if not 0 <= p_straight <= 1:
            raise ValueError(f"p_straight must be in [0, 1], got {p_straight}")
        self.blocks_x = int(blocks_x)
        self.blocks_y = int(blocks_y)
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.p_straight = float(p_straight)
        self._dirs = np.zeros((n, 2))  # current direction per node
        super().__init__(n, area, rng)
        # Snap initial positions onto the nearest intersection.
        sx = area.width / self.blocks_x
        sy = area.height / self.blocks_y
        gx = np.round(self._origin[:, 0] / sx) * sx
        gy = np.round(self._origin[:, 1] / sy) * sy
        snapped = np.column_stack([gx, gy])
        self._origin = snapped.copy()
        self._dest = snapped.copy()
        self._t0 = np.zeros(n)
        self._t1 = np.zeros(n)
        # re-prime segments from the snapped intersections
        for i in range(n):
            dur, dest = self._next_segment(i, 0.0, snapped[i])
            self._t1[i] = dur
            self._dest[i] = dest

    # ------------------------------------------------------------------
    def _grid_spacing(self) -> Tuple[float, float]:
        return self.area.width / self.blocks_x, self.area.height / self.blocks_y

    def _available_directions(self, pos: np.ndarray) -> list:
        """Unit direction vectors leading to an adjacent intersection."""
        sx, sy = self._grid_spacing()
        out = []
        eps = 1e-6
        if pos[0] + sx <= self.area.width + eps:
            out.append(np.array([1.0, 0.0]))
        if pos[0] - sx >= -eps:
            out.append(np.array([-1.0, 0.0]))
        if pos[1] + sy <= self.area.height + eps:
            out.append(np.array([0.0, 1.0]))
        if pos[1] - sy >= -eps:
            out.append(np.array([0.0, -1.0]))
        return out

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        rng = self._rngs[i]
        sx, sy = self._grid_spacing()
        options = self._available_directions(pos)
        cur = self._dirs[i]
        straight = next(
            (d for d in options if np.allclose(d, cur)), None
        )
        if straight is not None and rng.random() < self.p_straight:
            direction = straight
        else:
            # turn: prefer perpendicular / any available street
            turns = [d for d in options if not np.allclose(d, cur)]
            pool = turns if turns else options
            direction = pool[int(rng.integers(len(pool)))]
        self._dirs[i] = direction
        step = sx if direction[0] != 0 else sy
        speed = float(rng.uniform(self.min_speed, self.max_speed))
        dest = pos + direction * step
        dest[0] = min(max(dest[0], 0.0), self.area.width)
        dest[1] = min(max(dest[1], 0.0), self.area.height)
        return step / speed, dest
