"""Mobility model base class.

Positions are *functions of time*: each node follows a piecewise-linear
trajectory made of segments ``(t0, t1, origin, dest)``; within a segment
the node moves linearly from ``origin`` (at ``t0``) to ``dest`` (at
``t1``).  A pause is a segment with ``origin == dest``.

The base class stores all segments in flat numpy arrays so that
evaluating *every* node's position at a query time is a single
vectorized expression -- this is the hot path of the whole simulator
(the radio layer asks for all positions whenever a packet is sent).
Concrete models only implement :meth:`_next_segment`, which generates
the next segment for one node.

All models are deterministic given their ``numpy.random.Generator``.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

__all__ = ["Area", "MobilityModel"]


class Area:
    """An axis-aligned rectangular deployment area ``[0,w] x [0,h]``.

    The paper deploys nodes on a 100 m x 100 m square.
    """

    __slots__ = ("width", "height")

    def __init__(self, width: float = 100.0, height: float = 100.0) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"area dimensions must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    def contains(self, pts: np.ndarray, atol: float = 1e-9) -> np.ndarray:
        """Boolean mask: which rows of ``pts`` (n,2) lie inside the area."""
        pts = np.asarray(pts, dtype=float)
        return (
            (pts[..., 0] >= -atol)
            & (pts[..., 0] <= self.width + atol)
            & (pts[..., 1] >= -atol)
            & (pts[..., 1] <= self.height + atol)
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniformly sample ``n`` points; returns an (n,2) array."""
        pts = rng.random((n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Area({self.width}x{self.height})"


class MobilityModel(abc.ABC):
    """Piecewise-linear mobility with lazy, vectorized evaluation.

    Parameters
    ----------
    n:
        Number of nodes.
    area:
        Deployment area; initial positions are uniform over it.
    rng:
        Random stream (owned by this model).

    Subclasses implement :meth:`_next_segment` returning the duration and
    destination of a node's next movement segment.

    Notes
    -----
    Time must be queried non-decreasingly *per call site is not required*;
    the model keeps full history-free state and only supports forward
    queries (asking for a time before an already-generated segment start
    is fine; asking before a previous query is fine as long as it is not
    before the current segment's start, which cannot happen with a
    monotone simulation clock).
    """

    def __init__(self, n: int, area: Area, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = int(n)
        self.area = area
        self.rng = rng
        init = area.sample(rng, self.n)
        # Each node draws from its own spawned stream so its trajectory is
        # a pure function of (seed, node) -- independent of how often or in
        # what order positions() is queried.
        self._rngs = rng.spawn(self.n)
        # Current segment per node.
        self._t0 = np.zeros(self.n)
        self._t1 = np.zeros(self.n)
        self._origin = init.copy()
        self._dest = init.copy()
        # Prime the first segment of every node so spans are positive.
        for i in range(self.n):
            dur, dest = self._next_segment(i, 0.0, init[i])
            if dur <= 0:
                raise ValueError(
                    f"{type(self).__name__}._next_segment returned duration {dur}"
                )
            self._t1[i] = dur
            self._dest[i] = dest

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _next_segment(
        self, i: int, t: float, pos: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Generate node ``i``'s next segment starting at time ``t``.

        Parameters
        ----------
        i: node index.
        t: segment start time.
        pos: node position at ``t`` (shape (2,)).

        Returns
        -------
        (duration, dest):
            Segment length in seconds (> 0) and destination point.  A
            pause returns ``(pause, pos)``.

        Implementations must draw randomness from ``self._rngs[i]`` only,
        so that node trajectories are independent of query order.
        """

    # ------------------------------------------------------------------
    def _refresh(self, t: float) -> None:
        """Roll expired segments forward so every segment covers ``t``."""
        expired = np.flatnonzero(self._t1 < t)
        for i in expired:
            # A node may complete several segments between queries.
            while self._t1[i] < t:
                start = self._t1[i]
                pos = self._dest[i]
                dur, dest = self._next_segment(int(i), float(start), pos)
                if dur <= 0:
                    raise ValueError(
                        f"{type(self).__name__}._next_segment returned duration {dur}"
                    )
                self._t0[i] = start
                self._t1[i] = start + dur
                self._origin[i] = pos
                self._dest[i] = dest

    def positions(self, t: float) -> np.ndarray:
        """All node positions at time ``t`` as an (n,2) float array.

        The returned array is freshly allocated; callers may mutate it.
        """
        self._refresh(t)
        span = self._t1 - self._t0
        # Pauses have span>0 too, so no division guard needed beyond this.
        frac = np.clip((t - self._t0) / span, 0.0, 1.0)[:, None]
        return self._origin + frac * (self._dest - self._origin)

    def position(self, i: int, t: float) -> np.ndarray:
        """Position of node ``i`` at time ``t`` (shape (2,))."""
        return self.positions(t)[i]
