"""Mobility model base class.

Positions are *functions of time*: each node follows a piecewise-linear
trajectory made of segments ``(t0, t1, origin, dest)``; within a segment
the node moves linearly from ``origin`` (at ``t0``) to ``dest`` (at
``t1``).  A pause is a segment with ``origin == dest``.

The base class stores all segments in flat numpy arrays so that
evaluating *every* node's position at a query time is a single
vectorized expression -- this is the hot path of the whole simulator
(the radio layer asks for all positions whenever a packet is sent).
Concrete models only implement :meth:`_next_segment`, which generates
the next segment for one node.

All models are deterministic given their ``numpy.random.Generator``.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

__all__ = ["Area", "MobilityModel", "NEVER_THRESHOLD"]

#: Segment end times at or beyond this are treated as "never expires"
#: (static nodes park on a pause of duration 1e12): their kinetic
#: horizon is infinite instead of a bogus far-future wakeup.
NEVER_THRESHOLD = 1e10

#: Multiplicative slack applied to predicted cell-crossing offsets so
#: floating-point error can only *under*-estimate the true crossing
#: time.  An early horizon merely costs one spurious recompute; a late
#: one would leave a stale grid bin (wrong neighbor answers).
_CROSS_SLACK = 1.0 - 1e-9


class Area:
    """An axis-aligned rectangular deployment area ``[0,w] x [0,h]``.

    The paper deploys nodes on a 100 m x 100 m square.
    """

    __slots__ = ("width", "height")

    def __init__(self, width: float = 100.0, height: float = 100.0) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"area dimensions must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    def contains(self, pts: np.ndarray, atol: float = 1e-9) -> np.ndarray:
        """Boolean mask: which rows of ``pts`` (n,2) lie inside the area."""
        pts = np.asarray(pts, dtype=float)
        return (
            (pts[..., 0] >= -atol)
            & (pts[..., 0] <= self.width + atol)
            & (pts[..., 1] >= -atol)
            & (pts[..., 1] <= self.height + atol)
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniformly sample ``n`` points; returns an (n,2) array."""
        pts = rng.random((n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Area({self.width}x{self.height})"


class MobilityModel(abc.ABC):
    """Piecewise-linear mobility with lazy, vectorized evaluation.

    Parameters
    ----------
    n:
        Number of nodes.
    area:
        Deployment area; initial positions are uniform over it.
    rng:
        Random stream (owned by this model).

    Subclasses implement :meth:`_next_segment` returning the duration and
    destination of a node's next movement segment.

    Notes
    -----
    Time must be queried non-decreasingly *per call site is not required*;
    the model keeps full history-free state and only supports forward
    queries (asking for a time before an already-generated segment start
    is fine; asking before a previous query is fine as long as it is not
    before the current segment's start, which cannot happen with a
    monotone simulation clock).
    """

    def __init__(self, n: int, area: Area, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = int(n)
        self.area = area
        self.rng = rng
        init = area.sample(rng, self.n)
        # Each node draws from its own spawned stream so its trajectory is
        # a pure function of (seed, node) -- independent of how often or in
        # what order positions() is queried.
        self._rngs = rng.spawn(self.n)
        # Current segment per node.
        self._t0 = np.zeros(self.n)
        self._t1 = np.zeros(self.n)
        self._origin = init.copy()
        self._dest = init.copy()
        # Prime the first segment of every node so spans are positive.
        for i in range(self.n):
            dur, dest = self._next_segment(i, 0.0, init[i])
            if dur <= 0:
                raise ValueError(
                    f"{type(self).__name__}._next_segment returned duration {dur}"
                )
            self._t1[i] = dur
            self._dest[i] = dest

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _next_segment(
        self, i: int, t: float, pos: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Generate node ``i``'s next segment starting at time ``t``.

        Parameters
        ----------
        i: node index.
        t: segment start time.
        pos: node position at ``t`` (shape (2,)).

        Returns
        -------
        (duration, dest):
            Segment length in seconds (> 0) and destination point.  A
            pause returns ``(pause, pos)``.

        Implementations must draw randomness from ``self._rngs[i]`` only,
        so that node trajectories are independent of query order.
        """

    # ------------------------------------------------------------------
    def _refresh(self, t: float) -> None:
        """Roll expired segments forward so every segment covers ``t``."""
        expired = np.flatnonzero(self._t1 < t)
        for i in expired:
            # A node may complete several segments between queries.
            while self._t1[i] < t:
                start = self._t1[i]
                pos = self._dest[i]
                dur, dest = self._next_segment(int(i), float(start), pos)
                if dur <= 0:
                    raise ValueError(
                        f"{type(self).__name__}._next_segment returned duration {dur}"
                    )
                self._t0[i] = start
                self._t1[i] = start + dur
                self._origin[i] = pos
                self._dest[i] = dest

    def positions(self, t: float) -> np.ndarray:
        """All node positions at time ``t`` as an (n,2) float array.

        The returned array is freshly allocated; callers may mutate it.
        """
        self._refresh(t)
        span = self._t1 - self._t0
        # Pauses have span>0 too, so no division guard needed beyond this.
        frac = np.clip((t - self._t0) / span, 0.0, 1.0)[:, None]
        return self._origin + frac * (self._dest - self._origin)

    def position(self, i: int, t: float) -> np.ndarray:
        """Position of node ``i`` at time ``t`` (shape (2,))."""
        return self.positions(t)[i]

    def positions_of(self, ids: np.ndarray, t: float) -> np.ndarray:
        """Positions of the nodes in ``ids`` at time ``t``.

        Returns a freshly-allocated ``(len(ids), 2)`` array that is
        bitwise-identical to ``positions(t)[ids]``: the same elementwise
        IEEE operations are evaluated on the selected rows, so callers
        that track positions incrementally (the predictive topology
        lane) see exactly the floats the full evaluation would produce.
        """
        self._refresh(t)
        ids = np.asarray(ids, dtype=np.int64)
        t0 = self._t0[ids]
        span = self._t1[ids] - t0
        frac = np.clip((t - t0) / span, 0.0, 1.0)[:, None]
        origin = self._origin[ids]
        return origin + frac * (self._dest[ids] - origin)

    def current_segments(
        self, t: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Copies of the per-node segments ``(t0, t1, origin, dest)``.

        When ``t`` is given, expired segments are rolled forward first so
        every returned segment covers ``t``.  This is the contract
        surface the kinetic horizon math (and its invariant tests) rely
        on: within ``[t0, t1]`` the node is exactly at
        ``origin + clip((t - t0)/(t1 - t0), 0, 1) * (dest - origin)``.
        """
        if t is not None:
            self._refresh(t)
        return (
            self._t0.copy(),
            self._t1.copy(),
            self._origin.copy(),
            self._dest.copy(),
        )

    # ------------------------------------------------------------------
    # kinetic horizons (predictive topology lane)
    # ------------------------------------------------------------------
    def next_change_horizon(
        self,
        t: float,
        pitch: Optional[float] = None,
        ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Earliest future time each node's state can change, closed form.

        Without ``pitch`` this is the **position-change horizon**: the
        earliest time strictly after ``t`` at which a node's position
        may differ from its position at ``t``.  Paused nodes (segment
        with ``origin == dest``) return their segment end ``t1`` -- the
        first instant a freshly-drawn segment could move them; parked
        nodes (``t1`` beyond :data:`NEVER_THRESHOLD`, e.g. the static
        model) return ``inf``; moving nodes return ``t`` itself (their
        position is changing continuously).

        With ``pitch`` this is the **cell-crossing horizon** for a
        uniform grid of that pitch: the earliest time after ``t`` at
        which ``floor(position / pitch)`` can change on either axis.
        For moving nodes the first grid-line crossing along the segment
        has a closed form from origin/velocity; the prediction is
        conservatively shrunk (it may only under-estimate the true
        crossing) and capped at the segment end ``t1``, past which the
        model re-randomizes and nothing can be predicted.  Paused nodes
        again return ``t1`` (or ``inf`` when parked forever).

        Horizons are *absolute* times and remain valid until the node's
        segment rolls over; callers may cache them and recompute only
        for nodes whose horizon has passed.  ``ids`` restricts the
        computation (and the returned array) to a subset of nodes.
        """
        self._refresh(t)
        t = float(t)
        if ids is None:
            t0, t1 = self._t0, self._t1
            origin, dest = self._origin, self._dest
        else:
            ids = np.asarray(ids, dtype=np.int64)
            t0, t1 = self._t0[ids], self._t1[ids]
            origin, dest = self._origin[ids], self._dest[ids]
        delta = dest - origin
        paused = (delta == 0.0).all(axis=1)
        horizon = np.where(paused & (t1 >= NEVER_THRESHOLD), np.inf, t1)
        moving = np.flatnonzero(~paused)
        if not moving.size:
            return horizon
        if pitch is None:
            horizon[moving] = t
            return horizon
        pitch = float(pitch)
        span = (t1 - t0)[moving]
        vel = delta[moving] / span[:, None]
        frac = np.clip((t - t0[moving]) / span, 0.0, 1.0)[:, None]
        pos = origin[moving] + frac * delta[moving]
        cell = np.floor(pos / pitch)
        # Per-axis time to the next grid line in the direction of travel.
        dt = np.full_like(pos, np.inf)
        fwd = vel > 0.0
        back = vel < 0.0
        dt[fwd] = ((cell + 1.0) * pitch - pos)[fwd] / vel[fwd]
        dt[back] = (pos - cell * pitch)[back] / -vel[back]
        cross = t + np.maximum(dt.min(axis=1), 0.0) * _CROSS_SLACK
        horizon[moving] = np.minimum(cross, t1[moving])
        return horizon
