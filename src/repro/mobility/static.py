"""Static (no movement) placement -- the zero-mobility baseline.

Useful for unit tests and for isolating protocol behaviour from
mobility-induced churn.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["Static"]


class Static(MobilityModel):
    """Nodes stay where they were initially (uniformly) placed.

    Optionally accepts explicit ``positions`` (overriding the uniform
    placement), which tests use to build hand-crafted topologies.
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        positions: np.ndarray | None = None,
    ) -> None:
        super().__init__(n, area, rng)
        if positions is not None:
            pts = np.asarray(positions, dtype=float)
            if pts.shape != (n, 2):
                raise ValueError(f"positions must be ({n},2), got {pts.shape}")
            if not area.contains(pts).all():
                raise ValueError("explicit positions fall outside the area")
            self._origin = pts.copy()
            self._dest = pts.copy()

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        # One giant pause; effectively never regenerated.
        return 1e12, pos.copy()
