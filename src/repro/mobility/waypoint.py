"""Random-waypoint mobility (the paper's "Random Way model" [Camp et al.]).

Each node alternates:

1. a pause drawn uniformly from ``[0, max_pause]`` (the paper uses a
   maximum pause of 100 s), then
2. a straight-line move to a waypoint drawn uniformly from the area, at
   a speed drawn uniformly from ``(min_speed, max_speed]`` (the paper
   uses a 1.0 m/s maximum, human walking pace).

``min_speed`` defaults to a small positive value; the classic pitfall of
random waypoint is that ``min_speed = 0`` makes average speed decay over
time (nodes get stuck in near-zero-speed epochs), so we keep a floor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["RandomWaypoint"]


class RandomWaypoint(MobilityModel):
    """Random-waypoint model with uniform pauses and speeds.

    Parameters
    ----------
    n, area, rng:
        See :class:`~repro.mobility.base.MobilityModel`.
    max_speed:
        Upper bound on movement speed (m/s).  Paper: 1.0.
    min_speed:
        Lower bound (must be > 0 to avoid the speed-decay pathology).
    max_pause:
        Upper bound on pause duration (s).  Paper: 100.
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        max_speed: float = 1.0,
        min_speed: float = 0.05,
        max_pause: float = 100.0,
    ) -> None:
        if not 0 < min_speed <= max_speed:
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got {min_speed}, {max_speed}"
            )
        if max_pause < 0:
            raise ValueError(f"max_pause must be >= 0, got {max_pause}")
        self.max_speed = float(max_speed)
        self.min_speed = float(min_speed)
        self.max_pause = float(max_pause)
        # Per-node flag: is the *next* segment a pause?  Nodes start paused
        # (they were just placed), matching the survey's description.
        self._pause_next = np.ones(n, dtype=bool)
        super().__init__(n, area, rng)

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        if self._pause_next[i]:
            self._pause_next[i] = False
            # A zero draw would create a zero-length segment; floor it.
            pause = max(float(self._rngs[i].uniform(0.0, self.max_pause)), 1e-6)
            return pause, pos.copy()
        self._pause_next[i] = True
        dest = self.area.sample(self._rngs[i], 1)[0]
        speed = float(self._rngs[i].uniform(self.min_speed, self.max_speed))
        dist = float(np.hypot(*(dest - pos)))
        if dist < 1e-12:  # degenerate waypoint: treat as a tiny pause
            return 1e-6, pos.copy()
        return dist / speed, dest
