"""Mobility models from the Camp et al. survey the paper cites.

Random waypoint is the paper's model; random walk, random direction and
Gauss-Markov power the §8 "effects of mobility" studies; static is the
zero-mobility baseline.
"""

from .base import Area, MobilityModel
from .direction import RandomDirection
from .gauss_markov import GaussMarkov
from .manhattan import ManhattanGrid
from .static import Static
from .walk import RandomWalk
from .waypoint import RandomWaypoint

__all__ = [
    "Area",
    "MobilityModel",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "GaussMarkov",
    "ManhattanGrid",
    "Static",
]
