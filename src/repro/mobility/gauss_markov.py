"""Gauss-Markov mobility (Camp et al. survey, §2.5).

The paper's future work (§8) targets "the effects of ... mobility"; the
Camp-Boleng-Davies survey it cites [1] lists Gauss-Markov as the
standard *temporally correlated* model: speed and direction evolve as

    s_t = a * s_{t-1} + (1 - a) * mean_speed     + sqrt(1 - a^2) * w_s
    d_t = a * d_{t-1} + (1 - a) * mean_direction + sqrt(1 - a^2) * w_d

with ``a`` the memory parameter (0 = Brownian, 1 = linear motion) and
``w`` Gaussian noise.  Near an edge the mean direction is steered back
toward the area centre, the survey's standard boundary treatment.

Each update interval becomes one linear segment, so the model fits the
piecewise-linear machinery of :class:`~repro.mobility.base.MobilityModel`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Area, MobilityModel

__all__ = ["GaussMarkov"]


class GaussMarkov(MobilityModel):
    """Temporally correlated mobility.

    Parameters
    ----------
    alpha:
        Memory parameter in [0, 1].
    mean_speed:
        Asymptotic mean speed (m/s).
    speed_sigma, direction_sigma:
        Standard deviations of the Gaussian innovations.
    update_interval:
        Seconds between (speed, direction) updates = segment length.
    margin:
        Distance from an edge at which the mean direction is steered
        toward the centre.
    """

    def __init__(
        self,
        n: int,
        area: Area,
        rng: np.random.Generator,
        *,
        alpha: float = 0.75,
        mean_speed: float = 1.0,
        speed_sigma: float = 0.3,
        direction_sigma: float = 0.6,
        update_interval: float = 5.0,
        margin: float = 5.0,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if mean_speed <= 0:
            raise ValueError(f"mean_speed must be positive, got {mean_speed}")
        if update_interval <= 0:
            raise ValueError(f"update_interval must be positive, got {update_interval}")
        self.alpha = float(alpha)
        self.mean_speed = float(mean_speed)
        self.speed_sigma = float(speed_sigma)
        self.direction_sigma = float(direction_sigma)
        self.update_interval = float(update_interval)
        self.margin = float(margin)
        self._speed = np.full(n, mean_speed)
        self._dir = np.zeros(n)
        self._dir_init = np.zeros(n, dtype=bool)
        super().__init__(n, area, rng)

    def _mean_direction(self, pos: np.ndarray, current: float) -> float:
        """Steer toward the centre when hugging an edge (survey §2.5)."""
        x, y = pos
        w, h = self.area.width, self.area.height
        near_left = x < self.margin
        near_right = x > w - self.margin
        near_bottom = y < self.margin
        near_top = y > h - self.margin
        if not (near_left or near_right or near_bottom or near_top):
            return current
        return float(np.arctan2(h / 2.0 - y, w / 2.0 - x))

    def _next_segment(self, i: int, t: float, pos: np.ndarray) -> Tuple[float, np.ndarray]:
        rng = self._rngs[i]
        if not self._dir_init[i]:
            self._dir[i] = rng.uniform(0.0, 2.0 * np.pi)
            self._dir_init[i] = True
        a = self.alpha
        root = np.sqrt(max(1.0 - a * a, 0.0))
        mean_dir = self._mean_direction(pos, float(self._dir[i]))
        self._speed[i] = (
            a * self._speed[i]
            + (1 - a) * self.mean_speed
            + root * self.speed_sigma * rng.standard_normal()
        )
        self._speed[i] = float(np.clip(self._speed[i], 0.01, 3.0 * self.mean_speed))
        self._dir[i] = (
            a * self._dir[i]
            + (1 - a) * mean_dir
            + root * self.direction_sigma * rng.standard_normal()
        )
        vel = self._speed[i] * np.array([np.cos(self._dir[i]), np.sin(self._dir[i])])
        dest = pos + vel * self.update_interval
        # Clamp inside the area; the steering above makes this rare.
        dest[0] = min(max(dest[0], 0.0), self.area.width)
        dest[1] = min(max(dest[1], 0.0), self.area.height)
        return self.update_interval, dest
