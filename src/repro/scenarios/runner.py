"""Scenario runner: execute scenarios and harvest results.

A :class:`RunResult` carries everything the paper's figures need from
one run; ``run_repetitions`` reproduces the paper's repeated-simulation
methodology (33 repetitions in the paper; configurable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..metrics.aggregate import FileRankStats, per_file_stats
from ..metrics.analytics import AnalyticsEngine
from ..metrics.lifetimes import lifetime_summary
from ..obs.export import to_plain
from ..obs.manifest import RunManifest
from ..obs.schema import RUN_SCHEMA_VERSION, validate_run_dict
from .builder import Simulation, build_scenario
from .config import ScenarioConfig

__all__ = ["RunResult", "run_scenario", "run_repetitions"]


@dataclass
class RunResult:
    """Harvested outputs of one scenario run."""

    config: ScenarioConfig
    members: List[int]
    #: family -> per-member counts sorted decreasing (Figures 7-12 curves)
    sorted_received: Dict[str, np.ndarray]
    #: family -> network total
    totals: Dict[str, int]
    #: Figures 5/6 series, one entry per file rank
    file_stats: List[FileRankStats]
    #: final-overlay small-world stats (clustering, path length, refs)
    overlay_stats: Dict[str, float]
    #: per-node joules consumed
    energy: np.ndarray
    #: number of issued (closed) queries
    num_queries: int
    #: kernel events dispatched (cost diagnostics)
    events: int
    #: family -> load-balance metrics over members (gini, jain, ...)
    balance: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: lifetime stats of closed connections by class (regular / random)
    connection_lifetimes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: final registry counters/gauges, per-node labels folded
    counters: Dict[str, float] = field(default_factory=dict)
    #: sampled time-series rows (empty unless ``config.obs_interval > 0``)
    timeseries: List[Dict[str, float]] = field(default_factory=list)
    #: per-run provenance (config hash, seed, revision, wall clock)
    manifest: Optional[RunManifest] = None
    #: wall-clock ``{section: (seconds, calls)}`` breakdown
    wall: Dict[str, Tuple[float, int]] = field(default_factory=dict)

    def answers_series(self) -> np.ndarray:
        """Average answers per request by file rank (fig 5/6 right axis)."""
        return np.array([s.avg_answers for s in self.file_stats])

    def distance_series(self) -> np.ndarray:
        """Average min p2p distance by file rank (fig 5/6 left axis)."""
        return np.array([s.avg_min_p2p_hops for s in self.file_stats])

    # ------------------------------------------------------------------
    # versioned serialization (schema v1, see repro.obs.schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe schema-v1 dict (numpy arrays -> lists, NaN -> None)."""
        d: Dict[str, Any] = {
            "schema_version": RUN_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            # Flat convenience keys (kept for pre-schema consumers).
            "algorithm": self.config.algorithm,
            "num_nodes": self.config.num_nodes,
            "duration": self.config.duration,
            "seed": self.config.seed,
            "routing": self.config.routing,
            "members": [int(m) for m in self.members],
            "totals": dict(self.totals),
            "sorted_received": {k: v for k, v in self.sorted_received.items()},
            "file_stats": [
                {
                    "file_id": s.file_id,
                    "queries": s.queries,
                    "answered": s.answered,
                    "avg_answers": s.avg_answers,
                    "avg_min_p2p_hops": s.avg_min_p2p_hops,
                    "avg_min_adhoc_hops": s.avg_min_adhoc_hops,
                }
                for s in self.file_stats
            ],
            "overlay_stats": dict(self.overlay_stats),
            "energy": self.energy,
            "energy_total": float(self.energy.sum()),
            "num_queries": self.num_queries,
            "events": self.events,
            "balance": self.balance,
            "connection_lifetimes": self.connection_lifetimes,
        }
        obs: Dict[str, Any] = {}
        if self.counters:
            obs["counters"] = dict(self.counters)
        if self.timeseries:
            obs["timeseries"] = [dict(r) for r in self.timeseries]
        if self.manifest is not None:
            obs["manifest"] = self.manifest.to_dict()
        if self.wall:
            obs["wall"] = {
                k: {"seconds": s, "calls": c} for k, (s, c) in self.wall.items()
            }
        if obs:
            d["obs"] = obs
        return to_plain(d)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (validates against the schema)."""
        validate_run_dict(d)
        cfg = ScenarioConfig.from_dict(d["config"])

        def _nan(v):
            return float("nan") if v is None else float(v)

        obs = d.get("obs") or {}
        manifest_d = obs.get("manifest")
        wall_d = obs.get("wall") or {}
        return cls(
            config=cfg,
            members=[int(m) for m in d["members"]],
            sorted_received={
                k: np.asarray(v, dtype=np.int64)
                for k, v in d["sorted_received"].items()
            },
            totals={k: int(v) for k, v in d["totals"].items()},
            file_stats=[
                FileRankStats(
                    file_id=int(e["file_id"]),
                    queries=int(e["queries"]),
                    answered=int(e["answered"]),
                    avg_answers=float(e["avg_answers"]),
                    avg_min_p2p_hops=_nan(e["avg_min_p2p_hops"]),
                    avg_min_adhoc_hops=_nan(e["avg_min_adhoc_hops"]),
                )
                for e in d["file_stats"]
            ],
            overlay_stats=dict(d["overlay_stats"]),
            energy=np.asarray(d["energy"], dtype=float),
            num_queries=int(d["num_queries"]),
            events=int(d["events"]),
            balance={k: dict(v) for k, v in d["balance"].items()},
            connection_lifetimes={
                k: dict(v) for k, v in d["connection_lifetimes"].items()
            },
            counters=dict(obs.get("counters") or {}),
            timeseries=[dict(r) for r in (obs.get("timeseries") or [])],
            manifest=(
                RunManifest.from_dict(manifest_d, config=d["config"])
                if manifest_d
                else None
            ),
            wall={
                k: (float(v["seconds"]), int(v["calls"])) for k, v in wall_d.items()
            },
        )


def harvest(simulation: Simulation) -> RunResult:
    """Extract a RunResult from a finished simulation.

    All graph/collector analytics go through the simulation's
    :class:`~repro.metrics.analytics.AnalyticsEngine` (lanes picked by
    the config); results are exactly equal on every lane combination.
    """
    cfg = simulation.config
    metrics = simulation.metrics
    members = simulation.members
    records = simulation.overlay.query_records()
    registry = simulation.registry
    engine = simulation.analytics
    if engine is None:  # hand-built Simulation without an engine
        engine = AnalyticsEngine(registry=registry)
    return RunResult(
        config=cfg,
        members=members,
        sorted_received=engine.message_curves(metrics, members),
        totals=engine.message_totals(metrics),
        file_stats=per_file_stats(records, cfg.num_files),
        overlay_stats=engine.smallworld_stats(
            simulation.overlay.graph(), key="overlay"
        ),
        energy=simulation.world.energy.consumed.copy(),
        num_queries=len(records),
        events=simulation.sim.events_dispatched,
        balance=engine.load_balance(metrics, members),
        connection_lifetimes=lifetime_summary(simulation.lifetimes),
        counters=registry.aggregated(skip_kinds=("timer",)),
        timeseries=(
            [dict(r) for r in simulation.sampler.rows]
            if simulation.sampler is not None
            else []
        ),
        manifest=simulation.manifest,
        wall=registry.wall_times(),
    )


def run_scenario(cfg: ScenarioConfig) -> RunResult:
    """Build, run and harvest one scenario."""
    t0 = perf_counter()
    simulation = build_scenario(cfg)
    registry = simulation.registry
    registry.timer("wall", section="scenario.build").add(perf_counter() - t0)
    with registry.timed("scenario.run"):
        simulation.run()
    with registry.timed("scenario.harvest"):
        result = harvest(simulation)
    if simulation.analytics is not None:
        simulation.analytics.close()  # release the BFS worker pool, if any
    # Wall sections accumulated during harvest must reach the result too.
    result.wall = registry.wall_times()
    return result


def run_repetitions(cfg: ScenarioConfig, reps: int) -> List[RunResult]:
    """Run ``reps`` repetitions with consecutive seed offsets."""
    if reps < 1:
        raise ValueError(f"need reps >= 1, got {reps}")
    return [run_scenario(cfg.for_repetition(r)) for r in range(reps)]
