"""Scenario runner: execute scenarios and harvest results.

A :class:`RunResult` carries everything the paper's figures need from
one run; ``run_repetitions`` reproduces the paper's repeated-simulation
methodology (33 repetitions in the paper; configurable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..metrics.aggregate import FileRankStats, per_file_stats
from ..metrics.balance import load_balance_report
from ..metrics.collector import FAMILIES
from ..metrics.lifetimes import lifetime_summary
from ..metrics.smallworld import smallworld_stats
from .builder import Simulation, build_scenario
from .config import ScenarioConfig

__all__ = ["RunResult", "run_scenario", "run_repetitions"]


@dataclass
class RunResult:
    """Harvested outputs of one scenario run."""

    config: ScenarioConfig
    members: List[int]
    #: family -> per-member counts sorted decreasing (Figures 7-12 curves)
    sorted_received: Dict[str, np.ndarray]
    #: family -> network total
    totals: Dict[str, int]
    #: Figures 5/6 series, one entry per file rank
    file_stats: List[FileRankStats]
    #: final-overlay small-world stats (clustering, path length, refs)
    overlay_stats: Dict[str, float]
    #: per-node joules consumed
    energy: np.ndarray
    #: number of issued (closed) queries
    num_queries: int
    #: kernel events dispatched (cost diagnostics)
    events: int
    #: family -> load-balance metrics over members (gini, jain, ...)
    balance: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: lifetime stats of closed connections by class (regular / random)
    connection_lifetimes: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def answers_series(self) -> np.ndarray:
        """Average answers per request by file rank (fig 5/6 right axis)."""
        return np.array([s.avg_answers for s in self.file_stats])

    def distance_series(self) -> np.ndarray:
        """Average min p2p distance by file rank (fig 5/6 left axis)."""
        return np.array([s.avg_min_p2p_hops for s in self.file_stats])


def harvest(simulation: Simulation) -> RunResult:
    """Extract a RunResult from a finished simulation."""
    cfg = simulation.config
    metrics = simulation.metrics
    members = simulation.members
    records = simulation.overlay.query_records()
    return RunResult(
        config=cfg,
        members=members,
        sorted_received={
            fam: metrics.sorted_counts(fam, members) for fam in FAMILIES
        },
        totals={fam: metrics.total(fam) for fam in FAMILIES},
        file_stats=per_file_stats(records, cfg.num_files),
        overlay_stats=smallworld_stats(simulation.overlay.graph()),
        energy=simulation.world.energy.consumed.copy(),
        num_queries=len(records),
        events=simulation.sim.events_dispatched,
        balance={
            fam: load_balance_report(metrics.family_counts(fam)[members])
            for fam in FAMILIES
        },
        connection_lifetimes=lifetime_summary(simulation.lifetimes),
    )


def run_scenario(cfg: ScenarioConfig) -> RunResult:
    """Build, run and harvest one scenario."""
    simulation = build_scenario(cfg)
    simulation.run()
    return harvest(simulation)


def run_repetitions(cfg: ScenarioConfig, reps: int) -> List[RunResult]:
    """Run ``reps`` repetitions with consecutive seed offsets."""
    if reps < 1:
        raise ValueError(f"need reps >= 1, got {reps}")
    return [run_scenario(cfg.for_repetition(r)) for r in range(reps)]
