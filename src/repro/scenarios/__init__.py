"""Scenario configuration (Table 2), building and running."""

from .builder import Simulation, build_scenario
from .churn import ChurnEvent, ChurnProcess
from .config import ScenarioConfig
from .runner import RunResult, run_repetitions, run_scenario

__all__ = [
    "Simulation",
    "build_scenario",
    "ChurnEvent",
    "ChurnProcess",
    "ScenarioConfig",
    "RunResult",
    "run_repetitions",
    "run_scenario",
]
