"""Node death/birth (churn) process -- §8 future work.

"We are most interested in analyzing the effects of ... death/birth
rate of nodes in ad-hoc and p2p layers."

A :class:`ChurnProcess` kills live nodes with exponential inter-death
times and revives them after an exponential off-time, driving exactly
the reorganization behaviour the paper worries about: dead peers take
their references down with them, survivors' maintenance notices and
re-runs the (re)configuration machinery, and the revived node rejoins
from scratch.

Servent state is intentionally *not* reset on death: stale references
on both sides must be discovered and cleaned by the protocols (ping
timeouts, slave resets), not by simulator fiat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..net.world import World
from ..sim.kernel import Simulator

__all__ = ["ChurnProcess", "ChurnEvent"]


@dataclass(slots=True)
class ChurnEvent:
    """One death or rebirth."""

    time: float
    node: int
    kind: str  # "death" | "birth"


class ChurnProcess:
    """Random node failures and recoveries.

    Parameters
    ----------
    sim, world:
        Substrate handles.
    rng:
        Random stream for victim selection and timing.
    death_rate:
        Expected network-wide deaths per second (exponential
        inter-death times).  0 disables deaths.
    mean_downtime:
        Mean seconds a dead node stays down before rejoining
        (exponential); ``inf`` makes deaths permanent.
    immune:
        Nodes that never die (e.g. a sink under study).
    """

    def __init__(
        self,
        sim: Simulator,
        world: World,
        rng: np.random.Generator,
        *,
        death_rate: float,
        mean_downtime: float = 120.0,
        immune: Sequence[int] = (),
    ) -> None:
        if death_rate < 0:
            raise ValueError(f"death_rate must be >= 0, got {death_rate}")
        if mean_downtime <= 0:
            raise ValueError(f"mean_downtime must be positive, got {mean_downtime}")
        self.sim = sim
        self.world = world
        self.rng = rng
        self.death_rate = float(death_rate)
        self.mean_downtime = float(mean_downtime)
        self.immune = frozenset(int(i) for i in immune)
        self.events: List[ChurnEvent] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the process (idempotent)."""
        if self._started or self.death_rate == 0:
            return
        self._started = True
        self._schedule_next_death()

    def _schedule_next_death(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.death_rate))
        self.sim.schedule(delay, self._kill_one)

    def _kill_one(self) -> None:
        candidates = [
            i
            for i in range(self.world.n)
            if self.world.is_up(i) and i not in self.immune
        ]
        if candidates:
            victim = int(candidates[int(self.rng.integers(len(candidates)))])
            self.world.set_down(victim)
            self.events.append(ChurnEvent(self.sim.now, victim, "death"))
            if np.isfinite(self.mean_downtime):
                downtime = float(self.rng.exponential(self.mean_downtime))
                self.sim.schedule(downtime, self._revive, victim)
        self._schedule_next_death()

    def _revive(self, node: int) -> None:
        # Only revive nodes that are administratively down (a node that
        # also drained its battery stays dead).
        if self.world._down[node] and self.world.energy.alive(node):
            self.world.set_down(node, down=False)
            self.events.append(ChurnEvent(self.sim.now, node, "birth"))

    # ------------------------------------------------------------------
    @property
    def deaths(self) -> int:
        return sum(1 for e in self.events if e.kind == "death")

    @property
    def births(self) -> int:
        return sum(1 for e in self.events if e.kind == "birth")

    def timeline(self) -> List[Tuple[float, int, str]]:
        """The raw (time, node, kind) history."""
        return [(e.time, e.node, e.kind) for e in self.events]
