"""Scenario configuration -- Table 2 of the paper as a dataclass.

``ScenarioConfig()`` with no arguments is exactly the paper's default
scenario: 50 nodes on 100 m x 100 m, 10 m radio range, 75 % of nodes in
the p2p network, random-waypoint mobility at <= 1 m/s with <= 100 s
pauses, 20 Zipf-distributed files (40 % max frequency), 3600 simulated
seconds.  Every experiment is a variation of these fields.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional

from ..core.config import P2pConfig
from ..core.query import QueryConfig
from ..net.suppression import QUERY_POLICY_KINDS, parse_policy_spec

__all__ = ["ScenarioConfig"]

_MOBILITY_MODELS = (
    "waypoint",
    "walk",
    "direction",
    "gauss-markov",
    "manhattan",
    "static",
)
_ROUTINGS = ("aodv", "dsdv", "dsr", "oracle")
_ALGORITHMS = ("basic", "regular", "random", "hybrid")
_TOPOLOGIES = ("dense", "sparse", "auto")
_REFRESH_LANES = ("predictive", "delta", "full")
_QUEUES = ("calendar", "heap")
_ANALYTICS_EXECS = ("serial", "parallel")
_ANALYTICS_MODES = ("incremental", "full")

#: "auto" topology switches to the sparse grid backend at this node count.
AUTO_SPARSE_THRESHOLD = 400


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulation scenario (paper defaults)."""

    # ---- population and world (§7.2) -----------------------------------
    num_nodes: int = 50
    area_width: float = 100.0
    area_height: float = 100.0
    radio_range: float = 10.0
    #: fraction of nodes participating in the p2p overlay
    p2p_fraction: float = 0.75

    # ---- protocols ------------------------------------------------------
    algorithm: str = "regular"
    routing: str = "aodv"
    #: link layer: "ideal" (collision-free, the default substitution),
    #: "csma" (airtime + carrier sensing + receiver-side collisions) or
    #: "lossy" (smooth-disk probabilistic reception near the range edge)
    mac: str = "ideal"

    # ---- mobility (§7.2: Random Way, 1 m/s, 100 s pauses) ---------------
    mobility: str = "waypoint"
    max_speed: float = 1.0
    max_pause: float = 100.0

    # ---- workload --------------------------------------------------------
    num_files: int = 20
    max_freq: float = 0.4
    duration: float = 3600.0

    # ---- infrastructure ---------------------------------------------------
    seed: int = 0
    #: joules per node; inf disables energy depletion
    energy_capacity: float = float("inf")
    #: connectivity-snapshot quantum in seconds (see World); at the
    #: paper's <= 1 m/s this trades <= 0.25 m of position accuracy for a
    #: large event-burst speedup
    snapshot_interval: float = 0.25
    #: physical-topology backend: "dense" (reference O(n^2) matrix),
    #: "sparse" (uniform-grid spatial index, for large n) or "auto"
    #: (sparse once num_nodes >= AUTO_SPARSE_THRESHOLD)
    topology: str = "dense"
    #: legacy lane selector kept for archived configs: ``False`` pins
    #: the full-rebuild reference lane (overriding ``topology_refresh``
    #: when that is left at its default).  Rewritten in __post_init__ to
    #: mirror the resolved lane, so round-tripped configs stay coherent.
    topology_delta: bool = True
    #: topology snapshot-refresh lane: "predictive" (kinetic horizons
    #: published by the mobility plane -- refreshes are O(movers) and
    #: all-paused intervals skip at O(1)), "delta" (position diffing) or
    #: "full" (from-scratch reference).  All three are bit-identical
    #: (tests/test_topology_delta.py, tests/test_topology_kinetic.py).
    topology_refresh: str = "predictive"
    #: whether the query plane runs (off for pure-reconfiguration studies)
    queries: bool = True
    #: batched broadcast delivery (one kernel event per transmission
    #: instead of one per receiver copy).  Semantically bit-identical to
    #: the per-receiver reference (tests/test_batched_equivalence.py);
    #: False keeps the reference lane for A/B comparison.
    batched_delivery: bool = True
    #: sim-time interval between observability samples; 0 disables the
    #: sampler (counters still accumulate, no time series is recorded)
    obs_interval: float = 0.0
    #: kernel pending-event structure: "calendar" (O(1)-amortized
    #: calendar queue, the default) or "heap" (binary-heap reference
    #: lane).  Dispatch order is bit-identical between the two
    #: (tests/test_queue_equivalence.py); "heap" pins the reference
    #: lane for A/B comparison.
    queue: str = "calendar"
    #: analytics execution lane: "serial" or "parallel" (graph-metric
    #: BFS sharded over a process pool).  Exactly equal results either
    #: way (tests/test_analytics.py); parallel only pays off at large n.
    analytics_exec: str = "serial"
    #: analytics maintenance lane: "incremental" (epoch-keyed state +
    #: edge deltas between harvests, the default) or "full" (stateless
    #: recompute reference lane).  Exactly equal results either way.
    analytics_mode: str = "incremental"
    #: worker count for the parallel analytics lane; None = every core
    #: (the same ``--processes`` semantics as ``sweep``, via
    #: :func:`repro.parallel.resolve_processes`)
    analytics_processes: Optional[int] = None
    #: broadcast-plane rebroadcast policy (p2p discovery floods + AODV
    #: RREQ dissemination): ``"flood"`` (reference, bit-identical to the
    #: historical behaviour), ``"probabilistic[:p]"`` (gossip-p with a
    #: degree-adaptive floor), ``"counter[:c]"`` (suppress after c
    #: duplicate overhears within a random assessment delay) or
    #: ``"contact"`` (flood + CARD contact harvesting).  See
    #: :mod:`repro.net.suppression`.
    rebroadcast: str = "flood"
    #: query-plane policy: ``"flood"`` (reference Gnutella flood) or
    #: ``"contact"`` (route to known holders first; scoped-flood
    #: fallback after a miss)
    query_policy: str = "flood"

    p2p: P2pConfig = field(default_factory=P2pConfig)
    query: QueryConfig = field(default_factory=QueryConfig)

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {self.num_nodes}")
        if not 0 < self.p2p_fraction <= 1:
            raise ValueError(f"p2p_fraction must be in (0, 1], got {self.p2p_fraction}")
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.routing not in _ROUTINGS:
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.mac not in ("ideal", "csma", "lossy"):
            raise ValueError(f"unknown mac {self.mac!r}")
        if self.mobility not in _MOBILITY_MODELS:
            raise ValueError(f"unknown mobility model {self.mobility!r}")
        if self.topology not in _TOPOLOGIES:
            raise ValueError(f"unknown topology backend {self.topology!r}")
        if self.topology_refresh not in _REFRESH_LANES:
            raise ValueError(
                f"unknown topology refresh lane {self.topology_refresh!r}"
            )
        # Legacy knob: topology_delta=False predates the lane string and
        # means "pin the full-rebuild reference"; honor it unless the
        # caller explicitly picked a lane.  Then rewrite the bool to
        # mirror the resolved lane so to_dict()/from_dict() round-trips
        # agree with what actually runs.
        if not self.topology_delta and self.topology_refresh == "predictive":
            object.__setattr__(self, "topology_refresh", "full")
        object.__setattr__(
            self, "topology_delta", self.topology_refresh != "full"
        )
        if self.queue not in _QUEUES:
            raise ValueError(f"unknown queue kind {self.queue!r}")
        if self.analytics_exec not in _ANALYTICS_EXECS:
            raise ValueError(f"unknown analytics execution lane {self.analytics_exec!r}")
        if self.analytics_mode not in _ANALYTICS_MODES:
            raise ValueError(f"unknown analytics mode {self.analytics_mode!r}")
        parse_policy_spec(self.rebroadcast)  # raises on a bad spec
        if self.query_policy not in QUERY_POLICY_KINDS:
            raise ValueError(
                f"unknown query policy {self.query_policy!r} "
                f"(choose from {QUERY_POLICY_KINDS})"
            )
        if self.analytics_processes is not None and self.analytics_processes < 1:
            raise ValueError(
                f"analytics_processes must be >= 1, got {self.analytics_processes}"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.obs_interval < 0:
            raise ValueError(f"obs_interval must be >= 0, got {self.obs_interval}")

    # ------------------------------------------------------------------
    @property
    def resolved_topology(self) -> str:
        """The concrete backend name ("auto" resolved by node count)."""
        if self.topology == "auto":
            return "sparse" if self.num_nodes >= AUTO_SPARSE_THRESHOLD else "dense"
        return self.topology

    @property
    def num_members(self) -> int:
        """How many nodes join the overlay (75 % of 50 -> 37)."""
        return max(1, int(round(self.num_nodes * self.p2p_fraction)))

    def with_(self, **changes) -> "ScenarioConfig":
        """A modified copy (sugar over dataclasses.replace)."""
        return replace(self, **changes)

    def for_repetition(self, rep: int) -> "ScenarioConfig":
        """The same scenario with the repetition's seed offset."""
        return self.with_(seed=self.seed + rep)

    # ------------------------------------------------------------------
    # serialization (JSON-safe; inf <-> the string "Infinity")
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every field, nested configs included."""
        return {k: _encode(v) for k, v in asdict(self).items()}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioConfig":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        names = {f for f in cls.__dataclass_fields__}
        kwargs = {k: _decode(v) for k, v in d.items() if k in names}
        if isinstance(kwargs.get("p2p"), dict):
            kwargs["p2p"] = P2pConfig(**kwargs["p2p"])
        if isinstance(kwargs.get("query"), dict):
            kwargs["query"] = QueryConfig(**kwargs["query"])
        return cls(**kwargs)


def _encode(v):
    """Recursively make a config value JSON-safe (inf -> "Infinity")."""
    if isinstance(v, dict):
        return {k: _encode(x) for k, x in v.items()}
    if isinstance(v, float) and v == float("inf"):
        return "Infinity"
    if isinstance(v, float) and v == float("-inf"):
        return "-Infinity"
    return v


def _decode(v):
    """Inverse of :func:`_encode`."""
    if isinstance(v, dict):
        return {k: _decode(x) for k, x in v.items()}
    if v == "Infinity":
        return float("inf")
    if v == "-Infinity":
        return float("-inf")
    return v
