"""Scenario builder: configuration -> a fully wired simulation.

The :class:`Simulation` bundle owns every layer (kernel, world, channel,
router, overlay, metrics) of one run and is what the runner executes and
harvests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..aodv.protocol import AodvRouter
from ..core.overlay import OverlayNetwork
from ..dsdv.protocol import DsdvRouter
from ..dsr.protocol import DsrRouter
from ..metrics.analytics import AnalyticsEngine, set_world_engine
from ..metrics.collector import MetricsCollector
from ..metrics.lifetimes import LifetimeLog
from ..mobility import (
    Area,
    GaussMarkov,
    ManhattanGrid,
    MobilityModel,
    RandomDirection,
    RandomWalk,
    RandomWaypoint,
    Static,
)
from ..net.energy import EnergyModel
from ..net.radio import Channel
from ..net.world import World
from ..obs.manifest import RunManifest
from ..obs.registry import Registry
from ..obs.sampler import Sampler
from ..routing.base import Router
from ..routing.oracle import OracleRouter
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .config import ScenarioConfig

__all__ = ["Simulation", "build_scenario"]


@dataclass
class Simulation:
    """All layers of one wired scenario, ready to run."""

    config: ScenarioConfig
    sim: Simulator
    rng: RngRegistry
    mobility: MobilityModel
    world: World
    channel: Channel
    router: Router
    overlay: OverlayNetwork
    metrics: MetricsCollector
    members: List[int]
    lifetimes: LifetimeLog
    #: shared observability registry (same object every layer reports to)
    registry: Registry = field(default_factory=Registry)
    #: unified analytics plane (lanes picked by the config); the runner
    #: harvests through this and the world-level helpers resolve to it
    analytics: Optional[AnalyticsEngine] = None
    #: periodic time-series sampler; None when ``cfg.obs_interval == 0``
    sampler: Optional[Sampler] = None
    #: per-run provenance record
    manifest: Optional[RunManifest] = None

    def run(self) -> None:
        """Start the overlay (and sampler) and run to the horizon."""
        if self.sampler is not None:
            self.sampler.start()
        self.overlay.start(queries=self.config.queries)
        self.sim.run(until=self.config.duration)
        if self.manifest is not None:
            self.manifest.finish(self.registry)

    def stats(self) -> dict:
        """Nested per-layer ``stats()`` snapshot of the whole stack."""
        return {
            "kernel": self.sim.stats(),
            "world": self.world.stats(),
            "energy": self.world.energy.stats(),
            "channel": self.channel.stats(),
            "topology": self.world.topology.stats(),
            "overlay": self.overlay.stats(),
            "p2p_received": self.metrics.stats(),
        }


def _make_mobility(cfg: ScenarioConfig, rng: RngRegistry) -> MobilityModel:
    area = Area(cfg.area_width, cfg.area_height)
    stream = rng.stream("mobility")
    if cfg.mobility == "waypoint":
        return RandomWaypoint(
            cfg.num_nodes,
            area,
            stream,
            max_speed=cfg.max_speed,
            max_pause=cfg.max_pause,
        )
    if cfg.mobility == "walk":
        return RandomWalk(cfg.num_nodes, area, stream, speed=cfg.max_speed)
    if cfg.mobility == "direction":
        return RandomDirection(
            cfg.num_nodes, area, stream, max_speed=cfg.max_speed, max_pause=cfg.max_pause
        )
    if cfg.mobility == "gauss-markov":
        return GaussMarkov(cfg.num_nodes, area, stream, mean_speed=cfg.max_speed)
    if cfg.mobility == "manhattan":
        return ManhattanGrid(cfg.num_nodes, area, stream, max_speed=cfg.max_speed)
    return Static(cfg.num_nodes, area, stream)


def build_scenario(cfg: ScenarioConfig) -> Simulation:
    """Wire every layer for ``cfg`` (deterministic given ``cfg.seed``)."""
    rng = RngRegistry(cfg.seed)
    sim = Simulator(queue=cfg.queue)
    registry = sim.registry  # every layer below shares this one
    mobility = _make_mobility(cfg, rng)
    world = World(
        sim,
        mobility,
        radio_range=cfg.radio_range,
        energy=EnergyModel(cfg.num_nodes, capacity=cfg.energy_capacity),
        snapshot_interval=cfg.snapshot_interval,
        topology=cfg.resolved_topology,
        topology_refresh=cfg.topology_refresh,
    )
    if cfg.mac == "csma":
        from ..net.mac import CsmaChannel

        channel = CsmaChannel(sim, world, seed=cfg.seed, batched=cfg.batched_delivery)
    elif cfg.mac == "lossy":
        from ..net.lossy import LossyChannel

        channel = LossyChannel(sim, world, seed=cfg.seed, batched=cfg.batched_delivery)
    else:
        channel = Channel(sim, world, batched=cfg.batched_delivery)
    router: Router
    if cfg.routing == "aodv":
        router = AodvRouter(sim, channel, rebroadcast=cfg.rebroadcast, rng=rng)
    elif cfg.routing == "dsdv":
        router = DsdvRouter(sim, channel)
    elif cfg.routing == "dsr":
        router = DsrRouter(sim, channel)
    else:
        router = OracleRouter(sim, world)

    # Members: a uniform sample of p2p_fraction of all nodes.
    k = cfg.num_members
    members = sorted(
        int(i) for i in rng.stream("membership").choice(cfg.num_nodes, size=k, replace=False)
    )

    metrics = MetricsCollector(cfg.num_nodes)
    lifetimes = LifetimeLog()
    overlay = OverlayNetwork(
        sim,
        world,
        channel,
        router,
        members=members,
        algorithm=cfg.algorithm,
        config=cfg.p2p,
        query_config=cfg.query,
        num_files=cfg.num_files,
        max_freq=cfg.max_freq,
        rng=rng,
        count_received=metrics.count_received,
        lifetime_log=lifetimes,
        rebroadcast=cfg.rebroadcast,
        query_policy=cfg.query_policy,
    )

    # Top-level gauges: live views the sampler snapshots each interval.
    registry.gauge("energy.consumed", fn=world.energy.total_consumed)
    registry.gauge("overlay.connections", fn=overlay.open_connections)
    registry.gauge("overlay.members", fn=lambda: len(overlay.members))
    for fam in metrics.received:
        registry.gauge(
            "p2p.received", fn=(lambda f=fam: metrics.total(f)), family=fam
        )

    # One analytics engine per scenario: the runner's harvest and any
    # engine_for_world(world) lookup share its epoch-keyed state.
    analytics = set_world_engine(
        world,
        AnalyticsEngine(
            mode=cfg.analytics_mode,
            execution=cfg.analytics_exec,
            processes=cfg.analytics_processes,
            registry=registry,
        ),
    )

    sampler = (
        Sampler(sim, registry, cfg.obs_interval) if cfg.obs_interval > 0 else None
    )
    manifest = RunManifest.begin(cfg.to_dict(), cfg.seed)
    return Simulation(
        config=cfg,
        sim=sim,
        rng=rng,
        mobility=mobility,
        world=world,
        channel=channel,
        router=router,
        overlay=overlay,
        metrics=metrics,
        members=members,
        lifetimes=lifetimes,
        registry=registry,
        analytics=analytics,
        sampler=sampler,
        manifest=manifest,
    )
