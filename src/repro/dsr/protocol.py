"""DSR -- Dynamic Source Routing (Johnson & Maltz).

The second on-demand protocol of the paper's companion comparison
(reference [13]): route discovery floods a request that *accumulates the
route it travelled*; the target returns the full path; data packets then
carry their entire source route, so intermediate nodes keep no routing
state (only an opportunistic route cache).

Implemented subset:

* RREQ flooding with per-(origin, id) dedup and hop limit, route record
  accumulation, and loop suppression (a node never forwards a request
  already listing it);
* RREP carrying the complete route, returned along its reverse
  (bidirectional links, as everywhere in this reproduction);
* per-node route cache (shortest known path per destination), fed by
  both RREPs and overheard route records;
* source-routed data with RERR on a broken hop: the detecting node
  reports the dead link to the origin along the reversed prefix, every
  node on the way (and the origin) purges cached routes using that link,
  and the origin re-discovers;
* optional cache replies: an intermediate node holding a cached route to
  the target answers the RREQ by splicing it onto the accumulated
  record.

* packet salvaging (spec §3.4.1): a relay whose next hop failed
  re-routes the packet over an alternate cached route (bounded by
  ``max_salvages``) instead of dropping it.

Omitted (documented): promiscuous overhearing beyond route records and
flow state -- refinements that reduce constants but don't change
reachability semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.packet import Frame
from ..net.radio import Channel, NetNode
from ..routing.base import Router
from ..sim.kernel import Simulator

__all__ = ["DsrConfig", "DsrAgent", "DsrRouter"]

KIND_CTRL = "dsr.ctrl"
KIND_DATA = "dsr.data"


@dataclass(frozen=True)
class DsrConfig:
    """DSR constants."""

    max_route_len: int = 20
    rreq_ttl: int = 20
    rreq_retries: int = 2
    discovery_timeout: float = 2.0
    queue_per_dest: int = 16
    cache_replies: bool = True
    #: relays with an alternate cached route re-route (salvage) a packet
    #: whose next hop failed, instead of dropping it
    salvage: bool = True
    #: max times one packet may be salvaged (loop/staleness guard)
    max_salvages: int = 2
    ctrl_size: int = 48


@dataclass(slots=True)
class DsrRreq:
    origin: int
    rreq_id: int
    target: int
    route: List[int]  # accumulated, starts [origin]
    ttl: int


@dataclass(slots=True)
class DsrRrep:
    """Full route origin -> ... -> target, travelling back to origin."""

    origin: int
    target: int
    route: List[int]


@dataclass(slots=True)
class DsrRerr:
    """Link (from_node -> to_node) observed dead; travels to origin."""

    origin: int
    from_node: int
    to_node: int
    #: reversed prefix along which the error travels back
    back_route: List[int]


@dataclass(slots=True)
class DsrData:
    src: int
    dst: int
    kind_upper: str
    payload: Any
    size: int
    route: List[int] = field(default_factory=list)  # full path incl. endpoints
    index: int = 0  # position of the current holder in route
    salvaged: int = 0  # times re-routed mid-path


class RouteCache:
    """Per-node cache of known source routes (shortest per destination)."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._routes: Dict[int, List[int]] = {}

    def get(self, dest: int) -> Optional[List[int]]:
        route = self._routes.get(dest)
        return list(route) if route is not None else None

    def offer(self, route: List[int]) -> None:
        """Learn a route starting at the owner; also all its prefixes."""
        if not route or route[0] != self.owner:
            return
        for end in range(1, len(route)):
            dest = route[end]
            sub = route[: end + 1]
            cur = self._routes.get(dest)
            if cur is None or len(sub) < len(cur):
                self._routes[dest] = list(sub)

    def purge_link(self, a: int, b: int) -> None:
        """Drop every cached route using the (a, b) hop in either order."""
        dead = []
        for dest, route in self._routes.items():
            for u, v in zip(route, route[1:]):
                if (u, v) == (a, b) or (u, v) == (b, a):
                    dead.append(dest)
                    break
        for dest in dead:
            del self._routes[dest]

    def __len__(self) -> int:
        return len(self._routes)


class DsrAgent:
    """The DSR state machine of one node."""

    def __init__(
        self,
        node: NetNode,
        channel: Channel,
        sim: Simulator,
        config: DsrConfig,
        deliver_up: Callable[[str, int, int, Any, int], None],
    ) -> None:
        self.node = node
        self.nid = node.nid
        self.channel = channel
        self.sim = sim
        self.cfg = config
        self.deliver_up = deliver_up
        self.cache = RouteCache(self.nid)
        self.rreq_id = 0
        self._seen: Set[Tuple[int, int]] = set()
        self._pending: Dict[int, List[Tuple[DsrData, Optional[Callable[[Any], None]]]]] = {}
        self._attempt: Dict[int, int] = {}
        self.rreq_sent = 0
        self.rrep_sent = 0
        self.rerr_sent = 0
        self.data_forwarded = 0
        self.salvaged = 0
        node.register(KIND_CTRL, self._on_ctrl)
        node.register(KIND_DATA, self._on_data)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_data(
        self,
        dst: int,
        payload: Any,
        kind_upper: str,
        size: int,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if dst == self.nid:
            self.sim.schedule(0.0, self.deliver_up, kind_upper, dst, self.nid, payload, 0)
            return
        pkt = DsrData(src=self.nid, dst=dst, kind_upper=kind_upper, payload=payload, size=size)
        route = self.cache.get(dst)
        if route is not None:
            pkt.route = route
            pkt.index = 0
            self._transmit(pkt, on_fail)
        else:
            self._enqueue(pkt, on_fail)

    def _enqueue(self, pkt: DsrData, on_fail: Optional[Callable[[Any], None]]) -> None:
        queue = self._pending.setdefault(pkt.dst, [])
        if len(queue) >= self.cfg.queue_per_dest:
            if on_fail is not None:
                on_fail(pkt.payload)
            return
        queue.append((pkt, on_fail))
        if len(queue) == 1 and pkt.dst not in self._attempt:
            self._attempt[pkt.dst] = 0
            self._discover(pkt.dst)

    def _transmit(self, pkt: DsrData, on_fail: Optional[Callable[[Any], None]] = None) -> None:
        next_hop = pkt.route[pkt.index + 1]
        pkt.index += 1
        ok = self.channel.unicast(
            Frame(src=self.nid, dst=next_hop, kind=KIND_DATA, payload=pkt, size=pkt.size)
        )
        if ok:
            if pkt.src != self.nid:
                self.data_forwarded += 1
            return
        pkt.index -= 1
        # Broken hop: purge, notify the origin, requeue if we ARE it.
        self.cache.purge_link(self.nid, next_hop)
        if pkt.src == self.nid:
            pkt.route = []
            pkt.index = 0
            self._enqueue(pkt, on_fail)
            return
        self._send_rerr(pkt, next_hop)
        # Salvaging: a relay with an alternate cached route re-routes the
        # packet instead of dropping it (DSR spec §3.4.1).
        if self.cfg.salvage and pkt.salvaged < self.cfg.max_salvages:
            alt = self.cache.get(pkt.dst)
            if alt is not None and len(alt) >= 2 and alt[1] != next_hop:
                pkt.salvaged += 1
                pkt.route = alt
                pkt.index = 0
                self.salvaged += 1
                self._transmit(pkt)

    def _send_rerr(self, pkt: DsrData, dead_hop: int) -> None:
        back = list(reversed(pkt.route[: pkt.index + 1]))  # us ... origin
        if len(back) < 2:
            return
        self.rerr_sent += 1
        rerr = DsrRerr(
            origin=pkt.src, from_node=self.nid, to_node=dead_hop, back_route=back
        )
        self.channel.unicast(
            Frame(src=self.nid, dst=back[1], kind=KIND_CTRL, payload=rerr, size=self.cfg.ctrl_size)
        )

    def _on_data(self, frame: Frame) -> None:
        pkt: DsrData = frame.payload
        if pkt.dst == self.nid:
            # Learn the reverse route for free (bidirectional links).
            self.cache.offer(list(reversed(pkt.route[: pkt.index + 1])))
            self.deliver_up(pkt.kind_upper, self.nid, pkt.src, pkt.payload, pkt.index)
            return
        if pkt.index + 1 >= len(pkt.route) or pkt.route[pkt.index] != self.nid:
            return  # malformed or stale source route: drop
        self._transmit(pkt)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def _discover(self, target: int) -> None:
        attempt = self._attempt.get(target)
        if attempt is None:
            return
        if attempt > self.cfg.rreq_retries:
            queue = self._pending.pop(target, [])
            self._attempt.pop(target, None)
            for pkt, on_fail in queue:
                if on_fail is not None:
                    on_fail(pkt.payload)
            return
        self.rreq_id += 1
        self._seen.add((self.nid, self.rreq_id))
        self.rreq_sent += 1
        rreq = DsrRreq(
            origin=self.nid,
            rreq_id=self.rreq_id,
            target=target,
            route=[self.nid],
            ttl=self.cfg.rreq_ttl,
        )
        self.channel.broadcast(
            Frame(src=self.nid, dst=-1, kind=KIND_CTRL, payload=rreq, size=self.cfg.ctrl_size)
        )
        self.sim.schedule(self.cfg.discovery_timeout, self._discovery_check, target, attempt)

    def _discovery_check(self, target: int, attempt: int) -> None:
        if target not in self._pending:
            return
        if self.cache.get(target) is not None:
            self._flush(target)
            return
        if self._attempt.get(target) != attempt:
            return
        self._attempt[target] = attempt + 1
        self._discover(target)

    def _flush(self, target: int) -> None:
        route = self.cache.get(target)
        queue = self._pending.pop(target, [])
        self._attempt.pop(target, None)
        for pkt, on_fail in queue:
            if route is None:
                if on_fail is not None:
                    on_fail(pkt.payload)
            else:
                pkt.route = list(route)
                pkt.index = 0
                self._transmit(pkt, on_fail)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _on_ctrl(self, frame: Frame) -> None:
        msg = frame.payload
        if isinstance(msg, DsrRreq):
            self._on_rreq(msg)
        elif isinstance(msg, DsrRrep):
            self._on_rrep(msg)
        elif isinstance(msg, DsrRerr):
            self._on_rerr(msg)

    def _on_rreq(self, rreq: DsrRreq) -> None:
        key = (rreq.origin, rreq.rreq_id)
        if key in self._seen or self.nid in rreq.route:
            return
        self._seen.add(key)
        route_here = rreq.route + [self.nid]
        # Free learning: we now know a route back to the origin.
        self.cache.offer(list(reversed(route_here)))
        if rreq.target == self.nid:
            self._reply(rreq.origin, route_here)
            return
        if self.cfg.cache_replies:
            cached = self.cache.get(rreq.target)
            if cached is not None:
                spliced = route_here + cached[1:]
                # No node may appear twice in the spliced route.
                if len(set(spliced)) == len(spliced) and len(spliced) <= self.cfg.max_route_len:
                    self._reply(rreq.origin, spliced)
                    return
        if rreq.ttl > 1 and len(route_here) < self.cfg.max_route_len:
            fwd = DsrRreq(
                origin=rreq.origin,
                rreq_id=rreq.rreq_id,
                target=rreq.target,
                route=route_here,
                ttl=rreq.ttl - 1,
            )
            self.channel.broadcast(
                Frame(src=self.nid, dst=-1, kind=KIND_CTRL, payload=fwd, size=self.cfg.ctrl_size)
            )

    def _reply(self, origin: int, full_route: List[int]) -> None:
        """Send an RREP carrying ``full_route`` back toward the origin."""
        rrep = DsrRrep(origin=origin, target=full_route[-1], route=list(full_route))
        self.rrep_sent += 1
        back = list(reversed(full_route))
        my_pos = back.index(self.nid)
        if my_pos + 1 >= len(back):
            return
        self.channel.unicast(
            Frame(
                src=self.nid,
                dst=back[my_pos + 1],
                kind=KIND_CTRL,
                payload=rrep,
                size=self.cfg.ctrl_size + 2 * len(full_route),
            )
        )

    def _on_rrep(self, rrep: DsrRrep) -> None:
        if rrep.origin == self.nid:
            self.cache.offer(list(rrep.route))
            self._flush(rrep.target)
            return
        back = list(reversed(rrep.route))
        if self.nid not in back:
            return
        my_pos = back.index(self.nid)
        # Opportunistic learning of the suffix toward the target.
        self.cache.offer(rrep.route[rrep.route.index(self.nid):])
        if my_pos + 1 < len(back):
            self.channel.unicast(
                Frame(
                    src=self.nid,
                    dst=back[my_pos + 1],
                    kind=KIND_CTRL,
                    payload=rrep,
                    size=self.cfg.ctrl_size + 2 * len(rrep.route),
                )
            )

    def _on_rerr(self, rerr: DsrRerr) -> None:
        self.cache.purge_link(rerr.from_node, rerr.to_node)
        if rerr.origin == self.nid:
            # Re-discover for any still-queued traffic.
            for dest in list(self._pending):
                if self._attempt.get(dest) is None:
                    self._attempt[dest] = 0
                    self._discover(dest)
            return
        back = rerr.back_route
        if self.nid in back:
            my_pos = back.index(self.nid)
            if my_pos + 1 < len(back):
                self.channel.unicast(
                    Frame(
                        src=self.nid,
                        dst=back[my_pos + 1],
                        kind=KIND_CTRL,
                        payload=rerr,
                        size=self.cfg.ctrl_size,
                    )
                )


class DsrRouter(Router):
    """Router facade: one :class:`DsrAgent` per node."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        config: Optional[DsrConfig] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.channel = channel
        self.cfg = config if config is not None else DsrConfig()
        self.agents = [
            DsrAgent(node, channel, sim, self.cfg, self._deliver_up)
            for node in channel.nodes
        ]

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "data",
        size: int = 64,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.agents[src].send_data(dst, payload, kind, size, on_fail)

    def route_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        route = self.agents[src].cache.get(dst)
        return len(route) - 1 if route is not None else Router.UNKNOWN

    def control_overhead(self) -> dict:
        return {
            "rreq_sent": sum(a.rreq_sent for a in self.agents),
            "rrep_sent": sum(a.rrep_sent for a in self.agents),
            "rerr_sent": sum(a.rerr_sent for a in self.agents),
            "data_forwarded": sum(a.data_forwarded for a in self.agents),
            "salvaged": sum(a.salvaged for a in self.agents),
        }
