"""DSR on-demand source routing."""

from .protocol import DsrAgent, DsrConfig, DsrRouter, RouteCache

__all__ = ["DsrAgent", "DsrConfig", "DsrRouter", "RouteCache"]
