"""Oracle (idealized) routing: instantaneous global shortest paths.

The zero-overhead limit of any reactive MANET routing protocol: if a
multi-hop path exists *right now*, the payload is delivered after
``hops * per_hop_latency`` seconds with no control traffic; otherwise
``on_fail`` fires immediately.  AODV in steady state converges to these
shortest paths, so benchmarks that only care about overlay-level message
counts can swap this in for large sweeps (see the ``abl_routing``
ablation for the comparison).

Energy accounting: data frames still cost energy along the path -- the
sender is charged one tx and the destination one rx per hop-equivalent,
apportioned to the endpoints (intermediate relays are not identified,
which is the price of the idealization; the ablation quantifies it).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.topology import UNREACHABLE
from ..net.world import World
from ..sim.kernel import Simulator
from .base import Router

__all__ = ["OracleRouter"]


class OracleRouter(Router):
    """Shortest-path delivery on the instantaneous connectivity graph.

    Parameters
    ----------
    sim, world:
        Kernel and physical world.
    per_hop_latency:
        Delivery delay per hop in seconds.
    """

    def __init__(self, sim: Simulator, world: World, *, per_hop_latency: float = 0.002) -> None:
        super().__init__()
        self.sim = sim
        self.world = world
        self.per_hop_latency = float(per_hop_latency)
        #: payloads successfully handed to the delivery scheduler
        self.sent = 0
        #: sends that failed for lack of a path
        self.failed = 0

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "data",
        size: int = 64,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if not (self.world.is_up(src) and self.world.is_up(dst)):
            self.failed += 1
            if on_fail is not None:
                on_fail(payload)
            return
        hops = self.world.hop_distance(src, dst)
        if hops == UNREACHABLE:
            self.failed += 1
            if on_fail is not None:
                on_fail(payload)
            return
        if hops == 0:  # loopback
            self.sim.schedule(0.0, self._deliver_up, kind, dst, src, payload, 0)
            self.sent += 1
            return
        self.world.energy.charge_tx(src, size)
        self.sent += 1
        self.sim.schedule(
            hops * self.per_hop_latency, self._finish, kind, dst, src, payload, hops, size
        )

    def _finish(self, kind: str, dst: int, src: int, payload: Any, hops: int, size: int) -> None:
        if not self.world.is_up(dst):
            return
        self.world.energy.charge_rx(dst, size)
        self._deliver_up(kind, dst, src, payload, hops)

    def route_hops(self, src: int, dst: int) -> int:
        hops = self.world.hop_distance(src, dst)
        return Router.UNKNOWN if hops == UNREACHABLE else hops
