"""Router abstraction separating the p2p overlay from routing details.

The paper runs its overlay on AODV; we additionally provide an *oracle*
router (instantaneous shortest-path delivery with zero control traffic)
as the fast, idealized limit for large parameter sweeps.  Both expose
the same narrow interface so the p2p layer never knows which one it is
on.

Semantics shared by all routers:

* ``send`` is asynchronous: the payload arrives at ``dst`` after some
  routing-dependent delay, or ``on_fail(payload)`` fires (no route /
  route discovery failed).  In-flight loss after a successful send is
  allowed (mobility may break a path mid-flight) -- upper layers use
  timeouts, exactly like the paper's ping/pong machinery.
* ``register`` installs, per upper-layer ``kind``, a single delivery
  handler ``handler(dst, src, payload, hops)`` shared by all nodes
  (the p2p layer dispatches to the right servent by ``dst``).
* ``route_hops(src, dst)`` reports the router's *current best knowledge*
  of the hop distance, or :data:`Router.UNKNOWN`.  The overlay uses this
  for the MAXDIST maintenance checks.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional

__all__ = ["Router", "DeliveryHandler"]

DeliveryHandler = Callable[[int, int, Any, int], None]


class Router(abc.ABC):
    """Abstract multi-hop unicast service."""

    #: Returned by :meth:`route_hops` when no distance estimate exists.
    UNKNOWN = -1

    def __init__(self) -> None:
        self._handlers: Dict[str, DeliveryHandler] = {}

    # ------------------------------------------------------------------
    def register(self, kind: str, handler: DeliveryHandler) -> None:
        """Install the delivery handler for upper-layer ``kind``."""
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    def _deliver_up(self, kind: str, dst: int, src: int, payload: Any, hops: int) -> None:
        handler = self._handlers.get(kind)
        if handler is not None:
            handler(dst, src, payload, hops)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "data",
        size: int = 64,
        on_fail: Optional[Callable[[Any], None]] = None,
    ) -> None:
        """Route ``payload`` from ``src`` to ``dst`` (asynchronously)."""

    @abc.abstractmethod
    def route_hops(self, src: int, dst: int) -> int:
        """Best-known hop distance from ``src`` to ``dst`` or UNKNOWN."""
