"""Routing abstraction and the oracle shortest-path router."""

from .base import Router
from .oracle import OracleRouter

__all__ = ["Router", "OracleRouter"]
