"""Experiment definitions for every figure in the paper's evaluation.

Each ``figN`` function reproduces one paper figure: it runs the four
algorithms through the scenario of that figure and returns a
:class:`FigureResult` holding the same series the paper plots.  The
paper-scale parameters (50/150 nodes, 3600 s, 33 repetitions) are the
``full()`` presets; benchmarks run scaled-down variants (fewer seconds /
repetitions -- same shape, laptop-friendly) via the ``scale`` knobs.

Figure index (paper §7.4):

* Figure 5 / 6  -- avg minimum distance to the requested file and avg
  answers per request, by file popularity rank (50 / 150 nodes).
* Figure 7 / 8  -- connect messages received per node, nodes sorted
  decreasing (50 / 150 nodes).
* Figure 9 / 10 -- ping messages, same axes.
* Figure 11 / 12 -- query messages, same axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..metrics.aggregate import mean_ci, per_file_stats, sorted_curve_mean
from ..scenarios.config import ScenarioConfig
from ..scenarios.runner import RunResult, run_repetitions

__all__ = [
    "ALGORITHM_ORDER",
    "FigureResult",
    "figure_configs",
    "run_distance_answers_figure",
    "run_message_curve_figure",
    "FIGURES",
    "run_figure",
    "shape_checks",
]

ALGORITHM_ORDER = ("basic", "regular", "random", "hybrid")

#: message family plotted by each curve figure
_CURVE_FAMILY = {
    "fig7": "connect",
    "fig8": "connect",
    "fig9": "ping",
    "fig10": "ping",
    "fig11": "query",
    "fig12": "query",
}

#: node count of each figure's scenario
_FIG_NODES = {
    "fig5": 50,
    "fig6": 150,
    "fig7": 50,
    "fig8": 150,
    "fig9": 50,
    "fig10": 150,
    "fig11": 50,
    "fig12": 150,
}


@dataclass
class FigureResult:
    """One reproduced figure: per-algorithm series plus metadata."""

    exp_id: str
    kind: str  # "distance_answers" | "message_curve"
    num_nodes: int
    duration: float
    reps: int
    #: distance_answers: {alg: {"distance": arr10, "answers": arr10}}
    #: message_curve:    {alg: {"curve": sorted per-node array}}
    series: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    family: Optional[str] = None
    #: per-algorithm network totals of the plotted family
    totals: Dict[str, float] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        return [a for a in ALGORITHM_ORDER if a in self.series]


def _base_config(num_nodes: int, duration: float, seed: int, routing: str) -> ScenarioConfig:
    return ScenarioConfig(
        num_nodes=num_nodes, duration=duration, seed=seed, routing=routing
    )


def _alg_config(
    num_nodes: int,
    duration: float,
    seed: int,
    routing: str,
    alg: str,
    overrides: Optional[Dict[str, Any]],
) -> ScenarioConfig:
    cfg = _base_config(num_nodes, duration, seed, routing).with_(algorithm=alg)
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


def figure_configs(
    exp_id: str,
    *,
    duration: float = 3600.0,
    reps: int = 33,
    seed: int = 0,
    routing: str = "aodv",
    overrides: Optional[Dict[str, Any]] = None,
    **_ignored: Any,
) -> List[ScenarioConfig]:
    """Every run a figure needs, as configs (algorithm x repetition).

    This is the planning surface of the experiment executor: callers
    flatten the config lists of several figures into one batch, the
    executor deduplicates them by content address (figures 5/7/9/11
    share identical runs), and :func:`run_figure` then harvests each
    figure from the memoized results.  Extra keyword arguments that
    only affect harvesting (``top_files``) are accepted and ignored so
    one settings dict can drive both planning and harvest.
    """
    if exp_id not in _FIG_NODES:
        raise ValueError(f"unknown figure {exp_id!r}; choose from {sorted(_FIG_NODES)}")
    nodes = _FIG_NODES[exp_id]
    return [
        _alg_config(nodes, duration, seed, routing, alg, overrides).for_repetition(r)
        for alg in ALGORITHM_ORDER
        for r in range(reps)
    ]


def _runs_for(
    cfg: ScenarioConfig, reps: int, executor
) -> Sequence[RunResult]:
    """The figure's repetitions: direct loop, or through an executor."""
    if executor is None:
        return run_repetitions(cfg, reps)
    return executor.run_configs([cfg.for_repetition(r) for r in range(reps)])


def run_distance_answers_figure(
    exp_id: str,
    num_nodes: int,
    *,
    duration: float = 3600.0,
    reps: int = 33,
    seed: int = 0,
    routing: str = "aodv",
    top_files: int = 10,
    overrides: Optional[Dict[str, Any]] = None,
    executor=None,
) -> FigureResult:
    """Figures 5/6: distance-to-file and answers-per-request by rank."""
    result = FigureResult(
        exp_id=exp_id,
        kind="distance_answers",
        num_nodes=num_nodes,
        duration=duration,
        reps=reps,
    )
    for alg in ALGORITHM_ORDER:
        cfg = _alg_config(num_nodes, duration, seed, routing, alg, overrides)
        runs = _runs_for(cfg, reps, executor)
        dist = mean_ci([r.distance_series()[:top_files] for r in runs])["mean"]
        answers = mean_ci([r.answers_series()[:top_files] for r in runs])["mean"]
        result.series[alg] = {"distance": dist, "answers": answers}
        result.totals[alg] = float(np.mean([r.num_queries for r in runs]))
    return result


def run_message_curve_figure(
    exp_id: str,
    num_nodes: int,
    family: str,
    *,
    duration: float = 3600.0,
    reps: int = 33,
    seed: int = 0,
    routing: str = "aodv",
    overrides: Optional[Dict[str, Any]] = None,
    executor=None,
) -> FigureResult:
    """Figures 7-12: per-node received-message curves, sorted decreasing."""
    result = FigureResult(
        exp_id=exp_id,
        kind="message_curve",
        num_nodes=num_nodes,
        duration=duration,
        reps=reps,
        family=family,
    )
    for alg in ALGORITHM_ORDER:
        cfg = _alg_config(num_nodes, duration, seed, routing, alg, overrides)
        runs = _runs_for(cfg, reps, executor)
        curve = sorted_curve_mean([r.sorted_received[family] for r in runs])
        result.series[alg] = {"curve": curve}
        result.totals[alg] = float(np.mean([r.totals[family] for r in runs]))
    return result


def run_figure(exp_id: str, **kwargs) -> FigureResult:
    """Run any paper figure by id (``fig5`` ... ``fig12``).

    ``overrides`` (extra ScenarioConfig fields, e.g. a rebroadcast
    policy for the suppression-ablation ladder) and ``executor`` (an
    :class:`~repro.experiments.executor.ExperimentExecutor` providing
    dedup / cache / parallelism) pass through to the figure runners.
    """
    if exp_id not in _FIG_NODES:
        raise ValueError(f"unknown figure {exp_id!r}; choose from {sorted(_FIG_NODES)}")
    nodes = _FIG_NODES[exp_id]
    if exp_id in ("fig5", "fig6"):
        return run_distance_answers_figure(exp_id, nodes, **kwargs)
    return run_message_curve_figure(exp_id, nodes, _CURVE_FAMILY[exp_id], **kwargs)


#: callable registry (used by the CLI and the benches)
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    fid: (lambda fid=fid: (lambda **kw: run_figure(fid, **kw)))() for fid in _FIG_NODES
}


# ----------------------------------------------------------------------
# shape expectations (§7.4 qualitative claims; see DESIGN.md §3)
# ----------------------------------------------------------------------
def shape_checks(result: FigureResult) -> List[tuple]:
    """Evaluate the paper's qualitative claims against a result.

    Returns ``[(claim, holds, detail), ...]``.  Benches assert the
    critical ones; EXPERIMENTS.md records them all.
    """
    checks: List[tuple] = []
    s = result.series
    if result.kind == "distance_answers":
        for alg in result.algorithms():
            answers = s[alg]["answers"]
            # Zipf decay: most popular file gets the most answers; the
            # first rank dominates the tail ranks.
            tail = answers[5:].mean() if len(answers) > 5 else answers[-1]
            checks.append(
                (
                    f"{alg}: answers decay with rank",
                    bool(answers[0] >= tail),
                    f"rank1={answers[0]:.2f} tail_mean={tail:.2f}",
                )
            )
            dist = s[alg]["distance"]
            finite = dist[np.isfinite(dist)]
            if len(finite) >= 4:
                first = finite[: len(finite) // 2].mean()
                second = finite[len(finite) // 2 :].mean()
                checks.append(
                    (
                        f"{alg}: distance tends to increase with rank",
                        bool(second >= first * 0.85),
                        f"first_half={first:.2f} second_half={second:.2f}",
                    )
                )
    else:
        fam = result.family
        t = result.totals
        if fam == "connect":
            checks.append(
                (
                    "basic generates the most connect traffic",
                    bool(t["basic"] >= max(t["regular"], t["hybrid"])),
                    f"totals={t}",
                )
            )
            checks.append(
                (
                    "random sits above regular (long-range TTLs)",
                    bool(t["random"] >= t["regular"]),
                    f"random={t['random']:.0f} regular={t['regular']:.0f}",
                )
            )
        elif fam == "ping":
            checks.append(
                (
                    "basic generates the most ping traffic (2x effect)",
                    bool(t["basic"] >= max(t["regular"], t["random"], t["hybrid"])),
                    f"totals={t}",
                )
            )
            # Hybrid skew: its top (master) node receives a larger share
            # of pings than regular's top node.
            skew = {
                alg: float(s[alg]["curve"][0] / max(s[alg]["curve"].sum(), 1))
                for alg in result.algorithms()
            }
            checks.append(
                (
                    "hybrid load is skewed toward masters",
                    bool(skew["hybrid"] >= skew["regular"]),
                    f"top-node share={ {k: round(v, 3) for k, v in skew.items()} }",
                )
            )
        elif fam == "query":
            skew = {
                alg: float(s[alg]["curve"][0] / max(s[alg]["curve"].sum(), 1))
                for alg in result.algorithms()
            }
            checks.append(
                (
                    "hybrid queries are skewed toward masters",
                    bool(skew["hybrid"] >= skew["regular"]),
                    f"top-node share={ {k: round(v, 3) for k, v in skew.items()} }",
                )
            )
        for alg in result.algorithms():
            curve = s[alg]["curve"]
            checks.append(
                (
                    f"{alg}: curve sorted decreasing",
                    bool((np.diff(curve) <= 1e-9).all()),
                    f"head={curve[:3]}",
                )
            )
    return checks
