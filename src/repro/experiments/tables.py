"""Reproductions of the paper's two tables.

* **Table 1** -- qualitative characteristics of p2p topology classes
  (manageable / extensible / fault-tolerant / secure / lawsuit-proof /
  scalable).  The paper derives it from Minar's taxonomy; we encode the
  same traits on the topology classes our algorithms realize so the
  table is *generated from code*, not copied prose.
* **Table 2** -- the simulation parameters; generated straight from
  :class:`~repro.scenarios.config.ScenarioConfig` defaults so that the
  printed table can never drift from what the simulator actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..scenarios.config import ScenarioConfig

__all__ = ["TopologyTraits", "TOPOLOGIES", "table1_rows", "table2_rows"]


@dataclass(frozen=True)
class TopologyTraits:
    """Table 1 row: the paper's six topology characteristics."""

    name: str
    manageable: str
    extensible: str
    fault_tolerant: str
    secure: str
    lawsuit_proof: str
    scalable: str


#: The three topology classes of Table 1.  The decentralized class is
#: what Basic/Regular/Random build; the hybrid class is what Hybrid
#: builds; the centralized class exists for completeness of the
#: taxonomy (the paper adopts only the other two -- see §2).
TOPOLOGIES: Dict[str, TopologyTraits] = {
    "centralized": TopologyTraits(
        name="Centralized",
        manageable="yes",
        extensible="no",
        fault_tolerant="no",
        secure="yes",
        lawsuit_proof="no",
        scalable="depend",
    ),
    "decentralized": TopologyTraits(
        name="Decentralized",
        manageable="no",
        extensible="yes",
        fault_tolerant="yes",
        secure="no",
        lawsuit_proof="yes",
        scalable="maybe",
    ),
    "hybrid": TopologyTraits(
        name="Hybrid",
        manageable="no",
        extensible="yes",
        fault_tolerant="yes",
        secure="no",
        lawsuit_proof="yes",
        scalable="apparently",
    ),
}

#: which topology class each of our algorithms realizes
ALGORITHM_TOPOLOGY = {
    "basic": "decentralized",
    "regular": "decentralized",
    "random": "decentralized",
    "hybrid": "hybrid",
}


def table1_rows() -> List[List[str]]:
    """Table 1 as rows: header + one row per characteristic."""
    order = ["centralized", "decentralized", "hybrid"]
    traits = [
        ("Manageable", "manageable"),
        ("Extensible", "extensible"),
        ("Fault-Tolerant", "fault_tolerant"),
        ("Secure", "secure"),
        ("Lawsuit-proof", "lawsuit_proof"),
        ("Scalable", "scalable"),
    ]
    rows = [[""] + [TOPOLOGIES[t].name for t in order]]
    for label, attr in traits:
        rows.append([label] + [getattr(TOPOLOGIES[t], attr) for t in order])
    return rows


def table2_rows(cfg: ScenarioConfig | None = None) -> List[List[str]]:
    """Table 2 (parameters and typical values) from the live config."""
    cfg = cfg if cfg is not None else ScenarioConfig()
    return [
        ["Parameter for simulation", "Value"],
        ["transmission range", f"{cfg.radio_range:g} m"],
        ["number of distinct searchable files", str(cfg.num_files)],
        ["frequency of the most popular file", f"{cfg.max_freq:.0%}"],
        ["NHOPS_INITIAL", f"{cfg.p2p.nhops_initial} ad-hoc hops"],
        ["MAXNHOPS", f"{cfg.p2p.max_nhops} ad-hoc hops"],
        ["NHOPS (Basic Algorithm)", f"{cfg.p2p.nhops_basic} ad-hoc hops"],
        ["MAXDIST", f"{cfg.p2p.max_dist} ad-hoc hops"],
        ["MAXNCONN", str(cfg.p2p.max_connections)],
        ["MAXNSLAVES", str(cfg.p2p.max_slaves)],
        ["TTL for queries", f"{cfg.query.ttl} p2p hops"],
    ]
