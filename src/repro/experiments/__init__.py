"""Per-table/figure experiment definitions and text reporting."""

from .cache import RunCache, run_key
from .executor import ExperimentExecutor
from .figures import (
    ALGORITHM_ORDER,
    FIGURES,
    FigureResult,
    figure_configs,
    run_distance_answers_figure,
    run_figure,
    run_message_curve_figure,
    shape_checks,
)
from .export import (
    figure_result_to_csv,
    figure_result_to_dict,
    figure_result_to_json,
    run_result_to_dict,
    run_result_to_json,
)
from .paper_values import PAPER_FIGURES, PaperFigure, compare_with_paper
from .plots import ascii_chart, figure_chart
from .report import render_checks, render_figure, render_table
from .reproduce import DEFAULT_FIGURE_SETTINGS, reproduce_all
from .storage import ResultStore
from .sweeps import SweepPointResult, SweepSpec, run_sweep, sweep_grid
from .validation import ks_curve_test, means_differ, ordering_stability
from .tables import TOPOLOGIES, TopologyTraits, table1_rows, table2_rows

__all__ = [
    "RunCache",
    "run_key",
    "ExperimentExecutor",
    "figure_configs",
    "figure_result_to_csv",
    "figure_result_to_dict",
    "figure_result_to_json",
    "run_result_to_dict",
    "run_result_to_json",
    "ascii_chart",
    "figure_chart",
    "DEFAULT_FIGURE_SETTINGS",
    "reproduce_all",
    "PAPER_FIGURES",
    "PaperFigure",
    "compare_with_paper",
    "ResultStore",
    "SweepPointResult",
    "SweepSpec",
    "run_sweep",
    "sweep_grid",
    "ks_curve_test",
    "means_differ",
    "ordering_stability",
    "ALGORITHM_ORDER",
    "FIGURES",
    "FigureResult",
    "run_distance_answers_figure",
    "run_figure",
    "run_message_curve_figure",
    "shape_checks",
    "render_checks",
    "render_figure",
    "render_table",
    "TOPOLOGIES",
    "TopologyTraits",
    "table1_rows",
    "table2_rows",
]
