"""Serialize run and figure results to JSON / CSV.

The harness prints text tables; downstream users (plotting in a
full-featured environment, archiving sweeps) want machine-readable
output.  Everything numpy is converted to plain Python so the JSON is
portable.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

import numpy as np

from ..scenarios.runner import RunResult
from .figures import FigureResult

__all__ = [
    "run_result_to_dict",
    "run_result_to_json",
    "figure_result_to_dict",
    "figure_result_to_json",
    "figure_result_to_csv",
]


def _plain(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to built-ins."""
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return None  # JSON has no NaN/inf
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A RunResult as a JSON-ready dict."""
    return _plain(
        {
            "algorithm": result.config.algorithm,
            "num_nodes": result.config.num_nodes,
            "duration": result.config.duration,
            "seed": result.config.seed,
            "routing": result.config.routing,
            "members": result.members,
            "totals": result.totals,
            "sorted_received": {k: v for k, v in result.sorted_received.items()},
            "file_stats": [
                {
                    "file_id": s.file_id,
                    "queries": s.queries,
                    "answered": s.answered,
                    "avg_answers": s.avg_answers,
                    "avg_min_p2p_hops": s.avg_min_p2p_hops,
                    "avg_min_adhoc_hops": s.avg_min_adhoc_hops,
                }
                for s in result.file_stats
            ],
            "overlay_stats": result.overlay_stats,
            "energy_total": float(result.energy.sum()),
            "num_queries": result.num_queries,
            "events": result.events,
        }
    )


def run_result_to_json(result: RunResult, indent: int = 2) -> str:
    return json.dumps(run_result_to_dict(result), indent=indent)


def figure_result_to_dict(result: FigureResult) -> Dict[str, Any]:
    """A FigureResult as a JSON-ready dict."""
    return _plain(
        {
            "exp_id": result.exp_id,
            "kind": result.kind,
            "num_nodes": result.num_nodes,
            "duration": result.duration,
            "reps": result.reps,
            "family": result.family,
            "series": {
                alg: {k: v for k, v in payload.items()}
                for alg, payload in result.series.items()
            },
            "totals": result.totals,
        }
    )


def figure_result_to_json(result: FigureResult, indent: int = 2) -> str:
    return json.dumps(figure_result_to_dict(result), indent=indent)


def figure_result_to_csv(result: FigureResult) -> str:
    """Long-format CSV: exp_id, algorithm, series, index, value."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["exp_id", "algorithm", "series", "index", "value"])
    for alg, payload in result.series.items():
        for key, values in payload.items():
            for i, v in enumerate(np.asarray(values, dtype=float)):
                writer.writerow(
                    [result.exp_id, alg, key, i, "" if not np.isfinite(v) else f"{v:.6g}"]
                )
    return buf.getvalue()
