"""Serialize run and figure results to JSON / CSV.

The harness prints text tables; downstream users (plotting in a
full-featured environment, archiving sweeps) want machine-readable
output.  Everything numpy is converted to plain Python so the JSON is
portable.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

import numpy as np

from ..scenarios.runner import RunResult
from .figures import FigureResult

__all__ = [
    "run_result_to_dict",
    "run_result_to_json",
    "figure_result_to_dict",
    "figure_result_to_json",
    "figure_result_to_csv",
]


def _plain(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to built-ins."""
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return None  # JSON has no NaN/inf
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A RunResult as a JSON-ready dict (versioned schema v1).

    Thin alias over :meth:`RunResult.to_dict`; everything that archives
    or exports runs goes through the one schema.
    """
    return result.to_dict()


def run_result_to_json(result: RunResult, indent: int = 2) -> str:
    return json.dumps(run_result_to_dict(result), indent=indent)


def figure_result_to_dict(result: FigureResult) -> Dict[str, Any]:
    """A FigureResult as a JSON-ready dict."""
    return _plain(
        {
            "exp_id": result.exp_id,
            "kind": result.kind,
            "num_nodes": result.num_nodes,
            "duration": result.duration,
            "reps": result.reps,
            "family": result.family,
            "series": {
                alg: {k: v for k, v in payload.items()}
                for alg, payload in result.series.items()
            },
            "totals": result.totals,
        }
    )


def figure_result_to_json(result: FigureResult, indent: int = 2) -> str:
    return json.dumps(figure_result_to_dict(result), indent=indent)


def figure_result_to_csv(result: FigureResult) -> str:
    """Long-format CSV: exp_id, algorithm, series, index, value."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["exp_id", "algorithm", "series", "index", "value"])
    for alg, payload in result.series.items():
        for key, values in payload.items():
            for i, v in enumerate(np.asarray(values, dtype=float)):
                writer.writerow(
                    [result.exp_id, alg, key, i, "" if not np.isfinite(v) else f"{v:.6g}"]
                )
    return buf.getvalue()
