"""Statistical comparison of runs -- are two conditions really different?

The paper reports averages of 33 repetitions without significance
analysis.  These helpers add it for our sweeps and ablations:

* :func:`ks_curve_test` -- Kolmogorov-Smirnov on two per-node message
  curves (do two conditions induce different load *distributions*?);
* :func:`means_differ` -- Welch's t-test on per-repetition scalars;
* :func:`ordering_stability` -- how often a claimed ordering
  ("basic > regular") holds across seeds, the robustness number behind
  every shape check.

scipy is used when available; a normal-approximation fallback keeps the
module importable without it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ks_curve_test", "means_differ", "ordering_stability"]


def ks_curve_test(a: np.ndarray, b: np.ndarray) -> Tuple[float, float]:
    """Two-sample KS test on per-node load curves.

    Returns ``(statistic, p_value)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("need non-empty samples")
    try:
        from scipy import stats

        res = stats.ks_2samp(a, b)
        return float(res.statistic), float(res.pvalue)
    except ImportError:  # pragma: no cover - scipy present in dev env
        # asymptotic fallback
        all_v = np.sort(np.concatenate([a, b]))
        cdf_a = np.searchsorted(np.sort(a), all_v, side="right") / a.size
        cdf_b = np.searchsorted(np.sort(b), all_v, side="right") / b.size
        d = float(np.max(np.abs(cdf_a - cdf_b)))
        en = np.sqrt(a.size * b.size / (a.size + b.size))
        p = 2.0 * np.exp(-2.0 * (d * en) ** 2)
        return d, min(max(p, 0.0), 1.0)


def means_differ(
    xs: Sequence[float], ys: Sequence[float], alpha: float = 0.05
) -> Dict[str, float]:
    """Welch's t-test on two sets of per-repetition scalars.

    Returns ``{"t", "p", "significant", "mean_x", "mean_y"}``.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ValueError("need >= 2 repetitions per condition")
    try:
        from scipy import stats

        t, p = stats.ttest_ind(x, y, equal_var=False)
        t, p = float(t), float(p)
    except ImportError:  # pragma: no cover
        vx, vy = x.var(ddof=1), y.var(ddof=1)
        se = np.sqrt(vx / x.size + vy / y.size)
        t = float((x.mean() - y.mean()) / se) if se > 0 else 0.0
        # normal approximation
        from math import erf, sqrt

        p = float(2 * (1 - 0.5 * (1 + erf(abs(t) / sqrt(2)))))
    return {
        "t": t,
        "p": p,
        "significant": float(p < alpha),
        "mean_x": float(x.mean()),
        "mean_y": float(y.mean()),
    }


def ordering_stability(
    metric: Callable[[int], Dict[str, float]],
    ordering: Sequence[str],
    seeds: Sequence[int],
) -> Dict[str, float]:
    """How robust is a claimed ordering across seeds?

    Parameters
    ----------
    metric:
        ``metric(seed) -> {condition: value}``.
    ordering:
        The claim, e.g. ``("basic", "random", "regular")`` meaning
        basic >= random >= regular.
    seeds:
        Seeds to evaluate.

    Returns ``{"fraction_holds", "n", "per_pair": ...}`` where
    ``per_pair`` maps "a>=b" to its hold fraction.
    """
    if len(ordering) < 2:
        raise ValueError("ordering needs at least two conditions")
    pair_holds = {f"{a}>={b}": 0 for a, b in zip(ordering, ordering[1:])}
    full_holds = 0
    for seed in seeds:
        values = metric(seed)
        ok = True
        for a, b in zip(ordering, ordering[1:]):
            if values[a] >= values[b]:
                pair_holds[f"{a}>={b}"] += 1
            else:
                ok = False
        if ok:
            full_holds += 1
    n = len(seeds)
    return {
        "fraction_holds": full_holds / n,
        "n": float(n),
        "per_pair": {k: v / n for k, v in pair_holds.items()},
    }
