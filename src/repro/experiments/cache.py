"""Content-addressed memoization of complete scenario runs.

The paper's evaluation requests the *same* simulation many times: every
figure is (algorithm x repetition) over one scenario, figures 5/7/9/11
share their underlying runs outright (they harvest different series
from identical configs), and the suppression-ablation ladder re-asks
for the flood reference at every rung.  A :class:`RunCache` makes any
run requested twice anywhere in the evaluation an O(1) ndjson lookup:
it memoizes complete :class:`~repro.scenarios.runner.RunResult`\\ s
through a :class:`~repro.experiments.storage.ResultStore`, keyed on a
content address of

* the canonical :class:`~repro.scenarios.config.ScenarioConfig` codec
  sha256 (the same hash :class:`~repro.obs.manifest.RunManifest`
  computes),
* the seed (already inside the hash; kept explicit so archive tags are
  greppable), and
* the run-schema version -- a schema bump invalidates every old entry
  without touching the archive.

Because the key covers *every* config field, a change to any knob --
node count, policy spec, queue lane, analytics mode -- is a miss by
construction; a warm re-``reproduce`` is nearly free; and an
interrupted ablation resumes where it died (the store tolerates a
truncated final line).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..obs.manifest import config_hash
from ..obs.registry import Registry, default_registry
from ..obs.schema import RUN_SCHEMA_VERSION, SchemaError
from ..scenarios.config import ScenarioConfig
from ..scenarios.runner import RunResult
from .storage import ResultStore

__all__ = ["RunCache", "run_key"]

#: Tag name carrying the content address in archived records.
CACHE_KEY_TAG = "cache_key"


def run_key(
    config: ScenarioConfig, *, schema_version: int = RUN_SCHEMA_VERSION
) -> str:
    """The content address of one run: ``v<schema>:<config sha256>:<seed>``.

    The sha256 is over the canonical (sorted-keys) JSON codec of the
    *complete* config -- the hash ``RunManifest`` already records -- so
    two configs collide iff every field (seed and nested policy specs
    included) is equal, and archived manifests can be joined back to
    cache entries by hash.
    """
    d = config.to_dict()
    return f"v{int(schema_version)}:{config_hash(d)}:{int(d['seed'])}"


class RunCache:
    """Memoize complete ``RunResult``\\ s in a :class:`ResultStore`.

    Parameters
    ----------
    store:
        A :class:`ResultStore` or a path to one (``.ndjson``); the
        index over its ``run`` records is built once, lazily, on first
        lookup and kept in memory (latest entry per key wins).
    registry:
        Metrics registry for the ``experiments.cache_hits`` /
        ``experiments.cache_misses`` counters (default: the
        process-wide registry).
    schema_version:
        Run-schema version baked into every key (tests bump it to
        prove version invalidation; production leaves the default).
    """

    def __init__(
        self,
        store: Union[ResultStore, str],
        *,
        registry: Optional[Registry] = None,
        schema_version: int = RUN_SCHEMA_VERSION,
    ) -> None:
        self._registry = registry if registry is not None else default_registry()
        if not isinstance(store, ResultStore):
            store = ResultStore(str(store), registry=self._registry)
        self.store = store
        self.schema_version = int(schema_version)
        self.hits = self._registry.counter("experiments.cache_hits")
        self.misses = self._registry.counter("experiments.cache_misses")
        #: key -> archived run payload (schema dict); None until loaded
        self._index: Optional[Dict[str, Dict[str, Any]]] = None

    # ------------------------------------------------------------------
    def key_for(self, config: ScenarioConfig) -> str:
        """The content address this cache uses for ``config``."""
        return run_key(config, schema_version=self.schema_version)

    def _load_index(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            index: Dict[str, Dict[str, Any]] = {}
            for record in self.store.records(kind="run"):
                key = record.get("tags", {}).get(CACHE_KEY_TAG)
                if isinstance(key, str):
                    index[key] = record["payload"]
            self._index = index
        return self._index

    def refresh(self) -> None:
        """Drop the in-memory index (next lookup re-reads the store)."""
        self._index = None

    def __len__(self) -> int:
        return len(self._load_index())

    def __contains__(self, config: ScenarioConfig) -> bool:
        return self.key_for(config) in self._load_index()

    # ------------------------------------------------------------------
    def get(self, config: ScenarioConfig) -> Optional[RunResult]:
        """The memoized run for ``config``, or None (counted either way)."""
        payload = self._load_index().get(self.key_for(config))
        if payload is None:
            self.misses.inc()
            return None
        try:
            result = RunResult.from_dict(payload)
        except (SchemaError, KeyError, TypeError, ValueError):
            # An archived payload that no longer rehydrates (foreign
            # schema, hand-edited store) is a miss, not a crash.
            self.misses.inc()
            return None
        self.hits.inc()
        return result

    def put(self, config: ScenarioConfig, result: RunResult) -> str:
        """Memoize ``result`` under ``config``'s content address.

        Idempotent: a key already indexed is not re-appended, so warm
        evaluations never bloat the archive.  Returns the key.
        """
        key = self.key_for(config)
        index = self._load_index()
        if key not in index:
            record = self.store.append_run(result, **{CACHE_KEY_TAG: key})
            index[key] = record["payload"]
        return key
