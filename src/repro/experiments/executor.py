"""Experiment orchestration: dedup, cache, and fan runs out on a pool.

Every consumer of simulation runs -- :func:`~repro.experiments.reproduce.reproduce_all`,
:func:`~repro.experiments.figures.run_figure`,
:func:`~repro.experiments.sweeps.run_sweep`, the benches -- used to
execute its own loop of :func:`~repro.scenarios.runner.run_scenario`
calls: figures ran serially, sweeps parallelized only at grid-point
granularity with repetitions nested serially inside one worker, and a
run requested by two figures executed twice.  The
:class:`ExperimentExecutor` is the one engine behind all of them:

* a batch of requested :class:`~repro.scenarios.config.ScenarioConfig`\\ s
  is flattened into a **deduplicated unit-of-work list** keyed on the
  content address of :func:`~repro.experiments.cache.run_key` --
  identical (config, seed) jobs requested by different figures run
  once (``experiments.jobs_deduped``);
* unseen jobs consult the optional :class:`~repro.experiments.cache.RunCache`
  (``experiments.cache_hits`` / ``cache_misses``);
* the remainder executes serially or on a shared
  ``ProcessPoolExecutor`` sized by
  :func:`repro.parallel.resolve_processes` and chunked by
  :func:`repro.parallel.default_chunksize`, streaming completions back
  **in deterministic submission order** with cache write-back from the
  coordinating process only (workers never touch the store);
* results return in request order, so serial, parallel and cached
  executions are byte-identical downstream.

Simulations are deterministic functions of their config, so none of
this changes any result -- it only changes how many times each result
is computed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from ..obs.registry import Registry, default_registry
from ..parallel import default_chunksize, resolve_processes
from ..scenarios.config import ScenarioConfig
from ..scenarios.runner import RunResult, run_scenario
from .cache import RunCache, run_key

__all__ = ["ExperimentExecutor", "execute_config"]


def execute_config(config: ScenarioConfig) -> RunResult:
    """One unit of work (module-level so worker processes can pickle it)."""
    return run_scenario(config)


class ExperimentExecutor:
    """Deduplicating, cache-aware runner for batches of scenario configs.

    Parameters
    ----------
    processes:
        ``None`` or ``1`` executes in-process (the reference lane);
        values > 1 fan jobs out over that many worker processes.
        ``0`` means "every core" (:func:`~repro.parallel.resolve_processes`).
    chunksize:
        Jobs shipped per worker round trip when a pool is used
        (default: :func:`~repro.parallel.default_chunksize`).
    cache:
        Optional :class:`RunCache` (or a store path) consulted before
        executing and written back after -- always from this process.
    registry:
        Metrics registry for the orchestration counters (default: the
        process-wide registry; a cache created from a path shares it).
    """

    def __init__(
        self,
        *,
        processes: Optional[int] = None,
        chunksize: Optional[int] = None,
        cache: Optional[RunCache] = None,
        registry: Optional[Registry] = None,
    ) -> None:
        if processes is not None and processes < 0:
            raise ValueError(f"processes must be >= 0, got {processes}")
        self.processes = (
            resolve_processes(None) if processes == 0 else (processes or 1)
        )
        if self.processes > 1 and chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self._registry = registry if registry is not None else default_registry()
        if cache is not None and not isinstance(cache, RunCache):
            cache = RunCache(cache, registry=self._registry)
        self.cache = cache
        self.deduped = self._registry.counter("experiments.jobs_deduped")
        self.executed = self._registry.counter("experiments.jobs_executed")
        #: key -> completed result, shared across batches (figures that
        #: re-request a prefetched run hit this before the cache)
        self._memo: Dict[str, RunResult] = {}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Orchestration counters (cache counters when a cache rides along)."""
        out = {
            "jobs_deduped": float(self.deduped.value),
            "jobs_executed": float(self.executed.value),
        }
        if self.cache is not None:
            out["cache_hits"] = float(self.cache.hits.value)
            out["cache_misses"] = float(self.cache.misses.value)
        return out

    def _execute(self, configs: Sequence[ScenarioConfig]) -> List[RunResult]:
        """Run ``configs`` (already unique and uncached) in order."""
        if not configs:
            return []
        if self.processes > 1 and len(configs) > 1:
            chunksize = self.chunksize
            if chunksize is None:
                chunksize = default_chunksize(len(configs), self.processes)
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                stream = pool.map(execute_config, configs, chunksize=chunksize)
                return self._collect(configs, stream)
        return self._collect(configs, map(execute_config, configs))

    def _collect(self, configs, stream) -> List[RunResult]:
        """Drain completions in submission order, writing back as they land."""
        results: List[RunResult] = []
        if self.cache is not None:
            with self.cache.store.batch():
                for config, result in zip(configs, stream):
                    self.cache.put(config, result)
                    self.executed.inc()
                    results.append(result)
        else:
            for result in stream:
                self.executed.inc()
                results.append(result)
        return results

    # ------------------------------------------------------------------
    def run_configs(self, configs: Sequence[ScenarioConfig]) -> List[RunResult]:
        """Results for ``configs``, in request order.

        Plans the batch as unique jobs (first-request order), satisfies
        what it can from the in-memory memo and the cache, executes the
        rest, and maps results back onto the request list.
        """
        keys = [run_key(c) for c in configs]
        unique: Dict[str, ScenarioConfig] = {}
        for key, config in zip(keys, configs):
            if key in unique:
                self.deduped.inc()
            else:
                unique[key] = config
        todo: List[ScenarioConfig] = []
        for key, config in unique.items():
            if key in self._memo:
                continue
            if self.cache is not None:
                cached = self.cache.get(config)
                if cached is not None:
                    self._memo[key] = cached
                    continue
            todo.append(config)
        for config, result in zip(todo, self._execute(todo)):
            self._memo[run_key(config)] = result
        return [self._memo[key] for key in keys]

    def run_config(self, config: ScenarioConfig) -> RunResult:
        """Single-config convenience over :meth:`run_configs`."""
        return self.run_configs([config])[0]
