"""Structured parameter sweeps over scenarios.

The paper's evaluation and its future-work list are all sweeps: node
count, mobility, density, churn, algorithm.  This module gives them a
single engine:

* a :class:`SweepSpec` names one config field and its values (grid
  sweeps compose several specs);
* :func:`run_sweep` executes the cartesian grid, optionally across
  repetitions, through the
  :class:`~repro.experiments.executor.ExperimentExecutor` -- the grid
  is flattened into per-(point, repetition) jobs, so repetitions
  parallelize too (each run is an independent simulation --
  embarrassingly parallel, the HPC story of this package) and a cache
  makes re-swept points O(1) lookups;
* results come back as :class:`SweepPointResult` rows in grid order
  with the metrics the figures need, ready for
  `experiments.report.render_table`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..scenarios.config import ScenarioConfig
from ..scenarios.runner import RunResult
from .executor import ExperimentExecutor

__all__ = ["SweepSpec", "SweepPointResult", "sweep_grid", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """One swept dimension: a ScenarioConfig field and its values."""

    field: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"sweep over {self.field!r} needs at least one value")
        if self.field not in ScenarioConfig.__dataclass_fields__:
            raise ValueError(f"unknown ScenarioConfig field {self.field!r}")


@dataclass
class SweepPointResult:
    """Aggregated outcome of one grid point (over its repetitions)."""

    point: Dict[str, Any]
    reps: int
    #: mean network totals by family
    totals: Dict[str, float]
    #: mean overlay degree at the end of the runs
    mean_degree: float
    #: mean query answer rate
    answer_rate: float
    #: mean total energy (J)
    energy: float
    #: mean kernel events (cost proxy)
    events: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (archival / ``sweep --json``)."""
        return {
            "point": dict(self.point),
            "reps": int(self.reps),
            "totals": {k: float(v) for k, v in self.totals.items()},
            "mean_degree": float(self.mean_degree),
            "answer_rate": float(self.answer_rate),
            "energy": float(self.energy),
            "events": float(self.events),
        }


def sweep_grid(specs: Sequence[SweepSpec]) -> List[Dict[str, Any]]:
    """The cartesian product of all specs as config-override dicts."""
    if not specs:
        raise ValueError("need at least one SweepSpec")
    names = [s.field for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate sweep fields in {names}")
    grid = []
    for combo in itertools.product(*[s.values for s in specs]):
        grid.append(dict(zip(names, combo)))
    return grid


def _aggregate_point(
    overrides: Dict[str, Any], runs: Sequence[RunResult]
) -> SweepPointResult:
    """Fold one grid point's repetitions into a :class:`SweepPointResult`."""
    answer_rates = []
    for r in runs:
        answered = sum(s.answered for s in r.file_stats)
        total = sum(s.queries for s in r.file_stats)
        answer_rates.append(answered / total if total else 0.0)
    fams = runs[0].totals.keys()
    return SweepPointResult(
        point=dict(overrides),
        reps=len(runs),
        totals={f: float(np.mean([r.totals[f] for r in runs])) for f in fams},
        mean_degree=float(np.mean([r.overlay_stats["mean_degree"] for r in runs])),
        answer_rate=float(np.mean(answer_rates)),
        energy=float(np.mean([r.energy.sum() for r in runs])),
        events=float(np.mean([r.events for r in runs])),
    )


def run_sweep(
    base: ScenarioConfig,
    specs: Sequence[SweepSpec],
    *,
    reps: int = 1,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
    store=None,
    cache=None,
    executor: Optional[ExperimentExecutor] = None,
) -> List[SweepPointResult]:
    """Run the grid defined by ``specs`` on top of ``base``.

    Parameters
    ----------
    base:
        The scenario every point starts from.
    specs:
        Swept dimensions (cartesian product).
    reps:
        Repetitions per point (seed offsets, like the paper's 33).
    processes:
        If given and > 1, distribute the flattened (point, repetition)
        jobs over that many worker processes (``0``: every core); each
        job is an independent, deterministic simulation so results are
        identical to the serial run.  Repetitions parallelize like grid
        points do -- a 1-point, 33-rep sweep fills the pool.
    chunksize:
        Jobs submitted to each worker per round trip.  Defaults to
        :func:`repro.parallel.default_chunksize` --
        ``ceil(n_jobs / (4 * processes))`` capped at 32 -- so large
        grids of small points amortize pickling instead of shipping
        one-at-a-time, while keeping ~4 rounds per worker for load
        balance (the same policy the analytics engine uses for its BFS
        shard maps).  Results come back in grid order either way.
    store:
        Optional :class:`~repro.experiments.storage.ResultStore`; each
        point result is appended as a ``sweep_point`` record (from the
        coordinating process -- workers never write).
    cache:
        Optional :class:`~repro.experiments.cache.RunCache` (or store /
        ndjson path) memoizing every completed run, making re-swept
        points O(1) lookups and interrupted sweeps resumable.
    executor:
        Bring-your-own :class:`ExperimentExecutor` (overrides
        ``processes`` / ``chunksize`` / ``cache``); lets several sweeps
        share one memo and its counters.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    grid = sweep_grid(specs)
    if executor is None:
        executor = ExperimentExecutor(
            processes=processes, chunksize=chunksize, cache=cache
        )
    point_cfgs = [base.with_(**overrides) for overrides in grid]
    batch = [cfg.for_repetition(r) for cfg in point_cfgs for r in range(reps)]
    runs = executor.run_configs(batch)
    results = [
        _aggregate_point(overrides, runs[i * reps : (i + 1) * reps])
        for i, overrides in enumerate(grid)
    ]
    if store is not None:
        for point in results:
            store.append("sweep_point", point.to_dict(), reps=reps)
    return results
