"""Structured parameter sweeps over scenarios.

The paper's evaluation and its future-work list are all sweeps: node
count, mobility, density, churn, algorithm.  This module gives them a
single engine:

* a :class:`SweepSpec` names one config field and its values (grid
  sweeps compose several specs);
* :func:`run_sweep` executes the cartesian grid, optionally across
  repetitions, optionally on multiple worker processes (each point is
  an independent simulation -- embarrassingly parallel, the HPC story
  of this package);
* results come back as :class:`SweepPointResult` rows with the metrics
  the figures need, ready for `experiments.report.render_table`.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import default_chunksize
from ..scenarios.config import ScenarioConfig
from ..scenarios.runner import run_scenario

__all__ = ["SweepSpec", "SweepPointResult", "sweep_grid", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """One swept dimension: a ScenarioConfig field and its values."""

    field: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"sweep over {self.field!r} needs at least one value")
        if self.field not in ScenarioConfig.__dataclass_fields__:
            raise ValueError(f"unknown ScenarioConfig field {self.field!r}")


@dataclass
class SweepPointResult:
    """Aggregated outcome of one grid point (over its repetitions)."""

    point: Dict[str, Any]
    reps: int
    #: mean network totals by family
    totals: Dict[str, float]
    #: mean overlay degree at the end of the runs
    mean_degree: float
    #: mean query answer rate
    answer_rate: float
    #: mean total energy (J)
    energy: float
    #: mean kernel events (cost proxy)
    events: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (archival / ``sweep --json``)."""
        return {
            "point": dict(self.point),
            "reps": int(self.reps),
            "totals": {k: float(v) for k, v in self.totals.items()},
            "mean_degree": float(self.mean_degree),
            "answer_rate": float(self.answer_rate),
            "energy": float(self.energy),
            "events": float(self.events),
        }


def sweep_grid(specs: Sequence[SweepSpec]) -> List[Dict[str, Any]]:
    """The cartesian product of all specs as config-override dicts."""
    if not specs:
        raise ValueError("need at least one SweepSpec")
    names = [s.field for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate sweep fields in {names}")
    grid = []
    for combo in itertools.product(*[s.values for s in specs]):
        grid.append(dict(zip(names, combo)))
    return grid


def _run_point(args: Tuple[ScenarioConfig, Dict[str, Any], int]) -> SweepPointResult:
    base, overrides, reps = args
    cfg0 = base.with_(**overrides)
    runs = [run_scenario(cfg0.for_repetition(r)) for r in range(reps)]
    answer_rates = []
    for r in runs:
        answered = sum(s.answered for s in r.file_stats)
        total = sum(s.queries for s in r.file_stats)
        answer_rates.append(answered / total if total else 0.0)
    fams = runs[0].totals.keys()
    return SweepPointResult(
        point=dict(overrides),
        reps=reps,
        totals={f: float(np.mean([r.totals[f] for r in runs])) for f in fams},
        mean_degree=float(np.mean([r.overlay_stats["mean_degree"] for r in runs])),
        answer_rate=float(np.mean(answer_rates)),
        energy=float(np.mean([r.energy.sum() for r in runs])),
        events=float(np.mean([r.events for r in runs])),
    )


def run_sweep(
    base: ScenarioConfig,
    specs: Sequence[SweepSpec],
    *,
    reps: int = 1,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
    store=None,
) -> List[SweepPointResult]:
    """Run the grid defined by ``specs`` on top of ``base``.

    Parameters
    ----------
    base:
        The scenario every point starts from.
    specs:
        Swept dimensions (cartesian product).
    reps:
        Repetitions per point (seed offsets, like the paper's 33).
    processes:
        If given and > 1, distribute points over worker processes; each
        point is an independent, deterministic simulation so results are
        identical to the serial run.
    chunksize:
        Grid points submitted to each worker per round trip.  Defaults
        to :func:`repro.parallel.default_chunksize` --
        ``ceil(len(grid) / (4 * processes))`` capped at 32 -- so large
        grids of small points amortize pickling instead of shipping
        one-at-a-time, while keeping ~4 rounds per worker for load
        balance (the same policy the analytics engine uses for its BFS
        shard maps).  Results come back in grid order either way.
    store:
        Optional :class:`~repro.experiments.storage.ResultStore`; each
        point result is appended as a ``sweep_point`` record (from the
        coordinating process -- workers never write).
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    grid = sweep_grid(specs)
    jobs = [(base, overrides, reps) for overrides in grid]
    if processes is not None and processes > 1:
        if chunksize is None:
            chunksize = default_chunksize(len(jobs), processes)
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        with ProcessPoolExecutor(max_workers=processes) as pool:
            results = list(pool.map(_run_point, jobs, chunksize=chunksize))
    else:
        results = [_run_point(job) for job in jobs]
    if store is not None:
        for point in results:
            store.append("sweep_point", point.to_dict(), reps=reps)
    return results
