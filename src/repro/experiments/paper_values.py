"""What the paper's figures actually show, encoded as data.

Absolute numbers are not expected to transfer (our substrate is a
collision-free simulator with different timer constants; the paper ran
ns-2 on 2002 hardware), but each figure makes qualitative claims and
shows axis magnitudes that can be read off the plots.  This module
records them so EXPERIMENTS.md and the benches compare against *stated
paper content*, not against folklore.

Sources: §7.4 text and Figures 5-12 of the IPDPS'03 paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["PaperFigure", "PAPER_FIGURES", "compare_with_paper"]


@dataclass(frozen=True)
class PaperFigure:
    """Recorded content of one paper figure."""

    exp_id: str
    caption: str
    #: y-axis range readable from the plot (paper units)
    y_range: Tuple[float, float]
    #: qualitative claims made by the figure/its discussion, as
    #: (claim id, prose) -- claim ids match experiments.figures.shape_checks
    claims: Tuple[Tuple[str, str], ...] = ()


PAPER_FIGURES: Dict[str, PaperFigure] = {
    "fig5": PaperFigure(
        exp_id="fig5",
        caption="Distance to find the file and # of answers per file request (50 nodes, 75% p2p)",
        y_range=(1.1, 1.45),
        claims=(
            (
                "answers decay with rank",
                "the number of answers decreases as the requested file becomes unpopular, reflecting the Zipf distribution",
            ),
            (
                "distance tends to increase",
                "despite some oscillations, the distance tends to increase",
            ),
        ),
    ),
    "fig6": PaperFigure(
        exp_id="fig6",
        caption="Distance to find the file and # of answers per file request (150 nodes, 75% p2p)",
        y_range=(1.3, 1.75),
        claims=(
            ("answers decay with rank", "same Zipf decay as fig5"),
            ("distance tends to increase", "same tendency as fig5"),
        ),
    ),
    "fig7": PaperFigure(
        exp_id="fig7",
        caption="Connect messages (50 nodes, 75% p2p)",
        y_range=(20, 180),
        claims=(
            (
                "basic generates the most connect traffic",
                "the Basic algorithm, which uses broadcasts indiscriminately, presents greater values for all nodes",
            ),
            (
                "random sits above regular (long-range TTLs)",
                "the curve of the Random algorithm is above the ones of the Regular and the Hybrid algorithms due to the random connection establishment phase, in which broadcast messages are sent with higher TTL values",
            ),
        ),
    ),
    "fig8": PaperFigure(
        exp_id="fig8",
        caption="Connect messages (150 nodes, 75% p2p)",
        y_range=(0, 800),
        claims=(
            ("basic generates the most connect traffic", "as fig7"),
            ("random sits above regular (long-range TTLs)", "as fig7"),
        ),
    ),
    "fig9": PaperFigure(
        exp_id="fig9",
        caption="Pings (50 nodes, 75% p2p)",
        y_range=(0, 50),
        claims=(
            (
                "basic generates the most ping traffic (2x effect)",
                "the three improved algorithms profited from the symmetrical connections: only one node sends pings; this feature diminishes the overall number of messages",
            ),
            (
                "hybrid load is skewed toward masters",
                "the hybrid algorithm puts a bigger burden on nodes with a high qualifier: masters get more ping messages",
            ),
        ),
    ),
    "fig10": PaperFigure(
        exp_id="fig10",
        caption="Pings (150 nodes, 75% p2p)",
        y_range=(0, 120),
        claims=(
            ("basic generates the most ping traffic (2x effect)", "as fig9"),
            ("hybrid load is skewed toward masters", "as fig9"),
        ),
    ),
    "fig11": PaperFigure(
        exp_id="fig11",
        caption="Queries (50 nodes, 75% p2p)",
        y_range=(0, 160),
        claims=(
            (
                "hybrid queries are skewed toward masters",
                "masters get more query messages",
            ),
        ),
    ),
    "fig12": PaperFigure(
        exp_id="fig12",
        caption="Queries (150 nodes, 75% p2p)",
        y_range=(0, 700),
        claims=(
            ("hybrid queries are skewed toward masters", "as fig11"),
        ),
    ),
}


def compare_with_paper(result) -> List[dict]:
    """Match a FigureResult's shape checks against the paper's claims.

    Returns one row per paper claim:
    ``{"claim", "paper_says", "holds", "measured"}``.
    A claim whose shape check is missing from the result is reported
    with ``holds=None`` (not evaluated).
    """
    from .figures import shape_checks

    paper = PAPER_FIGURES.get(result.exp_id)
    if paper is None:
        raise ValueError(f"no paper record for {result.exp_id!r}")
    ours = [(claim, holds, detail) for claim, holds, detail in shape_checks(result)]
    rows = []
    for claim_id, prose in paper.claims:
        # aggregate multi-algorithm claims ("answers decay with rank")
        matching = [(h, d) for claim, h, d in ours if claim_id in claim]
        if matching:
            holds = all(h for h, _ in matching)
            # distinct details only (one per algorithm, first few shown)
            seen: list = []
            for _, d in matching:
                if d not in seen:
                    seen.append(d)
            detail = "; ".join(seen[:4])
        else:
            holds, detail = None, "not evaluated"
        rows.append(
            {
                "claim": claim_id,
                "paper_says": prose,
                "holds": holds,
                "measured": detail,
            }
        )
    return rows
