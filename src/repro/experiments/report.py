"""Plain-text rendering of reproduced figures and tables.

The benches and the CLI print through these helpers so every experiment
emits the same rows/series the paper reports, in a stable, diffable
format.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .figures import FigureResult, shape_checks

__all__ = ["render_table", "render_figure", "render_checks"]


def render_table(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Fixed-width text table (first row is the header)."""
    if not rows:
        return ""
    widths = [max(len(str(r[c])) for r in rows) for c in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rows
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*[str(x) for x in header]))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append(fmt.format(*[str(x) for x in row]))
    return "\n".join(lines)


def _fmt(x: float) -> str:
    if isinstance(x, float) and not np.isfinite(x):
        return "-"
    return f"{x:.2f}"


def render_figure(result: FigureResult, max_rows: int = 12) -> str:
    """Render a FigureResult as the paper's rows/series."""
    algs = result.algorithms()
    lines = [
        f"== {result.exp_id}: {result.num_nodes} nodes, "
        f"{result.duration:g}s x {result.reps} reps =="
    ]
    if result.kind == "distance_answers":
        rows = [["file rank"] + [f"{a}:dist" for a in algs] + [f"{a}:answ" for a in algs]]
        n = len(next(iter(result.series.values()))["distance"])
        for i in range(n):
            rows.append(
                [str(i + 1)]
                + [_fmt(result.series[a]["distance"][i]) for a in algs]
                + [_fmt(result.series[a]["answers"][i]) for a in algs]
            )
        lines.append(render_table(rows))
    else:
        lines.append(f"family: {result.family}")
        rows = [["node#"] + list(algs)]
        length = max(len(result.series[a]["curve"]) for a in algs)
        idx = list(range(min(length, max_rows)))
        if length > max_rows:
            idx = sorted(set(np.linspace(0, length - 1, max_rows).astype(int)))
        for i in idx:
            rows.append(
                [str(i)]
                + [
                    _fmt(float(result.series[a]["curve"][i]))
                    if i < len(result.series[a]["curve"])
                    else "-"
                    for a in algs
                ]
            )
        lines.append(render_table(rows))
        lines.append(
            "network totals: "
            + ", ".join(f"{a}={result.totals[a]:.0f}" for a in algs)
        )
    return "\n".join(lines)


def render_checks(result: FigureResult) -> str:
    """Render the shape-expectation checklist for a result."""
    lines = [f"shape checks for {result.exp_id}:"]
    for claim, holds, detail in shape_checks(result):
        mark = "PASS" if holds else "FAIL"
        lines.append(f"  [{mark}] {claim}  ({detail})")
    return "\n".join(lines)


def render_paper_comparison(result: FigureResult) -> str:
    """Render the paper-claim vs measured comparison for a result."""
    from .paper_values import PAPER_FIGURES, compare_with_paper

    paper = PAPER_FIGURES[result.exp_id]
    lines = [f'paper vs measured for {result.exp_id} ("{paper.caption}"):']
    for row in compare_with_paper(result):
        mark = {True: "AGREES", False: "DIFFERS", None: "N/A"}[row["holds"]]
        lines.append(f"  [{mark}] {row['claim']}")
        lines.append(f"      paper:    {row['paper_says']}")
        lines.append(f"      measured: {row['measured']}")
    return "\n".join(lines)
