"""Terminal plotting: render the paper's figures as ASCII charts.

No matplotlib in the reproduction environment, so the harness draws its
own: multi-series line charts on a character grid, with axis labels and
a legend.  Good enough to eyeball the curve shapes of Figures 5-12 next
to the paper's plots.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_chart", "figure_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named series as an ASCII line chart.

    Each series is sampled/interpolated onto ``width`` columns; the
    y-range spans all finite values across all series.
    """
    if not series:
        return "(no data)"
    finite_vals = [
        v
        for vals in series.values()
        for v in np.asarray(vals, dtype=float).ravel()
        if np.isfinite(v)
    ]
    if not finite_vals:
        return "(no finite data)"
    lo, hi = min(finite_vals), max(finite_vals)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    for si, (name, vals) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        vals = np.asarray(vals, dtype=float).ravel()
        if vals.size == 0:
            continue
        xs = np.linspace(0, vals.size - 1, width)
        interp = np.interp(xs, np.arange(vals.size), vals)
        for col, v in enumerate(interp):
            if not np.isfinite(v):
                continue
            row = int(round((hi - v) / (hi - lo) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{hi:.4g}"
    y_bot = f"{lo:.4g}"
    label_w = max(len(y_top), len(y_bot), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_top.rjust(label_w)
        elif r == height - 1:
            prefix = y_bot.rjust(label_w)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    if x_label:
        lines.append(" " * (label_w + 2) + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def figure_chart(result, key: str = "curve", **kwargs) -> str:
    """Chart a FigureResult: one line per algorithm.

    ``key`` picks the series ("curve" for Figures 7-12; "distance" or
    "answers" for Figures 5/6).
    """
    series = {
        alg: result.series[alg][key]
        for alg in result.algorithms()
        if key in result.series[alg]
    }
    defaults = {
        "title": f"{result.exp_id} ({key}, {result.num_nodes} nodes)",
        "x_label": "file rank" if key in ("distance", "answers") else "node (sorted)",
        "y_label": key,
    }
    defaults.update(kwargs)
    return ascii_chart(series, **defaults)
