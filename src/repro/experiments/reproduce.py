"""One-call reproduction of the paper's entire evaluation.

:func:`reproduce_all` runs Tables 1-2 and Figures 5-12, writes every
result to an output directory (text report + JSON + CSV per figure,
plus a summary with the paper-claim verdicts), and returns the results
in memory.  The CLI exposes it as ``p2p-manet reproduce``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from .export import figure_result_to_csv, figure_result_to_json
from .figures import FigureResult, run_figure
from .paper_values import compare_with_paper
from .report import (
    render_figure,
    render_paper_comparison,
    render_table,
)
from .tables import table1_rows, table2_rows

__all__ = ["reproduce_all", "DEFAULT_FIGURE_SETTINGS"]

#: laptop-scale defaults per figure: (duration seconds, repetitions)
DEFAULT_FIGURE_SETTINGS: Dict[str, tuple] = {
    "fig5": (400.0, 2),
    "fig6": (240.0, 1),
    "fig7": (400.0, 2),
    "fig8": (240.0, 1),
    "fig9": (400.0, 2),
    "fig10": (240.0, 1),
    "fig11": (400.0, 2),
    "fig12": (240.0, 1),
}


def reproduce_all(
    out_dir: str,
    *,
    figures: Optional[Sequence[str]] = None,
    duration: Optional[float] = None,
    reps: Optional[int] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, FigureResult]:
    """Run the full evaluation and write artifacts under ``out_dir``.

    Parameters
    ----------
    out_dir:
        Created if missing.  Gets ``tables.txt``, per-figure
        ``<fig>.txt`` / ``<fig>.json`` / ``<fig>.csv``, and
        ``SUMMARY.md``.
    figures:
        Subset to run (default: all eight).
    duration, reps:
        Override every figure's settings (default: per-figure
        laptop-scale values; the paper scale is 3600 / 33).
    """
    wanted = list(figures) if figures is not None else list(DEFAULT_FIGURE_SETTINGS)
    unknown = [f for f in wanted if f not in DEFAULT_FIGURE_SETTINGS]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}")
    os.makedirs(out_dir, exist_ok=True)
    say = progress if progress is not None else (lambda s: None)

    tables_txt = (
        render_table(table1_rows(), title="Table 1. Topologies and their characteristics.")
        + "\n\n"
        + render_table(table2_rows(), title="Table 2. Parameters used and their typical values.")
        + "\n"
    )
    with open(os.path.join(out_dir, "tables.txt"), "w") as fh:
        fh.write(tables_txt)
    say("tables written")

    results: Dict[str, FigureResult] = {}
    summary: List[str] = ["# Reproduction summary", ""]
    agree = differ = 0
    for exp_id in wanted:
        d, r = DEFAULT_FIGURE_SETTINGS[exp_id]
        d = duration if duration is not None else d
        r = reps if reps is not None else r
        say(f"running {exp_id} ({d:g}s x {r})...")
        result = run_figure(exp_id, duration=d, reps=r, seed=seed)
        results[exp_id] = result
        with open(os.path.join(out_dir, f"{exp_id}.txt"), "w") as fh:
            fh.write(render_figure(result) + "\n\n" + render_paper_comparison(result) + "\n")
        with open(os.path.join(out_dir, f"{exp_id}.json"), "w") as fh:
            fh.write(figure_result_to_json(result))
        with open(os.path.join(out_dir, f"{exp_id}.csv"), "w") as fh:
            fh.write(figure_result_to_csv(result))
        rows = compare_with_paper(result)
        for row in rows:
            if row["holds"] is True:
                agree += 1
            elif row["holds"] is False:
                differ += 1
        verdicts = ", ".join(
            ("OK" if row["holds"] else "DIFFERS") if row["holds"] is not None else "n/a"
            for row in rows
        )
        summary.append(f"* **{exp_id}** ({d:g}s x {r}): {verdicts}")
        say(f"{exp_id} done")

    summary += [
        "",
        f"paper claims checked: {agree + differ}, agreeing: {agree}, differing: {differ}",
        "",
        "Artifacts: tables.txt, <fig>.txt/json/csv per figure.",
    ]
    with open(os.path.join(out_dir, "SUMMARY.md"), "w") as fh:
        fh.write("\n".join(summary) + "\n")
    say("summary written")
    return results
