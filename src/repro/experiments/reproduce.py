"""One-call reproduction of the paper's entire evaluation.

:func:`reproduce_all` runs Tables 1-2 and Figures 5-12, writes every
result to an output directory (text report + JSON + CSV per figure,
plus a summary with the paper-claim verdicts), and returns the results
in memory.  The CLI exposes it as ``p2p-manet reproduce``.

Since the experiment-orchestration plane landed, the evaluation is
planned as **one deduplicated batch**: the configs of every requested
figure are flattened into a unit-of-work list, identical runs
requested by different figures (figures 5/7/9/11 share theirs, as do
6/8/10/12) execute once, the batch optionally fans out over worker
processes and/or memoizes through a
:class:`~repro.experiments.cache.RunCache` -- so a warm re-reproduce
is nearly free and an interrupted evaluation resumes where it died --
and each figure then harvests from the memoized results.  Cached,
parallel and serial lanes produce byte-identical figure JSON.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Union

from .cache import RunCache
from .executor import ExperimentExecutor
from .export import figure_result_to_csv, figure_result_to_json
from .figures import FigureResult, figure_configs, run_figure
from .paper_values import compare_with_paper
from .report import (
    render_figure,
    render_paper_comparison,
    render_table,
)
from .storage import ResultStore
from .tables import table1_rows, table2_rows

__all__ = ["reproduce_all", "DEFAULT_FIGURE_SETTINGS"]

#: laptop-scale defaults per figure: (duration seconds, repetitions)
DEFAULT_FIGURE_SETTINGS: Dict[str, tuple] = {
    "fig5": (400.0, 2),
    "fig6": (240.0, 1),
    "fig7": (400.0, 2),
    "fig8": (240.0, 1),
    "fig9": (400.0, 2),
    "fig10": (240.0, 1),
    "fig11": (400.0, 2),
    "fig12": (240.0, 1),
}


def reproduce_all(
    out_dir: str,
    *,
    figures: Optional[Sequence[str]] = None,
    duration: Optional[float] = None,
    reps: Optional[int] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    processes: Optional[int] = None,
    cache: Optional[Union[RunCache, ResultStore, str]] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> Dict[str, FigureResult]:
    """Run the full evaluation and write artifacts under ``out_dir``.

    Parameters
    ----------
    out_dir:
        Created if missing.  Gets ``tables.txt``, per-figure
        ``<fig>.txt`` / ``<fig>.json`` / ``<fig>.csv``, and
        ``SUMMARY.md``.
    figures:
        Subset to run (default: all eight).
    duration, reps:
        Override every figure's settings (default: per-figure
        laptop-scale values; the paper scale is 3600 / 33).
    processes:
        Worker processes for the deduplicated run batch (None/1:
        in-process; 0: every core).  Results are byte-identical to the
        serial lane.
    cache:
        Optional :class:`RunCache` (or a store / ndjson path): every
        completed run is memoized, already-memoized runs are O(1)
        lookups, and an interrupted evaluation resumes where it died.
    executor:
        Bring-your-own :class:`ExperimentExecutor` (overrides
        ``processes`` / ``cache``); used by the benches to read the
        orchestration counters afterwards.
    """
    wanted = list(figures) if figures is not None else list(DEFAULT_FIGURE_SETTINGS)
    unknown = [f for f in wanted if f not in DEFAULT_FIGURE_SETTINGS]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}")
    os.makedirs(out_dir, exist_ok=True)
    say = progress if progress is not None else (lambda s: None)
    if executor is None:
        if cache is not None and not isinstance(cache, RunCache):
            cache = RunCache(cache)
        executor = ExperimentExecutor(processes=processes, cache=cache)

    tables_txt = (
        render_table(table1_rows(), title="Table 1. Topologies and their characteristics.")
        + "\n\n"
        + render_table(table2_rows(), title="Table 2. Parameters used and their typical values.")
        + "\n"
    )
    with open(os.path.join(out_dir, "tables.txt"), "w") as fh:
        fh.write(tables_txt)
    say("tables written")

    def settings(exp_id: str) -> Dict[str, float]:
        d, r = DEFAULT_FIGURE_SETTINGS[exp_id]
        return {
            "duration": duration if duration is not None else d,
            "reps": reps if reps is not None else r,
            "seed": seed,
        }

    # One flattened, deduplicated batch for every figure: figs sharing a
    # scenario (5/7/9/11 and 6/8/10/12 at equal settings) run it once.
    batch = [c for exp_id in wanted for c in figure_configs(exp_id, **settings(exp_id))]
    say(f"planning {len(batch)} runs across {len(wanted)} figures...")
    executor.run_configs(batch)
    stats = executor.stats()
    say(
        "batch done: {0:g} executed, {1:g} deduped, {2:g} cache hits".format(
            stats["jobs_executed"],
            stats["jobs_deduped"],
            stats.get("cache_hits", 0.0),
        )
    )

    results: Dict[str, FigureResult] = {}
    summary: List[str] = ["# Reproduction summary", ""]
    agree = differ = 0
    for exp_id in wanted:
        s = settings(exp_id)
        d, r = s["duration"], int(s["reps"])
        say(f"harvesting {exp_id} ({d:g}s x {r})...")
        result = run_figure(exp_id, duration=d, reps=r, seed=seed, executor=executor)
        results[exp_id] = result
        with open(os.path.join(out_dir, f"{exp_id}.txt"), "w") as fh:
            fh.write(render_figure(result) + "\n\n" + render_paper_comparison(result) + "\n")
        with open(os.path.join(out_dir, f"{exp_id}.json"), "w") as fh:
            fh.write(figure_result_to_json(result))
        with open(os.path.join(out_dir, f"{exp_id}.csv"), "w") as fh:
            fh.write(figure_result_to_csv(result))
        rows = compare_with_paper(result)
        for row in rows:
            if row["holds"] is True:
                agree += 1
            elif row["holds"] is False:
                differ += 1
        verdicts = ", ".join(
            ("OK" if row["holds"] else "DIFFERS") if row["holds"] is not None else "n/a"
            for row in rows
        )
        summary.append(f"* **{exp_id}** ({d:g}s x {r}): {verdicts}")
        say(f"{exp_id} done")

    summary += [
        "",
        f"paper claims checked: {agree + differ}, agreeing: {agree}, differing: {differ}",
        "",
        "Artifacts: tables.txt, <fig>.txt/json/csv per figure.",
    ]
    with open(os.path.join(out_dir, "SUMMARY.md"), "w") as fh:
        fh.write("\n".join(summary) + "\n")
    say("summary written")
    return results
