"""Result storage: an append-only ndjson archive of runs.

Long evaluations (33-rep sweeps) should survive the Python process.
:class:`ResultStore` appends tagged records -- one JSON object per line,
so files are greppable, diffable and stream-loadable -- and supports
filtered loading.  RunResults and FigureResults serialize through
:mod:`repro.experiments.export`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..obs.registry import Registry, default_registry
from ..obs.schema import validate_run_dict
from ..scenarios.runner import RunResult
from .export import figure_result_to_dict, run_result_to_dict
from .figures import FigureResult

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only archive of experiment records.

    Parameters
    ----------
    path:
        The ndjson file (created on first append; parent directory must
        exist).
    registry:
        Metrics registry for the ``storage.corrupt_lines`` counter
        (default: the process-wide :func:`~repro.obs.registry.default_registry`).
    """

    def __init__(self, path: str, *, registry: Optional[Registry] = None) -> None:
        self.path = str(path)
        self._registry = registry if registry is not None else default_registry()
        self._corrupt_lines = self._registry.counter("storage.corrupt_lines")
        #: open append handle while inside :meth:`batch`, else None
        self._batch_fh = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: Dict[str, Any], **tags: Any) -> Dict[str, Any]:
        """Append one record; returns it (with envelope fields added).

        The envelope carries ``kind``, ``tags`` and a wall-clock
        ``recorded_at`` so archives from different sessions interleave
        safely.
        """
        record = {
            "kind": kind,
            "tags": {str(k): v for k, v in tags.items()},
            "recorded_at": time.time(),
            "payload": payload,
        }
        line = json.dumps(record)
        if self._batch_fh is not None:
            self._batch_fh.write(line + "\n")
        else:
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
        return record

    @contextmanager
    def batch(self) -> Iterator["ResultStore"]:
        """Open-once append context: every :meth:`append` inside shares
        one file handle (flushed on exit) instead of reopening the file
        per record.  This is the executor's write-back path; reentrant
        (a nested batch reuses the outer handle).
        """
        if self._batch_fh is not None:
            yield self
            return
        with open(self.path, "a") as fh:
            self._batch_fh = fh
            try:
                yield self
            finally:
                self._batch_fh = None
                fh.flush()

    def append_run(self, result: RunResult, **tags: Any) -> Dict[str, Any]:
        """Archive a scenario run (validated against the run schema)."""
        payload = run_result_to_dict(result)
        validate_run_dict(payload)
        return self.append("run", payload, **tags)

    def append_figure(self, result: FigureResult, **tags: Any) -> Dict[str, Any]:
        """Archive a reproduced figure."""
        return self.append("figure", figure_result_to_dict(result), **tags)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(
        self,
        *,
        kind: Optional[str] = None,
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        **tag_filters: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Yield records matching the filters (missing file = empty).

        A line that fails to parse -- typically the final line of a
        store whose writer was killed mid-append -- is skipped and
        counted on ``storage.corrupt_lines`` instead of poisoning every
        subsequent load of the archive.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self._corrupt_lines.inc()
                    continue
                if not isinstance(record, dict):
                    self._corrupt_lines.inc()
                    continue
                if kind is not None and record.get("kind") != kind:
                    continue
                tags = record.get("tags", {})
                if any(tags.get(k) != v for k, v in tag_filters.items()):
                    continue
                if where is not None and not where(record):
                    continue
                yield record

    def load(self, **kwargs) -> List[Dict[str, Any]]:
        """Materialized :meth:`records`."""
        return list(self.records(**kwargs))

    def load_runs(self, **kwargs) -> List[RunResult]:
        """Archived runs rehydrated as :class:`RunResult` objects."""
        return [
            RunResult.from_dict(r["payload"])
            for r in self.records(kind="run", **kwargs)
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def latest(self, **kwargs) -> Optional[Dict[str, Any]]:
        """Most recently recorded matching record, or None."""
        best = None
        for record in self.records(**kwargs):
            if best is None or record["recorded_at"] >= best["recorded_at"]:
                best = record
        return best
