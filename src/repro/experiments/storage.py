"""Result storage: an append-only ndjson archive of runs.

Long evaluations (33-rep sweeps) should survive the Python process.
:class:`ResultStore` appends tagged records -- one JSON object per line,
so files are greppable, diffable and stream-loadable -- and supports
filtered loading.  RunResults and FigureResults serialize through
:mod:`repro.experiments.export`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..obs.schema import validate_run_dict
from ..scenarios.runner import RunResult
from .export import figure_result_to_dict, run_result_to_dict
from .figures import FigureResult

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only archive of experiment records.

    Parameters
    ----------
    path:
        The ndjson file (created on first append; parent directory must
        exist).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: Dict[str, Any], **tags: Any) -> Dict[str, Any]:
        """Append one record; returns it (with envelope fields added).

        The envelope carries ``kind``, ``tags`` and a wall-clock
        ``recorded_at`` so archives from different sessions interleave
        safely.
        """
        record = {
            "kind": kind,
            "tags": {str(k): v for k, v in tags.items()},
            "recorded_at": time.time(),
            "payload": payload,
        }
        line = json.dumps(record)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        return record

    def append_run(self, result: RunResult, **tags: Any) -> Dict[str, Any]:
        """Archive a scenario run (validated against the run schema)."""
        payload = run_result_to_dict(result)
        validate_run_dict(payload)
        return self.append("run", payload, **tags)

    def append_figure(self, result: FigureResult, **tags: Any) -> Dict[str, Any]:
        """Archive a reproduced figure."""
        return self.append("figure", figure_result_to_dict(result), **tags)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(
        self,
        *,
        kind: Optional[str] = None,
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        **tag_filters: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Yield records matching the filters (missing file = empty)."""
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if kind is not None and record.get("kind") != kind:
                    continue
                tags = record.get("tags", {})
                if any(tags.get(k) != v for k, v in tag_filters.items()):
                    continue
                if where is not None and not where(record):
                    continue
                yield record

    def load(self, **kwargs) -> List[Dict[str, Any]]:
        """Materialized :meth:`records`."""
        return list(self.records(**kwargs))

    def load_runs(self, **kwargs) -> List[RunResult]:
        """Archived runs rehydrated as :class:`RunResult` objects."""
        return [
            RunResult.from_dict(r["payload"])
            for r in self.records(kind="run", **kwargs)
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def latest(self, **kwargs) -> Optional[Dict[str, Any]]:
        """Most recently recorded matching record, or None."""
        best = None
        for record in self.records(**kwargs):
            if best is None or record["recorded_at"] >= best["recorded_at"]:
                best = record
        return best
