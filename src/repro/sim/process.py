"""Generator-based processes on top of the event kernel.

The protocol state machines in this package are mostly written as plain
callback chains, but long-lived control loops (the paper's
``while the node belongs to p2p network`` loops) read much more naturally
as coroutines.  A :class:`Process` wraps a generator that *yields*:

* a ``float``/``int`` -- sleep that many simulated seconds, or
* :data:`WAIT` -- park until somebody calls :meth:`Process.wake`.

Example
-------
>>> from repro.sim.kernel import Simulator
>>> sim = Simulator()
>>> out = []
>>> def loop():
...     while True:
...         out.append(sim.now)
...         yield 2.0
>>> p = Process(sim, loop())
>>> sim.run(until=5.0)
>>> out
[0.0, 2.0, 4.0]
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Event, Priority
from .kernel import Simulator

__all__ = ["Process", "WAIT"]

#: Sentinel a process yields to park until an external :meth:`Process.wake`.
WAIT = object()


class Process:
    """Drives a generator as a simulated process.

    The generator starts at the current simulation time (via a zero-delay
    event, preserving deterministic ordering with other events scheduled
    at the same instant).

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    gen:
        The generator to drive.
    name:
        Optional label for debugging.
    """

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self._pending: Optional[Event] = None
        self._waiting = False
        self._pending = sim.schedule(0.0, self._advance, priority=Priority.HIGH)

    def _advance(self, value: Any = None) -> None:
        self._pending = None
        self._waiting = False
        if not self.alive:
            return
        try:
            yielded = self.gen.send(value) if value is not None else next(self.gen)
        except StopIteration:
            self.alive = False
            return
        if yielded is WAIT:
            self._waiting = True
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {yielded!r}")
            self._pending = self.sim.schedule(float(yielded), self._advance)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected a delay or WAIT"
            )

    def wake(self, value: Any = True) -> None:
        """Resume a process parked on :data:`WAIT`.

        The resumption happens through a zero-delay event so the caller's
        stack unwinds first.  Waking a process that is not parked is a
        no-op (e.g. it already timed out).
        """
        if self.alive and self._waiting:
            self._waiting = False
            self._pending = self.sim.schedule(
                0.0, self._advance, value, priority=Priority.HIGH
            )

    def kill(self) -> None:
        """Terminate the process; any pending wake-up is cancelled."""
        self.alive = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if not self.alive else ("waiting" if self._waiting else "running")
        return f"<Process {self.name!r} {state}>"
