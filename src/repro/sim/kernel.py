"""Discrete-event simulation kernel.

A minimal, deterministic event loop in the style of ns-2's scheduler:
a pending-event queue of :class:`~repro.sim.events.Event` records
ordered by ``(time, priority, seq)``.  All higher layers (radio, AODV,
the p2p overlay) schedule plain callbacks or generator-based processes
on a single :class:`Simulator` instance.

Design notes
------------
* The pending-event structure is a pluggable *queue lane*
  (:mod:`repro.sim.calqueue`): ``queue="calendar"`` (the default) is a
  self-calibrating calendar queue with O(1) amortized insert;
  ``queue="heap"`` keeps the original binary heap as the reference
  lane.  Both lanes dispatch in the exact same total order (``seq`` is
  unique, so the order admits no tie-breaking freedom), which the
  equivalence suites prove end-to-end.
* Cancellation is lazy (events carry a ``cancelled`` flag and are skipped
  when popped) so cancelling the thousands of ping timeouts a p2p run
  creates is O(1) each.  To keep lazy cancellation from bloating the
  queue on long runs, the kernel counts dead entries and *compacts* (one
  O(live) filter pass) whenever cancelled events outnumber live
  ones; ``events_skipped`` and ``heap_compactions`` expose the cost.
* The live-event count is maintained incrementally (+1 on schedule, -1
  on dispatch or cancel), so ``pending()`` / ``len(sim)`` / the obs
  sampler's snapshots are O(1) instead of an O(queue) scan per call.
* An event may carry ``weight=k``: one queue entry standing for k logical
  events (batched broadcast delivery).  Dispatch counts the weight, so
  ``events_dispatched`` is comparable across batched and unbatched
  schedules; ``heap_pushes`` counts raw queue traffic (the name predates
  the calendar lane and is kept for trajectory continuity) and shows the
  batching win.
* The kernel never advances past ``run(until=...)``; events beyond the
  horizon stay queued, which lets callers resume the same simulation
  (``run`` may be called repeatedly with increasing horizons).
* ``now`` is a float in seconds.  Events scheduled "now" with a zero
  delay still go through the queue, preserving the priority/seq order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from ..obs.registry import Registry
from .calqueue import CalendarQueue, HeapQueue
from .events import Event, Priority

__all__ = ["Simulator", "SimulationError", "QUEUE_KINDS"]

#: Below this queue length compaction is pointless (rebuild overhead
#: would dominate); lazy skipping on pop handles small queues fine.
MIN_COMPACT_SIZE = 64

#: Selectable pending-event structures (see :mod:`repro.sim.calqueue`).
QUEUE_KINDS = ("calendar", "heap")


class SimulationError(RuntimeError):
    """Raised on kernel misuse (negative delays, running a closed sim)."""


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).  Defaults to 0.
    registry:
        Observability registry the kernel's counters live in; a private
        one is created when not supplied (standalone use, tests).
    queue:
        Pending-event structure: ``"calendar"`` (default; O(1) amortized
        insert) or ``"heap"`` (the binary-heap reference lane).  Both
        dispatch bit-identically; the calendar lane additionally reports
        ``kernel.calq_resizes`` / ``kernel.calq_spills`` counters and
        ``kernel.calq_buckets`` / ``kernel.calq_occupancy`` gauges.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        registry: Optional[Registry] = None,
        queue: str = "calendar",
    ) -> None:
        if queue not in QUEUE_KINDS:
            raise SimulationError(
                f"unknown queue kind {queue!r}; expected one of {QUEUE_KINDS}"
            )
        self._now = float(start_time)
        self.queue_kind = queue
        self._seq = 0
        self._running = False
        self._stopped = False
        self.registry = registry if registry is not None else Registry()
        # Registered counters; the old attribute names survive below as
        # read-through properties.
        self._c_dispatched = self.registry.counter("kernel.events_dispatched")
        self._c_skipped = self.registry.counter("kernel.events_skipped")
        self._c_compactions = self.registry.counter("kernel.heap_compactions")
        self._c_daemon = self.registry.counter("kernel.events_daemon")
        self._c_pushes = self.registry.counter("kernel.heap_pushes")
        if queue == "calendar":
            self._q: CalendarQueue | HeapQueue = CalendarQueue(
                resize_counter=self.registry.counter("kernel.calq_resizes"),
                spill_counter=self.registry.counter("kernel.calq_spills"),
            )
            self.registry.gauge(
                "kernel.calq_buckets", fn=lambda: float(self._q.nbuckets)
            )
            self.registry.gauge(
                "kernel.calq_occupancy", fn=lambda: float(self._q.occupancy())
            )
        else:
            self._q = HeapQueue()
        self.registry.gauge("kernel.heap", fn=lambda: float(len(self._q)))
        #: cancelled events currently sitting on the queue
        self._cancelled_pending = 0
        #: live (scheduled, not yet dispatched or cancelled) events;
        #: maintained incrementally so pending() is O(1)
        self._live = 0

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def events_dispatched(self) -> int:
        """Events dispatched, skips and daemon (sampler) events excluded.

        Deprecated attribute-style view; the value lives in the
        registry counter ``kernel.events_dispatched``.
        """
        return self._c_dispatched.value

    @property
    def events_skipped(self) -> int:
        """Cancelled events removed (deprecated view of the registry counter)."""
        return self._c_skipped.value

    @property
    def heap_compactions(self) -> int:
        """Queue compactions performed (deprecated view of the registry counter)."""
        return self._c_compactions.value

    @property
    def heap_size(self) -> int:
        """Raw queue length including cancelled entries (sampling gauge)."""
        return len(self._q)

    @property
    def heap_pushes(self) -> int:
        """Queue entries pushed (deprecated view of ``kernel.heap_pushes``)."""
        return self._c_pushes.value

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        out = {
            "events_dispatched": self._c_dispatched.value,
            "events_skipped": self._c_skipped.value,
            "events_daemon": self._c_daemon.value,
            "heap_compactions": self._c_compactions.value,
            "heap_pushes": self._c_pushes.value,
            "heap_size": len(self._q),
            "pending": self.pending(),
            "now": self._now,
        }
        if isinstance(self._q, CalendarQueue):
            out["calq_resizes"] = self._q.resizes
            out["calq_spills"] = self._q.spills
            out["calq_buckets"] = self._q.nbuckets
            out["calq_occupancy"] = self._q.occupancy()
        return out

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        daemon: bool = False,
        weight: int = 1,
    ) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method
        revokes it.  ``delay`` must be non-negative.  ``daemon`` events
        (observation plane) dispatch normally but are excluded from
        ``events_dispatched``.  ``weight`` is the number of logical
        events this entry stands for (batched delivery).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay, fn, *args, priority=priority, daemon=daemon, weight=weight
        )

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        daemon: bool = False,
        weight: int = 1,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock is already at {self._now!r}"
            )
        if weight < 1:
            raise SimulationError(f"weight must be >= 1, got {weight!r}")
        ev = Event(
            time=float(time),
            priority=int(priority),
            seq=self._seq,
            fn=fn,
            args=args,
            daemon=daemon,
            weight=weight,
            owner=self,
        )
        self._seq += 1
        self._q.push(ev)
        self._c_pushes.value += 1
        self._live += 1
        return ev

    # ------------------------------------------------------------------
    # lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when dead weight wins."""
        self._cancelled_pending += 1
        self._live -= 1
        if (
            len(self._q) >= MIN_COMPACT_SIZE
            and self._cancelled_pending * 2 > len(self._q)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop all cancelled events from the queue in one pass.

        O(n) filter; called automatically once cancelled entries exceed
        half the queue, and safe to call by hand.
        """
        purged = self._q.drop_cancelled()
        if purged:
            self._c_skipped.value += purged
            self._c_compactions.value += 1
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Dispatch the single next pending event.

        Returns the event dispatched, or ``None`` if the queue is empty
        (cancelled events are skipped transparently).
        """
        q = self._q
        while True:
            ev = q.pop()
            if ev is None:
                return None
            if ev.cancelled:
                ev.done = True
                self._c_skipped.value += 1
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            self._now = ev.time
            ev.done = True
            self._live -= 1
            if ev.daemon:
                self._c_daemon.inc(ev.weight)
            else:
                self._c_dispatched.inc(ev.weight)
            ev.fn(*ev.args)
            return ev

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if queue is empty."""
        q = self._q
        while True:
            ev = q.peek()
            if ev is None:
                return None
            if not ev.cancelled:
                return ev.time
            q.pop()
            ev.done = True
            self._c_skipped.value += 1
            if self._cancelled_pending:
                self._cancelled_pending -= 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Horizon (absolute seconds).  Events at exactly ``until`` DO
            fire; later events remain queued.  When the horizon is hit the
            clock is advanced to ``until`` even if no event fired there,
            so back-to-back ``run`` calls see a monotone clock.
        max_events:
            Safety valve: dispatch at most this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        q = self._q
        try:
            while len(q) and not self._stopped:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                self.step()
                dispatched += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): the count is maintained incrementally on schedule,
        dispatch and cancel (see :meth:`_brute_pending` for the
        reference O(queue) scan the kernel tests check against).
        """
        return self._live

    def _brute_pending(self) -> int:
        """O(queue) reference count of live queued events (tests only)."""
        return sum(1 for ev in self._q if not ev.cancelled)

    def __len__(self) -> int:
        return self.pending()

    def iter_pending(self) -> Iterator[Event]:
        """Yield live queued events in internal (not fire) order."""
        return (ev for ev in self._q if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self._now:.3f} queue={self.queue_kind} "
            f"pending={self.pending()} dispatched={self.events_dispatched}>"
        )
