"""Discrete-event simulation substrate (kernel, processes, RNG streams)."""

from .events import Event, Priority
from .kernel import SimulationError, Simulator
from .process import WAIT, Process
from .rng import RngRegistry
from .trace import TraceRecord, TraceRecorder, attach_tracer

__all__ = [
    "TraceRecord",
    "TraceRecorder",
    "attach_tracer",
    "Event",
    "Priority",
    "SimulationError",
    "Simulator",
    "Process",
    "WAIT",
    "RngRegistry",
]
