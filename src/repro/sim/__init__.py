"""Discrete-event simulation substrate (kernel, processes, RNG streams)."""

from .calqueue import CalendarQueue, HeapQueue
from .events import Event, Priority
from .kernel import QUEUE_KINDS, SimulationError, Simulator
from .process import WAIT, Process
from .rng import RngRegistry
from .trace import TraceRecord, TraceRecorder, attach_tracer

__all__ = [
    "TraceRecord",
    "TraceRecorder",
    "attach_tracer",
    "CalendarQueue",
    "Event",
    "HeapQueue",
    "Priority",
    "QUEUE_KINDS",
    "SimulationError",
    "Simulator",
    "Process",
    "WAIT",
    "RngRegistry",
]
