"""Event tracing -- an ns-2-style trace facility.

The original study debugged and measured through ns-2 trace files; a
usable simulator release needs the same.  A :class:`TraceRecorder`
collects typed :class:`TraceRecord` rows (transmissions, deliveries,
drops, protocol state changes), supports filtering, and serializes to
ND-JSON or CSV for offline analysis.

Attach it to a built scenario with :func:`attach_tracer`, which hooks
the radio channel without the channel knowing about tracing.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder", "attach_tracer"]


@dataclass(slots=True)
class TraceRecord:
    """One traced event.

    Attributes
    ----------
    time:
        Simulation time (seconds).
    kind:
        ``"tx"`` | ``"rx"`` | ``"drop"`` | ``"state"`` | free-form.
    node:
        The node the event happened at.
    other:
        Peer node if applicable (-1 otherwise).
    layer:
        Frame kind / protocol tag (e.g. ``"aodv.ctrl"``, ``"p2p"``).
    detail:
        Free-form short description (message type, state name, ...).
    """

    time: float
    kind: str
    node: int
    other: int = -1
    layer: str = ""
    detail: str = ""


class TraceRecorder:
    """Bounded in-memory trace sink.

    Parameters
    ----------
    capacity:
        Maximum records kept; older records are discarded FIFO (the
        count of *total* records seen is still tracked).
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.records: List[TraceRecord] = []
        self.total_seen = 0
        self.enabled = True

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        kind: str,
        node: int,
        other: int = -1,
        layer: str = "",
        detail: str = "",
    ) -> None:
        """Append one record (no-op while disabled)."""
        if not self.enabled:
            return
        self.total_seen += 1
        if len(self.records) >= self.capacity:
            # FIFO eviction in blocks to avoid O(n) per record.
            drop = max(self.capacity // 10, 1)
            del self.records[:drop]
        self.records.append(TraceRecord(time, kind, node, other, layer, detail))

    # ------------------------------------------------------------------
    def filter(
        self,
        *,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        layer: Optional[str] = None,
        t_min: float = float("-inf"),
        t_max: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """Yield records matching every given criterion."""
        for r in self.records:
            if kind is not None and r.kind != kind:
                continue
            if node is not None and r.node != node:
                continue
            if layer is not None and r.layer != layer:
                continue
            if not t_min <= r.time <= t_max:
                continue
            yield r

    def count(self, **kwargs) -> int:
        """Number of records matching the :meth:`filter` criteria."""
        return sum(1 for _ in self.filter(**kwargs))

    # ------------------------------------------------------------------
    def to_ndjson(self) -> str:
        """One JSON object per line."""
        return "\n".join(json.dumps(asdict(r)) for r in self.records)

    def to_csv(self) -> str:
        """CSV with a header row."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", "kind", "node", "other", "layer", "detail"])
        for r in self.records:
            writer.writerow([f"{r.time:.6f}", r.kind, r.node, r.other, r.layer, r.detail])
        return buf.getvalue()

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


def attach_tracer(channel, recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Hook a recorder into a radio channel's tx/rx paths.

    Wraps ``channel.unicast`` / ``channel.broadcast`` (tx side) and
    chains onto ``channel.on_deliver`` (rx side).  Returns the recorder.
    """
    rec = recorder if recorder is not None else TraceRecorder()
    sim = channel.sim

    orig_unicast = channel.unicast
    orig_broadcast = channel.broadcast

    def traced_unicast(frame):
        ok = orig_unicast(frame)
        rec.record(
            sim.now,
            "tx" if ok else "drop",
            frame.src,
            frame.dst,
            frame.kind,
            type(frame.payload).__name__,
        )
        return ok

    def traced_broadcast(frame):
        n = orig_broadcast(frame)
        rec.record(sim.now, "tx", frame.src, -1, frame.kind, type(frame.payload).__name__)
        return n

    prev_on_deliver = channel.on_deliver

    def traced_deliver(nid, frame):
        rec.record(sim.now, "rx", nid, frame.src, frame.kind, type(frame.payload).__name__)
        if prev_on_deliver is not None:
            prev_on_deliver(nid, frame)

    channel.unicast = traced_unicast
    channel.broadcast = traced_broadcast
    channel.on_deliver = traced_deliver
    return rec
