"""Event objects for the discrete-event kernel.

An :class:`Event` is an immutable-ish record placed on the simulator's
binary heap.  Ordering is by ``(time, priority, seq)`` so that

* earlier events fire first,
* ties at the same timestamp are broken by an explicit integer priority
  (lower fires first), and
* remaining ties fire in scheduling order (``seq`` is a monotonically
  increasing counter assigned by the kernel),

which makes every run bit-for-bit deterministic regardless of heap
internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class Priority(enum.IntEnum):
    """Tie-break priorities for events scheduled at the same instant.

    ``HIGH`` is used by the kernel's internal bookkeeping (e.g. process
    wake-ups), ``NORMAL`` by ordinary protocol timers, ``LOW`` by
    observation/metric sampling so that samplers always see the state
    *after* same-time protocol activity.
    """

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-break priority; see :class:`Priority`.
    seq:
        Kernel-assigned monotonic sequence number (final tie-break).
    fn:
        The callback to invoke.
    args:
        Positional arguments passed to ``fn``.
    cancelled:
        Cooperative cancellation flag.  Cancelled events stay on the heap
        but are skipped when popped (lazy deletion -- O(1) cancel).
    daemon:
        Observation-plane flag.  Daemon events (metric samplers) are
        dispatched normally but excluded from ``events_dispatched``, so
        instrumented runs report identical event counts to bare ones.
    weight:
        Number of *logical* events this heap entry stands for.  Batched
        deliveries (one heap entry fanning a broadcast out to k
        receivers) carry ``weight=k`` so ``events_dispatched`` stays
        bit-identical to the unbatched reference schedule while the heap
        does 1/k of the work.
    done:
        Set by the kernel once the entry has left the heap (dispatched
        or skipped).  Guards :meth:`cancel` so cancelling an
        already-fired handle (timeout races do this) cannot corrupt the
        kernel's incremental live-event accounting.
    owner:
        The scheduler that queued this event, if any.  Cancellation
        notifies it so it can track dead weight on the heap and compact
        when lazily-cancelled entries dominate.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any]
    args: tuple = field(default=())
    cancelled: bool = False
    daemon: bool = False
    weight: int = 1
    done: bool = field(default=False, compare=False)
    owner: Any = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the kernel skips it when popped.

        A no-op once the event has already fired or been skipped: the
        handle is then off the heap and there is nothing to revoke.
        """
        if self.cancelled or self.done:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancel()

    # heapq compares items directly; define ordering on the sort key only.
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def sort_key(self) -> tuple[float, int, int]:
        """The total-order key used on the heap."""
        return (self.time, self.priority, self.seq)
