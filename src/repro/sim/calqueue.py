"""Event-queue lanes for the discrete-event kernel.

The kernel's pending-event set is a pluggable structure with two
implementations behind one tiny protocol (``push`` / ``pop`` / ``peek``
/ ``drop_cancelled`` / ``len`` / iteration over raw entries):

* :class:`HeapQueue` -- the original ``heapq`` binary heap.  Every push
  and pop is O(log n) *Python-level* ``Event.__lt__`` comparisons, which
  is what dominates flood-heavy runs once batching and incremental
  topology refresh removed the other hot paths.
* :class:`CalendarQueue` -- a self-calibrating calendar queue (Brown
  1988, with a ladder-style overflow tier).  Events are binned by time
  into an array of buckets covering a sliding window; pushes into a
  future bucket are a plain ``list.append`` with **zero comparisons**,
  and a bucket is sorted exactly once (C timsort over precomputed
  ``(time, priority, seq)`` key tuples) when the dispatch cursor reaches
  it.  Amortized O(1) per event.

Identical-order contract
------------------------
Both lanes dispatch raw entries in exactly the same total order: the
strict ``(time, priority, seq)`` key (``seq`` is unique, so the order is
a total order with no ties left to break).  The calendar lane preserves
it structurally:

* the time axis is partitioned monotonically into buckets, so every
  entry in bucket *i* orders before every entry in bucket *j > i* and
  before everything in the overflow tier (times >= the window end);
* within a bucket the full key sorts entries, so same-time entries keep
  their priority/seq order;
* entries scheduled *into the current bucket while it is being consumed*
  (zero-delay timers and protocol cascades do this constantly) are
  placed by ``bisect.insort`` at or after the consumption cursor --
  exactly where the heap would surface them;
* floating-point bucket-index rounding is clamped onto the current
  bucket, never an earlier one, and the index map stays monotone in
  time, so rounding can never reorder two entries.

Cancellation stays lazy exactly as on the heap: cancelled entries are
popped and skipped by the kernel (which owns all the accounting), and
:meth:`drop_cancelled` implements the kernel's compaction pass.

Self-calibration
----------------
The bucket width is sampled from live inter-event gaps: whenever the
structure re-windows (the current window is exhausted and the overflow
tier is pulled forward -- a *spill*) or rebuilds because occupancy
drifted past the resize threshold (a *resize*), a stride sample of the
pending event times sets ``width = mean positive gap * TARGET_OCCUPANCY``
and the bucket count tracks the pending-entry count.  Degenerate
distributions degrade gracefully: all-same-time workloads collapse into
one bucket (one sort -- the heap's behaviour), monotone drift marches
the window forward one spill at a time.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import Iterator, List, Optional

from .events import Event

__all__ = ["HeapQueue", "CalendarQueue"]

#: Bucket-count clamp for the calendar lane.
MIN_BUCKETS = 8
MAX_BUCKETS = 1 << 16

#: Calibration aims for this many entries per bucket; a rebuild is
#: triggered when mean occupancy exceeds :data:`GROW_OCCUPANCY`.
TARGET_OCCUPANCY = 4.0
GROW_OCCUPANCY = 16.0

#: At most this many pending times are sampled (by stride) per width
#: calibration; keeps rebuilds O(n) with a tiny constant.
GAP_SAMPLE = 64

#: Key function shared by bucket sorts and current-bucket insorts.
_SORT_KEY = Event.sort_key


class _Cell:
    """Minimal stand-in for an obs Counter (bare ``value`` attribute)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class HeapQueue:
    """``heapq``-backed reference lane (the kernel's original structure)."""

    kind = "heap"
    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, ev: Event) -> None:
        heapq.heappush(self._heap, ev)

    def pop(self) -> Optional[Event]:
        return heapq.heappop(self._heap) if self._heap else None

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def drop_cancelled(self) -> int:
        """Remove every cancelled entry; returns how many were purged."""
        live = [ev for ev in self._heap if not ev.cancelled]
        purged = len(self._heap) - len(live)
        if purged:
            heapq.heapify(live)
            self._heap = live
        return purged

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._heap)


class CalendarQueue:
    """Calendar/ladder queue dispatching in exact heap order.

    Parameters
    ----------
    resize_counter, spill_counter:
        Objects with a ``value`` attribute (obs ``Counter`` instances in
        production) incremented on occupancy-driven rebuilds and on
        overflow re-windowing respectively.  Private cells are used when
        not supplied (standalone/test use).
    """

    kind = "calendar"
    __slots__ = (
        "_buckets",
        "_overflow",
        "_start",
        "_width",
        "_inv_width",
        "_end",
        "_cur_idx",
        "_pos",
        "_cur_sorted",
        "_size",
        "_c_resizes",
        "_c_spills",
        "migrated",
    )

    def __init__(self, *, resize_counter=None, spill_counter=None) -> None:
        self._width = 1.0
        self._inv_width = 1.0
        self._start = 0.0
        self._end = float(MIN_BUCKETS)
        self._buckets: List[List[Event]] = [[] for _ in range(MIN_BUCKETS)]
        self._overflow: List[Event] = []
        self._cur_idx = 0
        self._pos = 0
        self._cur_sorted = False
        self._size = 0
        self._c_resizes = resize_counter if resize_counter is not None else _Cell()
        self._c_spills = spill_counter if spill_counter is not None else _Cell()
        #: entries moved out of the overflow tier into buckets, total
        self.migrated = 0

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def resizes(self) -> int:
        """Occupancy-driven full rebuilds performed."""
        return self._c_resizes.value

    @property
    def spills(self) -> int:
        """Overflow re-windowings performed (window exhausted)."""
        return self._c_spills.value

    @property
    def nbuckets(self) -> int:
        return len(self._buckets)

    def occupancy(self) -> float:
        """Mean raw entries per bucket (the calibration operating point)."""
        return self._size / len(self._buckets)

    # ------------------------------------------------------------------
    # queue protocol
    # ------------------------------------------------------------------
    def push(self, ev: Event) -> None:
        t = ev.time
        if t >= self._end:
            self._overflow.append(ev)
        else:
            idx = int((t - self._start) * self._inv_width)
            cur = self._cur_idx
            if idx <= cur:
                # Current bucket (or an FP round-down onto a consumed
                # one, clamped forward).  While the bucket is live the
                # insort lands the entry at/after the cursor -- exactly
                # where the heap would surface it.
                if self._cur_sorted:
                    insort(self._buckets[cur], ev, lo=self._pos, key=_SORT_KEY)
                else:
                    self._buckets[cur].append(ev)
            else:
                b = self._buckets
                b[idx if idx < len(b) else -1].append(ev)
        self._size += 1
        if (
            self._size > len(self._buckets) * GROW_OCCUPANCY
            and len(self._buckets) < MAX_BUCKETS
        ):
            self._rebuild(resize=True)

    def peek(self) -> Optional[Event]:
        if self._size == 0:
            return None
        while True:
            buckets = self._buckets
            cur = buckets[self._cur_idx]
            if self._cur_sorted:
                if self._pos < len(cur):
                    return cur[self._pos]
            elif cur:
                cur.sort(key=_SORT_KEY)
                self._cur_sorted = True
                self._pos = 0
                return cur[0]
            # Current bucket exhausted: free consumed storage, advance
            # the cursor to the next non-empty bucket, or re-window from
            # the overflow tier when the whole window is spent.
            if cur:
                buckets[self._cur_idx] = []
            nxt = None
            for i in range(self._cur_idx + 1, len(buckets)):
                if buckets[i]:
                    nxt = i
                    break
            if nxt is not None:
                self._cur_idx = nxt
                self._cur_sorted = False
                self._pos = 0
            else:
                self._rebuild(resize=False)

    def pop(self) -> Optional[Event]:
        if self._cur_sorted:
            cur = self._buckets[self._cur_idx]
            pos = self._pos
            if pos < len(cur):
                self._pos = pos + 1
                self._size -= 1
                return cur[pos]
        ev = self.peek()
        if ev is None:
            return None
        self._pos += 1
        self._size -= 1
        return ev

    def drop_cancelled(self) -> int:
        """Remove every cancelled entry; returns how many were purged.

        The current bucket keeps only its unconsumed tail (order
        preserved, cursor reset), so consumed entries are never counted
        and the kernel's ``events_skipped`` accounting stays exact.
        """
        purged = 0
        buckets = self._buckets
        cur = buckets[self._cur_idx]
        if self._cur_sorted:
            tail = [ev for ev in cur[self._pos :] if not ev.cancelled]
            purged += len(cur) - self._pos - len(tail)
            buckets[self._cur_idx] = tail
            self._pos = 0
        elif cur:
            kept = [ev for ev in cur if not ev.cancelled]
            purged += len(cur) - len(kept)
            buckets[self._cur_idx] = kept
        for i in range(self._cur_idx + 1, len(buckets)):
            b = buckets[i]
            if b:
                kept = [ev for ev in b if not ev.cancelled]
                purged += len(b) - len(kept)
                buckets[i] = kept
        if self._overflow:
            kept = [ev for ev in self._overflow if not ev.cancelled]
            purged += len(self._overflow) - len(kept)
            self._overflow = kept
        self._size -= purged
        return purged

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Event]:
        cur = self._buckets[self._cur_idx]
        yield from (cur[self._pos :] if self._cur_sorted else cur)
        for i in range(self._cur_idx + 1, len(self._buckets)):
            yield from self._buckets[i]
        yield from self._overflow

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def _rebuild(self, *, resize: bool) -> None:
        """Re-window around the pending entries, recalibrating width.

        ``resize=True`` is the occupancy-drift trigger (everything
        pending is redistributed); ``resize=False`` is a *spill* -- the
        window is exhausted and the overflow tier is pulled forward.
        Either way the new window starts at the minimum pending time, so
        the next ``peek`` always finds bucket 0 non-empty and the
        structure provably makes progress.
        """
        events = list(self)
        if resize:
            self._c_resizes.value += 1
        else:
            self._c_spills.value += 1
        if not events:
            self._buckets = [[] for _ in range(MIN_BUCKETS)]
            self._overflow = []
            self._end = self._start + len(self._buckets) * self._width
            self._cur_idx = 0
            self._pos = 0
            self._cur_sorted = False
            return
        tmin = min(ev.time for ev in events)
        n = len(events)
        nb = 1 << max(0, (max(MIN_BUCKETS, int(n / TARGET_OCCUPANCY))).bit_length() - 1)
        nb = max(MIN_BUCKETS, min(MAX_BUCKETS, nb))
        width = self._sample_width(events)
        end = tmin + nb * width
        if end <= tmin:  # width vanished under FP at a huge clock value
            width = max(1.0, math.ulp(tmin) * nb)
            end = tmin + nb * width
        self._start = tmin
        self._width = width
        self._inv_width = 1.0 / width
        self._end = end
        buckets: List[List[Event]] = [[] for _ in range(nb)]
        overflow: List[Event] = []
        start = tmin
        inv = self._inv_width
        for ev in events:
            t = ev.time
            if t >= end:
                overflow.append(ev)
            else:
                i = int((t - start) * inv)
                buckets[i if i < nb else -1].append(ev)
        self._buckets = buckets
        self._overflow = overflow
        self._cur_idx = 0
        self._pos = 0
        self._cur_sorted = False
        self.migrated += n - len(overflow)

    @staticmethod
    def _sample_width(events: List[Event]) -> float:
        """Bucket width from a stride sample of live inter-event gaps."""
        stride = max(1, len(events) // GAP_SAMPLE)
        times = sorted(ev.time for ev in events[::stride])
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return 1.0
        return (sum(gaps) / len(gaps)) * TARGET_OCCUPANCY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CalendarQueue size={self._size} buckets={len(self._buckets)} "
            f"width={self._width:.3g} overflow={len(self._overflow)}>"
        )
