"""Deterministic random-number streams.

Every stochastic subsystem (mobility, file placement, query timing,
protocol jitter, ...) draws from its own named ``numpy.random.Generator``
so that changing how one subsystem consumes randomness cannot perturb the
others -- the standard trick for reproducible parallel/HPC simulations.

Streams are derived from a single root seed with
``numpy.random.SeedSequence.spawn``-style keying: the stream name is
hashed (stable across processes, unlike ``hash()``) into the spawn key.
Repetition ``k`` of an experiment uses root seed ``base_seed + k``.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "stable_key"]


def stable_key(name: str) -> int:
    """Map a stream name to a stable 63-bit integer key.

    Uses BLAKE2 so the mapping is identical across interpreter runs and
    platforms (Python's built-in ``hash`` is salted per process).
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


class RngRegistry:
    """Factory for named, independent random streams.

    Parameters
    ----------
    seed:
        Root seed.  Two registries with the same seed produce identical
        streams for identical names, regardless of creation order.

    Examples
    --------
    >>> r1, r2 = RngRegistry(7), RngRegistry(7)
    >>> float(r1.stream("mobility").random()) == float(r2.stream("mobility").random())
    True
    >>> float(r1.stream("a").random()) == float(RngRegistry(7).stream("b").random())
    False
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same registry returns the *same* generator object for the
        same name, so consumers share position in the stream.
        """
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(stable_key(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, offset: int) -> "RngRegistry":
        """A registry for repetition ``offset`` (seed = root + offset)."""
        return RngRegistry(self.seed + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
