"""Network substrate: unit-disk radio world, frames, flooding, energy."""

from .broadcast import FloodManager, FloodMessage
from .energy import EnergyModel
from .packet import BROADCAST, DEFAULT_FRAME_BYTES, Frame
from .radio import Channel, NetNode
from .render import render_overlay_summary, render_world
from .suppression import (
    QUERY_POLICY_KINDS,
    REBROADCAST_KINDS,
    ContactPolicy,
    CounterPolicy,
    FloodPolicy,
    PolicySpec,
    ProbabilisticPolicy,
    RebroadcastPolicy,
    make_rebroadcast_policy,
    parse_policy_spec,
)
from .topology import (
    TOPOLOGY_BACKENDS,
    DenseTopology,
    SparseGridTopology,
    TopologyBackend,
    make_topology,
)
from .world import UNREACHABLE, World

__all__ = [
    "FloodManager",
    "FloodMessage",
    "EnergyModel",
    "BROADCAST",
    "DEFAULT_FRAME_BYTES",
    "Frame",
    "Channel",
    "NetNode",
    "render_overlay_summary",
    "render_world",
    "QUERY_POLICY_KINDS",
    "REBROADCAST_KINDS",
    "RebroadcastPolicy",
    "FloodPolicy",
    "ProbabilisticPolicy",
    "CounterPolicy",
    "ContactPolicy",
    "PolicySpec",
    "parse_policy_spec",
    "make_rebroadcast_policy",
    "TOPOLOGY_BACKENDS",
    "TopologyBackend",
    "DenseTopology",
    "SparseGridTopology",
    "make_topology",
    "UNREACHABLE",
    "World",
]
