"""Pluggable rebroadcast-suppression policies for the broadcast planes.

Plain TTL-scoped flooding (the paper's "controlled broadcast") makes
every first-copy receiver rebroadcast once, so a flood over a region of
n nodes with mean radio degree d costs ~n transmissions and ~n*d frame
receptions -- the dominant event source at large n.  The broadcast-storm
literature offers well-understood suppression schemes that cut the
redundant constant factor while keeping reachability; this module packs
four of them behind one small :class:`RebroadcastPolicy` contract so
the flood plane (:mod:`repro.net.broadcast`), AODV's RREQ dissemination
(:mod:`repro.aodv.protocol`) and the Gnutella query plane
(:mod:`repro.core.query`) can switch policy per scenario:

``flood``
    The reference: always rebroadcast the first copy.  Bit-identical to
    the historical behaviour (callers keep their inline fast path when
    the policy's :attr:`~RebroadcastPolicy.reference` flag is set).
``probabilistic``
    Gossip-p (Preetha et al., arXiv:1204.1820): rebroadcast with
    probability ``p``, with a *degree-adaptive floor* -- nodes whose
    radio degree is at or below ``degree_floor`` always forward, so
    sparse regions (where every copy matters) never starve.  At
    ``p >= 1`` the policy short-circuits before touching its RNG and is
    bit-identical to ``flood``.
``counter``
    Counter-based suppression (the classic broadcast-storm scheme):
    hold the rebroadcast for a random assessment delay; if ``threshold``
    duplicate copies are overheard before the timer fires, the
    neighbourhood is already covered and the transmission is cancelled.
``contact``
    CARD-style contact tables (Helmy et al., arXiv:cs/0208024): forward
    like ``flood`` but harvest overheard traffic into a bounded contact
    table (vicinity peers + file -> holder bindings learned from query
    answers).  The query plane sends new queries *directly* to known
    holders first and only falls back to the TTL-scoped flood when no
    answer arrives within ``fallback_wait`` -- a repeat query costs a
    couple of unicasts instead of a network-wide flood.

Policy objects are per node and per plane; their counters are labeled
``plane=<kind>, node=<nid>`` and classified as *cost* metrics in
:mod:`repro.obs.compare` (suppression accounting, not paper semantics).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

import numpy as np

from ..obs.registry import Registry

__all__ = [
    "RebroadcastPolicy",
    "FloodPolicy",
    "ProbabilisticPolicy",
    "CounterPolicy",
    "ContactPolicy",
    "PolicySpec",
    "parse_policy_spec",
    "make_rebroadcast_policy",
    "REBROADCAST_KINDS",
    "QUERY_POLICY_KINDS",
    "DEFAULT_GOSSIP_P",
    "DEFAULT_DEGREE_FLOOR",
    "DEFAULT_COUNTER_THRESHOLD",
    "DEFAULT_ASSESSMENT_DELAY",
    "DEFAULT_FALLBACK_WAIT",
]

#: accepted ``ScenarioConfig.rebroadcast`` / ``--rebroadcast`` kinds
REBROADCAST_KINDS = ("flood", "probabilistic", "counter", "contact")
#: accepted ``ScenarioConfig.query_policy`` / ``--query-policy`` kinds
QUERY_POLICY_KINDS = ("flood", "contact")

#: gossip probability when ``probabilistic`` is given without a parameter
DEFAULT_GOSSIP_P = 0.65
#: radio degree at or below which gossip always forwards (sparse guard)
DEFAULT_DEGREE_FLOOR = 3
#: duplicate overhears that cancel a pending counter-policy rebroadcast
DEFAULT_COUNTER_THRESHOLD = 3
#: upper bound of the uniform random assessment delay (seconds).  A
#: duplicate can only arrive after a *neighbour's* timer fired plus a
#: radio latency (DEFAULT_LATENCY = 2 ms), so the window must span many
#: latencies for the counting to converge; 48 ms maximizes cancels in
#: the dense bench sweeps while staying far below AODV's per-ring
#: discovery timeouts (2 x 40 ms x (ttl+2)), so route discovery is
#: unaffected.
DEFAULT_ASSESSMENT_DELAY = 0.048
#: seconds a contact-routed query waits for an answer before falling
#: back to the reference TTL-scoped flood (well inside the 30 s
#: response window, so fallback answers still count)
DEFAULT_FALLBACK_WAIT = 5.0

#: bounded contact-table sizes (CARD keeps "a small number of contacts")
MAX_HOLDERS_PER_FILE = 4
MAX_TRACKED_FILES = 512
MAX_VICINITY_PEERS = 64


class RebroadcastPolicy:
    """Per-node, per-plane rebroadcast decision point.

    The owning broadcast agent calls :meth:`forward` instead of
    transmitting directly; the policy invokes ``send`` now, later, or
    never.  :meth:`duplicate` notifies the policy of each suppressed
    duplicate copy overheard (the counter scheme's signal), and
    :meth:`overhear` of each *first* copy (the contact scheme's harvest
    feed).  All hooks must be cheap: they sit on the radio hot path.
    """

    #: spec kind this policy implements
    kind = "flood"
    #: True when the policy is provably a no-op (always send now);
    #: callers keep their historical inline fast path in that case, so
    #: the reference lane stays operation-for-operation identical.
    reference = False

    def forward(self, key: Hashable, send: Callable[[], None]) -> None:
        """Decide the rebroadcast of flood id ``key``; default: send now."""
        send()

    def duplicate(self, key: Hashable) -> None:
        """A duplicate copy of ``key`` was overheard (dedup-cache hit)."""

    def overhear(self, origin: int, hops: int) -> None:
        """A first copy originated by ``origin`` arrived after ``hops``."""

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {}


class FloodPolicy(RebroadcastPolicy):
    """The reference policy: every first copy is rebroadcast at once."""

    kind = "flood"
    reference = True


class ProbabilisticPolicy(RebroadcastPolicy):
    """Gossip-p rebroadcast with a degree-adaptive floor.

    Parameters
    ----------
    p:
        Rebroadcast probability; ``p >= 1`` makes the policy a
        reference no-op (bit-identical to :class:`FloodPolicy` -- it
        never touches its RNG).
    degree_floor:
        Nodes with radio degree <= this always forward.
    rng_factory:
        Lazily invoked to obtain the policy's private random stream
        (so reference-equivalent configurations create no stream).
    degree:
        Callable returning the node's current radio degree.
    """

    kind = "probabilistic"

    def __init__(
        self,
        *,
        p: float = DEFAULT_GOSSIP_P,
        degree_floor: int = DEFAULT_DEGREE_FLOOR,
        rng_factory: Optional[Callable[[], np.random.Generator]] = None,
        degree: Optional[Callable[[], int]] = None,
        registry: Optional[Registry] = None,
        plane: str = "",
        node: int = -1,
    ) -> None:
        if not 0.0 < p:
            raise ValueError(f"gossip p must be > 0, got {p}")
        self.p = float(p)
        self.degree_floor = int(degree_floor)
        self.reference = self.p >= 1.0
        self._rng_factory = rng_factory
        self._rng: Optional[np.random.Generator] = None
        self._degree = degree
        registry = registry if registry is not None else Registry()
        self._c_suppressed = registry.counter(
            "flood.suppressed", plane=plane, node=node
        )

    def forward(self, key: Hashable, send: Callable[[], None]) -> None:
        if self.reference:
            send()
            return
        if self._degree is not None and self._degree() <= self.degree_floor:
            send()  # sparse guard: every copy matters here
            return
        if self._rng is None:
            if self._rng_factory is None:
                raise RuntimeError("probabilistic policy needs an rng_factory")
            self._rng = self._rng_factory()
        if float(self._rng.random()) < self.p:
            send()
        else:
            self._c_suppressed.inc()

    def stats(self) -> Dict[str, float]:
        return {"suppressed": self._c_suppressed.value}


class _Assessment:
    """One pending counter-policy rebroadcast decision."""

    __slots__ = ("send", "event", "dups")

    def __init__(self, send, event) -> None:
        self.send = send
        self.event = event
        self.dups = 0


class CounterPolicy(RebroadcastPolicy):
    """Counter-based suppression with a random assessment delay.

    A first copy arms a timer at ``U(0, assessment_delay)``; every
    duplicate overheard while the timer is pending increments a
    counter, and reaching ``threshold`` cancels the rebroadcast (the
    neighbourhood provably received the flood from others).  Timers use
    the kernel's O(1) lazy event cancellation, so a suppressed
    rebroadcast costs no dispatch.
    """

    kind = "counter"

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_COUNTER_THRESHOLD,
        assessment_delay: float = DEFAULT_ASSESSMENT_DELAY,
        sim=None,
        rng_factory: Optional[Callable[[], np.random.Generator]] = None,
        registry: Optional[Registry] = None,
        plane: str = "",
        node: int = -1,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"counter threshold must be >= 1, got {threshold}")
        if assessment_delay <= 0:
            raise ValueError(
                f"assessment_delay must be > 0, got {assessment_delay}"
            )
        if sim is None:
            raise ValueError("counter policy needs the simulator for its timers")
        self.threshold = int(threshold)
        self.assessment_delay = float(assessment_delay)
        self.sim = sim
        self._rng_factory = rng_factory
        self._rng: Optional[np.random.Generator] = None
        self._pending: Dict[Hashable, _Assessment] = {}
        registry = registry if registry is not None else Registry()
        labels = {"plane": plane, "node": node}
        self._c_suppressed = registry.counter("flood.suppressed", **labels)
        self._c_cancels = registry.counter("flood.assessment_cancels", **labels)

    def forward(self, key: Hashable, send: Callable[[], None]) -> None:
        if self._rng is None:
            if self._rng_factory is None:
                raise RuntimeError("counter policy needs an rng_factory")
            self._rng = self._rng_factory()
        delay = float(self._rng.uniform(0.0, self.assessment_delay))
        event = self.sim.schedule(delay, self._fire, key)
        self._pending[key] = _Assessment(send, event)

    def _fire(self, key: Hashable) -> None:
        entry = self._pending.pop(key, None)
        if entry is not None:
            entry.send()

    def duplicate(self, key: Hashable) -> None:
        entry = self._pending.get(key)
        if entry is None:
            return
        entry.dups += 1
        if entry.dups >= self.threshold:
            del self._pending[key]
            entry.event.cancel()
            self._c_cancels.inc()
            self._c_suppressed.inc()

    @property
    def pending(self) -> int:
        """Assessments currently armed (observability)."""
        return len(self._pending)

    def stats(self) -> Dict[str, float]:
        return {
            "suppressed": self._c_suppressed.value,
            "assessment_cancels": self._c_cancels.value,
            "pending": float(len(self._pending)),
        }


class ContactPolicy(RebroadcastPolicy):
    """CARD-style bounded contact table harvested from overheard traffic.

    On the broadcast plane the policy forwards like ``flood`` (CARD
    does not suppress the floods it still needs) while harvesting a
    vicinity table of recently heard origins.  Its real surface is the
    *query plane*: :meth:`learn_holder` records ``file -> holder``
    bindings from query answers, and :meth:`contacts_for` lets the
    query engine route a repeat query directly to known holders --
    falling back to the scoped flood only on a miss (see
    :meth:`QueryEngine.issue_query <repro.core.query.QueryEngine>`).

    All tables are small LRU maps (CARD's "small number of contacts"),
    so state per node is O(1) regardless of network size.
    """

    kind = "contact"

    def __init__(
        self,
        *,
        max_holders: int = MAX_HOLDERS_PER_FILE,
        max_files: int = MAX_TRACKED_FILES,
        max_peers: int = MAX_VICINITY_PEERS,
        fallback_wait: float = DEFAULT_FALLBACK_WAIT,
        registry: Optional[Registry] = None,
        plane: str = "",
        node: int = -1,
    ) -> None:
        if fallback_wait <= 0:
            raise ValueError(f"fallback_wait must be > 0, got {fallback_wait}")
        self.max_holders = int(max_holders)
        self.max_files = int(max_files)
        self.max_peers = int(max_peers)
        self.fallback_wait = float(fallback_wait)
        self.node = node
        #: file_id -> LRU of holder ids (most recently confirmed last)
        self._holders: "OrderedDict[int, OrderedDict[int, None]]" = OrderedDict()
        #: vicinity: origin -> hops of the most recent overhear
        self._peers: "OrderedDict[int, int]" = OrderedDict()
        registry = registry if registry is not None else Registry()
        labels = {"plane": plane, "node": node}
        self._c_hits = registry.counter("card.contact_hits", **labels)
        self._c_fallbacks = registry.counter("card.fallback_floods", **labels)
        self._c_learned = registry.counter("card.contacts_learned", **labels)

    # -- broadcast-plane hooks -----------------------------------------
    def overhear(self, origin: int, hops: int) -> None:
        if origin == self.node:
            return
        if origin in self._peers:
            self._peers.move_to_end(origin)
        elif len(self._peers) >= self.max_peers:
            self._peers.popitem(last=False)
        self._peers[origin] = hops

    # -- query-plane surface -------------------------------------------
    def learn_holder(self, file_id: int, holder: int) -> None:
        """Record that ``holder`` answered (or served) ``file_id``."""
        if holder == self.node:
            return
        entry = self._holders.get(file_id)
        if entry is None:
            if len(self._holders) >= self.max_files:
                self._holders.popitem(last=False)
            entry = self._holders[file_id] = OrderedDict()
        else:
            self._holders.move_to_end(file_id)
        if holder in entry:
            entry.move_to_end(holder)
        else:
            if len(entry) >= self.max_holders:
                entry.popitem(last=False)
            entry[holder] = None
            self._c_learned.inc()

    def contacts_for(self, file_id: int) -> List[int]:
        """Known holders of ``file_id``, most recently confirmed first."""
        entry = self._holders.get(file_id)
        if not entry:
            return []
        self._holders.move_to_end(file_id)
        return list(reversed(entry))

    def forget(self, file_id: int) -> None:
        """Drop stale holder bindings (a contact-routed query missed)."""
        self._holders.pop(file_id, None)

    def observe_query(self, requirer: int, file_id: int, p2p_hops: int) -> None:
        """Harvest the requirer of a forwarded query into the vicinity."""
        self.overhear(requirer, p2p_hops)

    def count_contact_hit(self) -> None:
        self._c_hits.inc()

    def count_fallback(self) -> None:
        self._c_fallbacks.inc()

    # -- observability --------------------------------------------------
    @property
    def known_files(self) -> int:
        return len(self._holders)

    @property
    def known_peers(self) -> int:
        return len(self._peers)

    def stats(self) -> Dict[str, float]:
        return {
            "contact_hits": self._c_hits.value,
            "fallback_floods": self._c_fallbacks.value,
            "contacts_learned": self._c_learned.value,
            "known_files": float(len(self._holders)),
            "known_peers": float(len(self._peers)),
        }


# ----------------------------------------------------------------------
# spec parsing and construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicySpec:
    """A validated rebroadcast-policy selector (``kind[:param]``)."""

    kind: str
    param: Optional[float] = None

    def __str__(self) -> str:
        if self.param is None:
            return self.kind
        return f"{self.kind}:{self.param:g}"


def parse_policy_spec(spec: str) -> PolicySpec:
    """Parse ``"flood" | "probabilistic[:p]" | "counter[:c]" | "contact"``.

    The optional numeric parameter is the gossip probability for
    ``probabilistic`` and the duplicate threshold for ``counter``;
    ``flood`` and ``contact`` take none.
    """
    if isinstance(spec, PolicySpec):
        return spec
    kind, sep, raw = str(spec).partition(":")
    kind = kind.strip()
    if kind not in REBROADCAST_KINDS:
        raise ValueError(
            f"unknown rebroadcast policy {kind!r} (choose from {REBROADCAST_KINDS})"
        )
    if not sep:
        return PolicySpec(kind)
    if kind in ("flood", "contact"):
        raise ValueError(f"policy {kind!r} takes no parameter, got {spec!r}")
    try:
        param = float(raw)
    except ValueError:
        raise ValueError(f"bad parameter in rebroadcast spec {spec!r}") from None
    if kind == "probabilistic" and param <= 0:
        raise ValueError(f"gossip p must be > 0, got {param}")
    if kind == "counter" and (param < 1 or param != int(param)):
        raise ValueError(f"counter threshold must be an integer >= 1, got {param}")
    return PolicySpec(kind, param)


def make_rebroadcast_policy(
    spec,
    *,
    plane: str,
    node: int,
    registry: Registry,
    sim=None,
    rng_factory: Optional[Callable[[], np.random.Generator]] = None,
    degree: Optional[Callable[[], int]] = None,
) -> RebroadcastPolicy:
    """Build one node's policy for one broadcast plane from ``spec``.

    ``rng_factory`` is only invoked when the policy actually draws
    (so reference lanes create no random stream), ``degree`` only when
    the gossip floor is evaluated, and ``sim`` only by ``counter``.
    """
    spec = parse_policy_spec(spec)
    if spec.kind == "flood":
        return FloodPolicy()
    if spec.kind == "probabilistic":
        return ProbabilisticPolicy(
            p=spec.param if spec.param is not None else DEFAULT_GOSSIP_P,
            rng_factory=rng_factory,
            degree=degree,
            registry=registry,
            plane=plane,
            node=node,
        )
    if spec.kind == "counter":
        return CounterPolicy(
            threshold=int(spec.param) if spec.param is not None else DEFAULT_COUNTER_THRESHOLD,
            sim=sim,
            rng_factory=rng_factory,
            registry=registry,
            plane=plane,
            node=node,
        )
    return ContactPolicy(registry=registry, plane=plane, node=node)
