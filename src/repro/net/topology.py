"""Pluggable physical-topology backends.

The physical substrate answers four questions for every layer above it:
"who is in range of ``i``?", "is there a link ``i``--``j``?", "how many
ad-hoc hops from ``src`` to everyone?" and "are ``a`` and ``b``
connected at all?".  :class:`~repro.net.world.World` used to answer them
from one dense O(n²) adjacency matrix -- exactly right at the paper's
n = 50..150, hopeless at the thousands of nodes large-MANET work (CARD,
unstructured-overlay studies) cares about.

This module extracts those queries into a backend interface with two
interchangeable implementations:

:class:`DenseTopology`
    The reference implementation and default at paper scale: one
    vectorized O(n²) pairwise-distance pass per snapshot, a boolean
    (n, n) matrix, BFS by vectorized frontier expansion over matrix
    rows.  O(1) ``link``, O(n) ``neighbors``, O(n²) memory.

:class:`SparseGridTopology`
    A uniform-grid spatial index with cell size equal to the radio
    range, so a neighbor query inspects at most 9 cells instead of a
    row of n.  A CSR-style adjacency is built lazily (first graph-wide
    query per snapshot), BFS runs frontier-at-a-time over the CSR
    arrays, and per-source distance vectors are memoized under an LRU
    bound.  O(n·k) time and memory per snapshot at bounded density k --
    the regime where n grows but the node density (and hence the mean
    degree) stays fixed.

Both backends share snapshot lifecycle and staleness policy (the
``snapshot_interval`` quantum, backwards-clock protection, churn
invalidation) through :class:`TopologyBackend`, and are required by the
A/B equivalence suite (``tests/test_net_topology.py``) to agree exactly
on neighbor sets and hop distances.

Snapshot refreshes come in three lanes (``refresh=...``; all are
bit-identical, see ``tests/test_topology_delta.py`` and
``tests/test_topology_kinetic.py``):

* **full** (reference): every refresh recomputes connectivity from
  scratch and flushes every memo, exactly the pre-delta behaviour.
* **delta**: the backend diffs the new positions/down mask against the
  previous snapshot.  Unmoved nodes keep their state; the sparse grid
  re-bins only nodes whose cell changed; and -- when cheap enough to
  prove -- an unchanged adjacency keeps the BFS distance cache and the
  CSR across the refresh.
* **predictive** (kinetic): instead of rediscovering motion by diffing,
  the backend asks the mobility plane *when* state can next change
  (closed-form segment horizons, see
  :meth:`repro.mobility.base.MobilityModel.next_change_horizon`).  A
  refresh before the minimum position-change horizon is a true O(1)
  skip -- no position evaluation, no diff, epoch stands still; past it
  only the nodes whose horizon passed are re-examined (O(movers), not
  O(n)) and only nodes whose *cell-crossing* horizon passed are
  re-binned.  Falls back to the delta lane for mobility sources that do
  not publish horizons.

The delta/predictive proof gate (how many movers an adjacency-
preservation proof is attempted for) self-calibrates: additive increase
on proof success, multiplicative back-off on failure, so sustained
motion stops paying for doomed proofs and quiet workloads keep their
caches warm (``topology.proof_gate`` gauge).

Cache validity is tracked by an **adjacency epoch**
(:attr:`TopologyBackend.adjacency_epoch`): a counter that advances only
when the edge set may actually have changed, never on mere clock
movement.  Consumers that memoize derived graph state should key it on
the epoch instead of ``snapshot_time`` (see DESIGN.md).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Type, Union

import numpy as np

from ..obs.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (world imports us)
    from .world import World

__all__ = [
    "UNREACHABLE",
    "REFRESH_LANES",
    "TopologyBackend",
    "DenseTopology",
    "SparseGridTopology",
    "TOPOLOGY_BACKENDS",
    "make_topology",
    "resolve_refresh_lane",
]

#: Selectable snapshot-refresh lanes, fastest first.
REFRESH_LANES = ("predictive", "delta", "full")


def resolve_refresh_lane(
    refresh: Optional[str], delta: Optional[bool] = None
) -> str:
    """Resolve the lane from the new string knob and the legacy bool.

    ``refresh`` wins when given; otherwise the legacy ``delta`` flag
    maps ``True`` -> ``"delta"`` and ``False`` -> ``"full"`` (its exact
    historical semantics).  With neither, the delta lane is the default
    for directly-constructed backends; scenario configs default to
    ``"predictive"`` (see :mod:`repro.scenarios.config`).
    """
    if refresh is not None:
        if refresh not in REFRESH_LANES:
            known = ", ".join(REFRESH_LANES)
            raise ValueError(f"unknown refresh lane {refresh!r} (known: {known})")
        return refresh
    if delta is None:
        delta = True
    return "delta" if delta else "full"

#: Sentinel hop distance for disconnected pairs.
UNREACHABLE = -1

#: Default bound on memoized per-source distance vectors.
DEFAULT_DIST_CACHE = 256

#: Stable grid-key packing: cell (cx, cy) -> (cx + _KOFF) * _KSTRIDE +
#: (cy + _KOFF).  Unlike a per-snapshot normalization, keys stay
#: comparable across snapshots, which is what lets the delta lane re-bin
#: only the nodes whose cell changed.  Collision-free while every cell
#: coordinate stays within ±(_KOFF - 2) -- at a 10 m radio range that is
#: a deployment area of ~10,000 km per axis.
_KOFF = 1 << 20
_KSTRIDE = 1 << 21


class TopologyBackend(abc.ABC):
    """Snapshot lifecycle + query interface shared by all backends.

    A backend owns the connectivity state derived from one *snapshot* of
    node positions.  Queries transparently refresh the snapshot when it
    is stale; staleness follows the owning world's
    ``snapshot_interval`` (0 means exact per-timestamp snapshots) and a
    backwards-moving clock always forces a rebuild.

    Per-source hop-distance vectors are memoized in an LRU-bounded cache
    (``dist_cache_size``).  The cache is keyed to the **adjacency
    epoch**, not the snapshot timestamp: it is flushed only when a
    refresh may have changed the edge set, so hop distances survive
    refreshes that moved nobody (or, on the delta lane, moved nodes
    without flipping any link).

    Parameters
    ----------
    world:
        The owning :class:`~repro.net.world.World` (positions, radio
        range, down mask, clock).
    dist_cache_size:
        Maximum number of per-source distance vectors kept per snapshot.
    delta:
        Legacy lane selector: ``True`` -> delta lane, ``False`` -> full
        rebuild.  Superseded by ``refresh`` but kept working.
    refresh:
        Refresh lane, one of :data:`REFRESH_LANES`.  ``"predictive"``
        adds the kinetic skip/mover machinery on top of the delta lane;
        ``"full"`` pins the from-scratch reference lane.  When ``None``
        the legacy ``delta`` flag decides.
    """

    #: short identifier used by configuration ("dense" / "sparse")
    name = "abstract"

    def __init__(
        self,
        world: "World",
        *,
        dist_cache_size: int = DEFAULT_DIST_CACHE,
        delta: Optional[bool] = None,
        refresh: Optional[str] = None,
    ) -> None:
        if dist_cache_size < 1:
            raise ValueError(f"dist_cache_size must be >= 1, got {dist_cache_size}")
        self.world = world
        self.dist_cache_size = int(dist_cache_size)
        self.refresh_lane = resolve_refresh_lane(refresh, delta)
        #: legacy view: whether any incremental lane is active
        self.delta = self.refresh_lane != "full"
        #: fraction of nodes that may move per refresh before the delta
        #: lane stops trying to prove the adjacency unchanged (the proof
        #: costs O(moved · degree); past this it almost never succeeds).
        #: Seeds the self-calibrating gate; the controller adapts from
        #: there on measured proof outcomes.
        self.delta_detect_fraction = 0.25
        self._snap_time = -1.0
        self._epoch = 0
        self._dist: "OrderedDict[int, np.ndarray]" = OrderedDict()
        #: down mask of the current snapshot (subclasses refresh it)
        self._down = np.zeros(world.n, dtype=bool)
        # Kinetic state (predictive lane): per-node absolute horizons
        # from the mobility plane.  ``_change_at`` is None when unarmed
        # (non-predictive lanes, no horizon-capable mobility source, or
        # after invalidate()).
        self._change_at: Optional[np.ndarray] = None
        self._min_change = -np.inf
        registry = getattr(world, "registry", None)
        self.registry = registry if registry is not None else Registry()
        labels = {"layer": "topology", "backend": type(self).name}
        self._c_rebuilds = self.registry.counter("topology.rebuilds", **labels)
        self._c_delta = self.registry.counter("topology.delta_rebuilds", **labels)
        self._c_moved = self.registry.counter("topology.moved_nodes", **labels)
        self._c_dist_hits = self.registry.counter("topology.dist_cache_hits", **labels)
        self._c_kinetic = self.registry.counter("topology.kinetic_skips", **labels)
        self._c_kin_refresh = self.registry.counter(
            "topology.kinetic_refreshes", **labels
        )
        self._c_horizon = self.registry.counter(
            "topology.horizon_recomputes", **labels
        )
        self._t_rebuild = self.registry.timer("wall", section="topology.rebuild")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def rebuilds(self) -> int:
        """Snapshots computed (deprecated view of ``topology.rebuilds``)."""
        return self._c_rebuilds.value

    @property
    def delta_rebuilds(self) -> int:
        """Refreshes served by the delta lane (``topology.delta_rebuilds``)."""
        return self._c_delta.value

    @property
    def moved_nodes(self) -> int:
        """Nodes re-examined by delta refreshes (``topology.moved_nodes``)."""
        return self._c_moved.value

    @property
    def dist_cache_hits(self) -> int:
        """Memoized BFS hits (deprecated view of ``topology.dist_cache_hits``)."""
        return self._c_dist_hits.value

    @property
    def kinetic_skips(self) -> int:
        """Refreshes skipped outright by the kinetic horizon gate."""
        return self._c_kinetic.value

    @property
    def kinetic_refreshes(self) -> int:
        """Refreshes served diff-free from mobility horizons."""
        return self._c_kin_refresh.value

    @property
    def horizon_recomputes(self) -> int:
        """Per-node kinetic horizon recomputations performed."""
        return self._c_horizon.value

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "rebuilds": self._c_rebuilds.value,
            "delta_rebuilds": self._c_delta.value,
            "moved_nodes": self._c_moved.value,
            "dist_cache_hits": self._c_dist_hits.value,
            "dist_cache_size": len(self._dist),
            "snapshot_time": self._snap_time,
            "adjacency_epoch": self._epoch,
            "kinetic_skips": self._c_kinetic.value,
            "kinetic_refreshes": self._c_kin_refresh.value,
            "horizon_recomputes": self._c_horizon.value,
        }

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    @property
    def snapshot_time(self) -> float:
        """Time of the current snapshot (-1 when none is valid)."""
        return self._snap_time

    @property
    def adjacency_epoch(self) -> int:
        """Counter advanced whenever the edge set may have changed.

        Consumers memoizing graph-derived state (hop distances, CSR
        views, component labels) must key their caches on this value,
        not on ``snapshot_time``: the epoch stands still across
        refreshes that provably kept the adjacency, so caches survive
        pure clock movement.
        """
        return self._epoch

    def refresh(self) -> None:
        """Rebuild the snapshot if it no longer covers ``sim.now``."""
        t = self.world.sim.now
        stale = (
            self._snap_time < 0.0
            or t < self._snap_time
            or (t - self._snap_time) > self.world.snapshot_interval
        )
        if not stale:
            return
        if (
            self._change_at is not None
            and self._snap_time >= 0.0
            and t > self._snap_time
            and np.array_equal(self.world.down_mask(), self._down)
        ):
            # Kinetic lane: the mobility plane told us when state can
            # next change, so we never touch the full position array.
            if t < self._min_change:
                # Before the min horizon nothing can have moved: the
                # snapshot carries over wholesale at O(1) cost.
                self._snap_time = t
                self._c_kinetic.value += 1
                return
            t0 = perf_counter()
            changed = self._update_kinetic(t)
            self._t_rebuild.add(perf_counter() - t0)
            self._snap_time = t
            self._c_rebuilds.value += 1
            self._c_delta.value += 1
            self._c_kin_refresh.value += 1
            if changed:
                self._epoch += 1
                self._dist.clear()
            return
        pos = self.world.positions()
        down = self.world.down_mask()
        t0 = perf_counter()
        if self.refresh_lane != "full" and self._snap_time >= 0.0:
            changed = self._update(pos, down)
            self._c_delta.value += 1
        else:
            self._rebuild(pos, down)
            changed = True
        self._t_rebuild.add(perf_counter() - t0)
        self._snap_time = t
        self._c_rebuilds.value += 1
        if changed:
            self._epoch += 1
            self._dist.clear()
        if self.refresh_lane == "predictive":
            self._arm_horizons(t)

    def invalidate(self) -> None:
        """Drop the snapshot; the next query recomputes everything.

        Also disarms the kinetic horizons: invalidation signals an
        out-of-band state change (churn death/revival, energy
        depletion) that the mobility plane cannot predict, so the next
        refresh takes the full-rebuild path and re-arms from scratch.
        """
        self._snap_time = -1.0
        self._dist.clear()
        self._epoch += 1
        self._change_at = None
        self._min_change = -np.inf

    def clear_distance_cache(self) -> None:
        """Forget memoized per-source distance vectors (benchmarks)."""
        self._dist.clear()

    @abc.abstractmethod
    def _rebuild(self, pos: np.ndarray, down: np.ndarray) -> None:
        """Recompute connectivity from ``pos`` (n,2), excluding ``down``."""

    def _update(self, pos: np.ndarray, down: np.ndarray) -> bool:
        """Incrementally refresh from the previous snapshot.

        Returns whether the adjacency may have changed (``True`` forces
        an epoch bump and a distance-cache flush).  The base fallback is
        a full rebuild; backends override with a real delta.
        """
        self._rebuild(pos, down)
        return True

    # -- kinetic lane (predictive) -------------------------------------
    def _arm_horizons(self, t: float) -> None:
        """(Re)compute kinetic horizons for every node at time ``t``.

        Requires the owning world's mobility source to publish
        :meth:`~repro.mobility.base.MobilityModel.next_change_horizon`;
        sources that do not (test fakes, trace replayers) leave the
        backend unarmed and the predictive lane degrades to the delta
        lane, which is always correct.
        """
        mobility = getattr(self.world, "mobility", None)
        horizon_fn = getattr(mobility, "next_change_horizon", None)
        if horizon_fn is None:
            self._change_at = None
            self._min_change = -np.inf
            return
        self._change_at = np.asarray(horizon_fn(t), dtype=float)
        self._min_change = float(self._change_at.min())
        self._c_horizon.value += self.world.n

    def _update_kinetic(self, t: float) -> bool:
        """Refresh past the min horizon without an O(n) position diff.

        The base fallback re-evaluates all positions and delegates to
        the delta diff (still bit-identical, no kinetic saving beyond
        the skip gate); the sparse backend overrides with a true
        O(movers) path driven by the per-node horizons.
        """
        changed = self._update(self.world.positions(), self._down)
        self._arm_horizons(t)
        return changed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def neighbors(self, i: int) -> np.ndarray:
        """Ascending node ids within radio range of ``i`` right now."""

    @abc.abstractmethod
    def link(self, i: int, j: int) -> bool:
        """Whether a radio link ``i``--``j`` exists right now."""

    @abc.abstractmethod
    def degrees(self) -> np.ndarray:
        """(n,) int array of radio degrees right now."""

    @abc.abstractmethod
    def adjacency_matrix(self) -> np.ndarray:
        """Boolean (n, n) in-range matrix (may be materialized on demand).

        Kept for analytics and debugging; hot paths must use
        :meth:`link` / :meth:`neighbors` instead, which every backend
        answers without touching an O(n²) structure.
        """

    @abc.abstractmethod
    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, indices)`` of the current snapshot.

        ``indices[indptr[i]:indptr[i+1]]`` are node ``i``'s neighbors in
        ascending order; down nodes have empty rows and appear in no
        row.  This is the zero-copy analytics surface the vectorized
        graph kernels (:mod:`repro.metrics.graphfast`) operate on --
        callers must not mutate the returned arrays and must not hold
        them across refreshes (re-fetch per :attr:`adjacency_epoch`).
        """

    @abc.abstractmethod
    def _bfs(self, src: int) -> np.ndarray:
        """Uncached single-source hop distances on the current snapshot."""

    def hops_from(self, src: int) -> np.ndarray:
        """Hop distance from ``src`` to every node (LRU-memoized BFS)."""
        self.refresh()
        cached = self._dist.get(src)
        if cached is not None:
            self._dist.move_to_end(src)
            self._c_dist_hits.value += 1
            return cached
        dist = self._bfs(src)
        self._dist[src] = dist
        if len(self._dist) > self.dist_cache_size:
            self._dist.popitem(last=False)
        return dist

    def link_count(self) -> int:
        """Number of undirected radio links right now."""
        return int(self.degrees().sum()) // 2

    def hop_distance(self, a: int, b: int) -> int:
        """Hops between ``a`` and ``b`` now; UNREACHABLE if disconnected."""
        return int(self.hops_from(a)[b])

    def reachable(self, a: int, b: int) -> bool:
        """Whether a multi-hop path currently exists between the nodes."""
        return self.hop_distance(a, b) != UNREACHABLE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} n={self.world.n} t={self._snap_time:.3f}>"


class DenseTopology(TopologyBackend):
    """Reference backend: boolean (n, n) matrix + vectorized BFS.

    One O(n²) pairwise-distance pass per snapshot; every query is then a
    matrix row / element.  Sub-millisecond at the paper's n = 50..150
    and the ground truth the sparse backend is checked against.

    The delta lane short-circuits refreshes where nothing moved and
    otherwise compares the freshly built matrix against the previous one
    (O(n²) bool compare, cheap next to the rebuild itself) so an
    unchanged adjacency keeps the distance cache and the epoch.
    """

    name = "dense"

    def __init__(
        self,
        world: "World",
        *,
        dist_cache_size: int = DEFAULT_DIST_CACHE,
        delta: Optional[bool] = None,
        refresh: Optional[str] = None,
    ) -> None:
        super().__init__(
            world, dist_cache_size=dist_cache_size, delta=delta, refresh=refresh
        )
        n = world.n
        self._adj: np.ndarray = np.zeros((n, n), dtype=bool)
        self._down = np.zeros(n, dtype=bool)
        self._pos: Optional[np.ndarray] = None
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _rebuild(self, pos: np.ndarray, down: np.ndarray) -> None:
        diff = pos[:, None, :] - pos[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        adj = d2 <= self.world.radio_range**2
        np.fill_diagonal(adj, False)
        if down.any():
            adj[down, :] = False
            adj[:, down] = False
        self._adj = adj
        self._down = down.copy()
        self._pos = pos.copy()
        self._csr = None

    def _update(self, pos: np.ndarray, down: np.ndarray) -> bool:
        if self._pos is not None and np.array_equal(down, self._down):
            touched = np.flatnonzero((pos != self._pos).any(axis=1))
            if touched.size == 0:
                return False  # nobody moved: snapshot carries over wholesale
            self._c_moved.value += int(touched.size)
        old_adj = self._adj
        self._rebuild(pos, down)
        return not np.array_equal(old_adj, self._adj)

    # -- queries -------------------------------------------------------
    def neighbors(self, i: int) -> np.ndarray:
        self.refresh()
        return np.flatnonzero(self._adj[i])

    def link(self, i: int, j: int) -> bool:
        self.refresh()
        return bool(self._adj[i, j])

    def degrees(self) -> np.ndarray:
        self.refresh()
        return self._adj.sum(axis=1)

    def adjacency_matrix(self) -> np.ndarray:
        self.refresh()
        return self._adj

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        self.refresh()
        if self._csr is None:
            adj = self._adj
            n = adj.shape[0]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(adj.sum(axis=1), out=indptr[1:])
            # Row-major flatnonzero yields each row's columns ascending.
            indices = np.flatnonzero(adj) % n
            self._csr = (indptr, indices.astype(np.int64, copy=False))
        return self._csr

    def _bfs(self, src: int) -> np.ndarray:
        n = self.world.n
        dist = np.full(n, UNREACHABLE, dtype=np.int32)
        if self._down[src]:
            return dist
        adj = self._adj
        dist[src] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[src] = True
        visited = frontier.copy()
        d = 0
        while frontier.any():
            d += 1
            # all nodes adjacent to the frontier, not yet visited
            nxt = adj[frontier].any(axis=0) & ~visited
            if not nxt.any():
                break
            dist[nxt] = d
            visited |= nxt
            frontier = nxt
        return dist


class SparseGridTopology(TopologyBackend):
    """Sparse backend: uniform-grid spatial index + lazy CSR adjacency.

    The deployment area is partitioned into square cells of side
    ``radio_range``; a node's neighbors can then only live in its own
    cell or the 8 surrounding ones, so a neighbor query touches O(k)
    candidates (k = nodes per 9-cell block) regardless of n.

    Per snapshot the backend stores only node->cell assignments and a
    cell->members index (O(n)).  The full CSR adjacency (``indptr`` /
    ``indices``) is built *lazily* -- only when a graph-wide query (BFS,
    degrees) first needs it -- by intersecting each occupied cell with
    its 3x3 neighborhood, vectorized per cell.  Administratively-down
    nodes are excluded from the grid entirely: they neither appear as
    neighbors nor relay.

    On the delta lane a refresh diffs positions against the previous
    snapshot: paused nodes (bitwise-identical positions -- the common
    case under random-waypoint pauses) cost nothing, only nodes whose
    grid cell changed are re-binned, and when few enough nodes moved the
    backend proves whether any link actually flipped (old vs new
    neighbor sets of the movers) to keep the CSR, the per-node neighbor
    memos and the BFS distance cache alive across the refresh.
    """

    name = "sparse"

    def __init__(
        self,
        world: "World",
        *,
        dist_cache_size: int = DEFAULT_DIST_CACHE,
        delta: Optional[bool] = None,
        refresh: Optional[str] = None,
    ) -> None:
        super().__init__(
            world, dist_cache_size=dist_cache_size, delta=delta, refresh=refresh
        )
        n = world.n
        self._pos: np.ndarray = np.empty((n, 2))
        self._down = np.zeros(n, dtype=bool)
        self._cell: np.ndarray = np.zeros((n, 2), dtype=np.int64)
        self._key: np.ndarray = np.zeros(n, dtype=np.int64)
        #: cell key -> np.ndarray of member node ids (up nodes only)
        self._grid: Dict[int, np.ndarray] = {}
        #: lazily-built CSR adjacency (indptr, indices) or None
        self._csr: Tuple[np.ndarray, np.ndarray] | None = None
        #: per-node neighbor memo for the current snapshot
        self._nbr: Dict[int, np.ndarray] = {}
        r = world.radio_range
        self._r2 = r * r
        # Adjacency-proof backoff: consecutive failures grow the skip
        # window exponentially (capped at 64 refreshes), one success
        # resets it -- sustained motion stops paying for doomed proofs.
        self._prove_fail_streak = 0
        self._prove_skip = 0
        # Self-calibrating proof gate (AIMD): the max mover count an
        # adjacency-preservation proof is attempted for.  Seeded from
        # the historical hard-coded bound max(8, 25% of n); a proof
        # success raises it additively (proofs are paying off), a
        # failure halves it (floor 8) so sustained motion converges to
        # near-zero proof spend instead of a fixed 25%-of-n tax.
        self._gate = max(8.0, self.delta_detect_fraction * n)
        self._gate_step = max(1.0, 0.05 * n)
        self.registry.gauge(
            "topology.proof_gate",
            fn=lambda: self._gate,
            layer="topology",
            backend=type(self).name,
        )
        #: per-node cell-crossing horizons (predictive lane), absolute
        #: times; valid alongside ``_change_at``
        self._cross_at: Optional[np.ndarray] = None
        # CSR builds performed (observability: should be << rebuilds
        # for neighbor-only workloads); exposed via the property below.
        self._c_csr_builds = self.registry.counter(
            "topology.csr_builds", layer="topology", backend=type(self).name
        )

    @property
    def csr_builds(self) -> int:
        """CSR adjacency builds (deprecated view of ``topology.csr_builds``)."""
        return self._c_csr_builds.value

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["csr_builds"] = self._c_csr_builds.value
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _cells_of(pos: np.ndarray, r: float) -> np.ndarray:
        cell = np.floor(pos / r).astype(np.int64) + _KOFF
        return cell

    def _rebuild(self, pos: np.ndarray, down: np.ndarray) -> None:
        r = self.world.radio_range
        self._pos = pos.copy()
        self._down = down.copy()
        self._r2 = r * r
        cell = self._cells_of(pos, r)
        if cell.size and (cell.min() < 1 or cell.max() >= _KSTRIDE - 1):
            raise ValueError(
                "node positions exceed the sparse grid's coordinate range "
                f"(±{(_KOFF - 2) * r:.0f} m at radio range {r})"
            )
        self._cell = cell
        keys = cell[:, 0] * _KSTRIDE + cell[:, 1]
        self._key = keys
        up = np.flatnonzero(~down)
        order = up[np.argsort(keys[up], kind="stable")]
        sorted_keys = keys[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, len(order))
        self._grid = {
            int(k): order[s:e] for k, s, e in zip(uniq, bounds[:-1], bounds[1:])
        }
        self._csr = None
        self._nbr = {}

    # -- delta / kinetic refresh ---------------------------------------
    def _update(self, pos: np.ndarray, down: np.ndarray) -> bool:
        if not np.array_equal(down, self._down):
            # Up-set changes normally arrive via invalidate(); if one
            # reaches us directly, the conservative answer is a rebuild.
            self._rebuild(pos, down)
            return True
        touched = np.flatnonzero((pos != self._pos).any(axis=1))
        if touched.size == 0:
            return False  # every node paused: the snapshot carries over
        return self._apply_moves(touched, pos[touched], None)

    def _arm_horizons(self, t: float) -> None:
        super()._arm_horizons(t)
        if self._change_at is None:
            self._cross_at = None
            return
        self._cross_at = np.asarray(
            self.world.mobility.next_change_horizon(
                t, pitch=self.world.radio_range
            ),
            dtype=float,
        )

    def _update_kinetic(self, t: float) -> bool:
        # O(movers): only nodes whose position-change horizon passed can
        # differ from the stored snapshot; everyone else is provably
        # bitwise-unmoved and is never evaluated, diffed or re-binned.
        changed = np.flatnonzero(self._change_at <= t)
        if changed.size == 0:
            return False
        mobility = self.world.mobility
        new_pos = mobility.positions_of(changed, t)
        # Only nodes whose *cell-crossing* horizon also passed can have
        # left their grid cell; the rest move within it.
        crossed = self._cross_at[changed] <= t
        result = self._apply_moves(changed, new_pos, crossed)
        # Re-arm: position horizons for everyone who was re-examined,
        # cell horizons only for potential crossers (the others' cached
        # crossing predictions are absolute times and remain valid).
        self._change_at[changed] = mobility.next_change_horizon(t, ids=changed)
        cross_ids = changed[crossed]
        if cross_ids.size:
            self._cross_at[cross_ids] = mobility.next_change_horizon(
                t, pitch=self.world.radio_range, ids=cross_ids
            )
        self._min_change = float(self._change_at.min())
        self._c_horizon.value += int(changed.size)
        return result

    def _apply_moves(
        self,
        touched: np.ndarray,
        new_pos: np.ndarray,
        crossed: Optional[np.ndarray],
    ) -> bool:
        """Move ``touched`` nodes to ``new_pos`` (their rows, in order).

        ``crossed`` is a boolean mask over ``touched`` restricting which
        nodes may have changed grid cell (kinetic lane, from the
        cell-crossing horizons); ``None`` means any of them may have
        (delta lane).  Returns whether the adjacency may have changed.
        """
        self._c_moved.value += int(touched.size)
        # Decide up front whether proving "no link flipped" can pay off:
        # the proof costs two neighbor computations per mover, and it
        # only preserves anything if a distance cache / CSR exists.
        # Under sustained motion some link flips nearly every refresh,
        # so consecutive failed proofs back the attempt rate off
        # exponentially (capped) and shrink the AIMD gate; successes
        # restore eagerness and widen it.
        movers = touched[~self._down[touched]]
        if self._prove_skip > 0:
            self._prove_skip -= 1
            worth_proving = False
        else:
            worth_proving = (
                self._dist or self._csr is not None
            ) and movers.size <= self._gate
        old_lists = self._mover_neighbor_lists(movers, self._pos) if worth_proving else None

        # Surgical re-bin: only candidate crossers whose cell changed.
        r = self.world.radio_range
        if crossed is None:
            cand = touched
            cand_pos = new_pos
        else:
            cand = touched[crossed]
            cand_pos = new_pos[crossed]
        if cand.size:
            new_cell = self._cells_of(cand_pos, r)
            if new_cell.min() < 1 or new_cell.max() >= _KSTRIDE - 1:
                raise ValueError(
                    "node positions exceed the sparse grid's coordinate range "
                    f"(±{(_KOFF - 2) * r:.0f} m at radio range {r})"
                )
            new_key = new_cell[:, 0] * _KSTRIDE + new_cell[:, 1]
            rebin = new_key != self._key[cand]
            for idx in np.flatnonzero(rebin):
                i = int(cand[idx])
                if self._down[i]:
                    continue  # down nodes are not in the grid
                self._grid_remove(int(self._key[i]), i)
                self._grid_add(int(new_key[idx]), i)
            self._cell[cand] = new_cell
            self._key[cand] = new_key
        self._pos[touched] = new_pos

        if old_lists is not None:
            new_lists = self._mover_neighbor_lists(movers, self._pos)
            if all(
                np.array_equal(a, b) for a, b in zip(old_lists, new_lists)
            ):
                # Links between two movers and mover--pauser links both
                # surface in some mover's list, and pauser--pauser links
                # cannot change: the adjacency is provably intact, so
                # the CSR, neighbor memos and distance cache stay warm.
                self._prove_fail_streak = 0
                self._gate = min(float(self.world.n), self._gate + self._gate_step)
                return False
            self._prove_fail_streak += 1
            self._prove_skip = min(64, 1 << self._prove_fail_streak)
            self._gate = max(8.0, self._gate * 0.5)
        self._csr = None
        self._nbr = {}
        return True

    def _grid_remove(self, key: int, i: int) -> None:
        members = self._grid.get(key)
        if members is None:
            return
        members = members[members != i]
        if members.size:
            self._grid[key] = members
        else:
            del self._grid[key]

    def _grid_add(self, key: int, i: int) -> None:
        members = self._grid.get(key)
        if members is None:
            self._grid[key] = np.array([i], dtype=np.int64)
        else:
            at = int(np.searchsorted(members, i))
            self._grid[key] = np.insert(members, at, i)

    def _mover_neighbor_lists(self, movers: np.ndarray, pos: np.ndarray) -> list:
        """Neighbor sets of ``movers`` under ``pos`` + the current grid.

        Grouped by cell so each 3x3 block is intersected once,
        vectorized -- the same arithmetic as :meth:`neighbors`, so the
        delta lane's adjacency proof uses the query plane's own answers.
        """
        out: list = [None] * len(movers)
        if not len(movers):
            return out
        keys = self._key[movers]
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        bounds = np.append(group_starts, len(movers))
        for s, e in zip(bounds[:-1], bounds[1:]):
            rows = order[s:e]
            members = movers[rows]
            i0 = int(members[0])
            cand = self._cell_block(int(self._cell[i0, 0]), int(self._cell[i0, 1]))
            if not cand.size:
                for row in rows:
                    out[row] = np.empty(0, dtype=np.int64)
                continue
            diff = pos[members][:, None, :] - pos[cand][None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            in_range = d2 <= self._r2
            for local, row in enumerate(rows):
                i = int(members[local])
                hits = cand[in_range[local]]
                out[row] = np.sort(hits[hits != i])
        return out

    def _cell_block(self, cx: int, cy: int) -> np.ndarray:
        """Candidate node ids in the 3x3 cell block around ``(cx, cy)``."""
        chunks = []
        for dx in (-1, 0, 1):
            base = (cx + dx) * _KSTRIDE + cy
            for dy in (-1, 0, 1):
                members = self._grid.get(base + dy)
                if members is not None:
                    chunks.append(members)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # -- queries -------------------------------------------------------
    def neighbors(self, i: int) -> np.ndarray:
        self.refresh()
        cached = self._nbr.get(i)
        if cached is not None:
            return cached
        if self._down[i]:
            result = np.empty(0, dtype=np.int64)
        else:
            cand = self._cell_block(int(self._cell[i, 0]), int(self._cell[i, 1]))
            diff = self._pos[cand] - self._pos[i]
            d2 = np.einsum("ij,ij->i", diff, diff)
            result = np.sort(cand[(d2 <= self._r2) & (cand != i)])
        self._nbr[i] = result
        return result

    def link(self, i: int, j: int) -> bool:
        self.refresh()
        if i == j or self._down[i] or self._down[j]:
            return False
        diff = self._pos[i] - self._pos[j]
        return bool(diff[0] * diff[0] + diff[1] * diff[1] <= self._r2)

    def degrees(self) -> np.ndarray:
        indptr, _ = self._require_csr()
        return np.diff(indptr)

    def adjacency_matrix(self) -> np.ndarray:
        # Materialized on demand for analytics/tests; not a hot path.
        indptr, indices = self._require_csr()
        n = self.world.n
        adj = np.zeros((n, n), dtype=bool)
        rows = np.repeat(np.arange(n), np.diff(indptr))
        adj[rows, indices] = True
        return adj

    # -- CSR adjacency -------------------------------------------------
    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._require_csr()

    def _require_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        self.refresh()
        if self._csr is None:
            self._csr = self._build_csr()
            self._c_csr_builds.value += 1
        return self._csr

    def _build_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Intersect each occupied cell with its 3x3 block, vectorized."""
        n = self.world.n
        nbr_lists: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        empty = np.empty(0, dtype=np.int64)
        for key, members in self._grid.items():
            cx, cy = divmod(key, _KSTRIDE)
            cand = self._cell_block(int(cx), int(cy))
            diff = self._pos[members][:, None, :] - self._pos[cand][None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            in_range = d2 <= self._r2
            for row, i in enumerate(members):
                hits = cand[in_range[row]]
                nbr_lists[i] = np.sort(hits[hits != i])
        counts = np.array(
            [0 if lst is None else len(lst) for lst in nbr_lists], dtype=np.int64
        )
        indptr = np.concatenate(([0], np.cumsum(counts)))
        if int(indptr[-1]) == 0:
            return indptr, empty
        indices = np.concatenate([lst for lst in nbr_lists if lst is not None and len(lst)])
        return indptr, indices

    # -- BFS -----------------------------------------------------------
    def _bfs(self, src: int) -> np.ndarray:
        n = self.world.n
        dist = np.full(n, UNREACHABLE, dtype=np.int32)
        if self._down[src]:
            return dist
        indptr, indices = self._require_csr()
        dist[src] = 0
        frontier = np.array([src], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            chunks = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            cand = np.unique(np.concatenate(chunks)) if chunks else np.empty(0, np.int64)
            nxt = cand[dist[cand] == UNREACHABLE]
            if not nxt.size:
                break
            dist[nxt] = d
            frontier = nxt
        return dist


#: Registry of selectable backends (configuration strings).
TOPOLOGY_BACKENDS: Dict[str, Type[TopologyBackend]] = {
    DenseTopology.name: DenseTopology,
    SparseGridTopology.name: SparseGridTopology,
}


def make_topology(
    spec: Union[str, Type[TopologyBackend]],
    world: "World",
    *,
    dist_cache_size: int = DEFAULT_DIST_CACHE,
    delta: Optional[bool] = None,
    refresh: Optional[str] = None,
) -> TopologyBackend:
    """Instantiate a backend from a config string or a backend class."""
    if isinstance(spec, str):
        try:
            cls = TOPOLOGY_BACKENDS[spec]
        except KeyError:
            known = ", ".join(sorted(TOPOLOGY_BACKENDS))
            raise ValueError(f"unknown topology backend {spec!r} (known: {known})") from None
    elif isinstance(spec, type) and issubclass(spec, TopologyBackend):
        cls = spec
    else:
        raise TypeError(f"topology must be a name or TopologyBackend class, got {spec!r}")
    return cls(world, dist_cache_size=dist_cache_size, delta=delta, refresh=refresh)
