"""The physical world: positions, unit-disk connectivity, hop distances.

This module is the performance-critical substrate.  Every packet
transmission asks "who is in range right now?", and the p2p layer asks
"how many ad-hoc hops separate A and B?" for connection maintenance.
Both are answered from numpy snapshots cached per unique simulation
timestamp:

* ``positions`` -- one vectorized mobility evaluation,
* ``adjacency`` -- one O(n^2) vectorized pairwise-distance pass,
* ``hop distances`` -- one BFS (vectorized frontier expansion over the
  boolean adjacency matrix) per source per timestamp.

With the paper's n = 50..150 these are all sub-millisecond, and the
caching means a broadcast storm touching every node reuses a single
snapshot.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..mobility.base import Area, MobilityModel
from ..sim.kernel import Simulator
from .energy import EnergyModel

__all__ = ["World", "UNREACHABLE"]

#: Sentinel hop distance for disconnected pairs.
UNREACHABLE = -1


class World:
    """Physical layer state shared by all nodes.

    Parameters
    ----------
    sim:
        The discrete-event simulator (the world reads ``sim.now``).
    mobility:
        Mobility model for all ``n`` nodes.
    radio_range:
        Unit-disk communication radius in metres (paper: 10 m).
    energy:
        Optional energy ledger; defaults to an infinite-capacity model.
    snapshot_interval:
        Connectivity snapshots older than this many seconds are
        recomputed; younger ones are reused.  0 (default) means exact
        per-timestamp snapshots.  At the paper's <= 1 m/s speeds a
        0.25 s quantum moves a node <= 0.25 m (2.5 % of the radio
        range), a negligible error that removes the O(n^2) recompute
        from event-burst hot paths.
    """

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        *,
        radio_range: float = 10.0,
        energy: Optional[EnergyModel] = None,
        snapshot_interval: float = 0.0,
    ) -> None:
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if snapshot_interval < 0:
            raise ValueError(f"snapshot_interval must be >= 0, got {snapshot_interval}")
        self.snapshot_interval = float(snapshot_interval)
        self.sim = sim
        self.mobility = mobility
        self.n = mobility.n
        self.radio_range = float(radio_range)
        self.energy = energy if energy is not None else EnergyModel(self.n)
        if self.energy.n != self.n:
            raise ValueError(
                f"energy model sized for {self.energy.n} nodes, world has {self.n}"
            )
        # Per-timestamp caches.
        self._pos_time = -1.0
        self._pos: np.ndarray = np.empty((self.n, 2))
        self._adj_time = -1.0
        self._adj: np.ndarray = np.zeros((self.n, self.n), dtype=bool)
        self._bfs_time = -1.0
        self._bfs: Dict[int, np.ndarray] = {}
        #: nodes administratively removed (churn experiments)
        self._down = np.zeros(self.n, dtype=bool)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """(n,2) positions at the current simulation time (cached)."""
        t = self.sim.now
        if t != self._pos_time:
            self._pos = self.mobility.positions(t)
            self._pos_time = t
        return self._pos

    def adjacency(self) -> np.ndarray:
        """Boolean (n,n) in-range matrix at the current time (cached).

        ``adj[i, j]`` is True iff ``i != j``, both nodes are up, and
        their distance is <= the radio range.
        """
        t = self.sim.now
        stale = (
            self._adj_time < 0.0
            or t < self._adj_time
            or (t - self._adj_time) > self.snapshot_interval
        )
        if stale:
            pos = self.positions()
            diff = pos[:, None, :] - pos[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            adj = d2 <= self.radio_range**2
            np.fill_diagonal(adj, False)
            if self._down.any():
                adj[self._down, :] = False
                adj[:, self._down] = False
            self._adj = adj
            self._adj_time = t
            self._bfs.clear()
            self._bfs_time = t
        return self._adj

    def neighbors(self, i: int) -> np.ndarray:
        """Node ids within radio range of ``i`` right now."""
        return np.flatnonzero(self.adjacency()[i])

    # ------------------------------------------------------------------
    # hop distances (BFS on the snapshot)
    # ------------------------------------------------------------------
    def hops_from(self, src: int) -> np.ndarray:
        """Ad-hoc hop distance from ``src`` to every node (cached BFS).

        Returns an int array; unreachable nodes get :data:`UNREACHABLE`.
        """
        adj = self.adjacency()  # refreshes/clears the BFS cache if stale
        cached = self._bfs.get(src)
        if cached is not None:
            return cached
        dist = np.full(self.n, UNREACHABLE, dtype=np.int32)
        if not self._down[src]:
            dist[src] = 0
            frontier = np.zeros(self.n, dtype=bool)
            frontier[src] = True
            visited = frontier.copy()
            d = 0
            while frontier.any():
                d += 1
                # all nodes adjacent to the frontier, not yet visited
                nxt = adj[frontier].any(axis=0) & ~visited
                if not nxt.any():
                    break
                dist[nxt] = d
                visited |= nxt
                frontier = nxt
        self._bfs[src] = dist
        return dist

    def hop_distance(self, a: int, b: int) -> int:
        """Hops between ``a`` and ``b`` now; UNREACHABLE if disconnected."""
        return int(self.hops_from(a)[b])

    def reachable(self, a: int, b: int) -> bool:
        """Whether a multi-hop path currently exists between the nodes."""
        return self.hop_distance(a, b) != UNREACHABLE

    # ------------------------------------------------------------------
    # churn / energy
    # ------------------------------------------------------------------
    def is_up(self, i: int) -> bool:
        """A node is up if not administratively down and not depleted."""
        return (not bool(self._down[i])) and self.energy.alive(i)

    def set_down(self, i: int, down: bool = True) -> None:
        """Administratively kill (or revive) a node; invalidates caches."""
        self._down[i] = down
        self._adj_time = -1.0  # force recompute

    def check_depletion(self) -> None:
        """Mark energy-depleted nodes as down (call after charging)."""
        dead = self.energy.depleted() & ~self._down
        if dead.any():
            for i in np.flatnonzero(dead):
                self.set_down(int(i))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<World n={self.n} range={self.radio_range} t={self.sim.now:.1f}>"
