"""The physical world: positions, unit-disk connectivity, hop distances.

This module is the performance-critical substrate.  Every packet
transmission asks "who is in range right now?", and the p2p layer asks
"how many ad-hoc hops separate A and B?" for connection maintenance.

:class:`World` owns the *state* -- positions (one vectorized mobility
evaluation per timestamp), the churn/energy down mask, and the snapshot
quantum -- and delegates every connectivity *query* to a pluggable
:mod:`~repro.net.topology` backend:

* ``dense`` (default) -- the reference O(n²) adjacency matrix +
  vectorized BFS; sub-millisecond at the paper's n = 50..150.
* ``sparse`` -- a uniform-grid spatial index with lazily-built CSR
  adjacency; O(n·k) at bounded density, which is what lets scenarios
  scale to thousands of nodes (see ``benchmarks/test_micro_topology.py``).

Consumers must go through the query interface (:meth:`World.link`,
:meth:`World.neighbors`, :meth:`World.hops_from`, ...) rather than
poking an adjacency matrix, so the backend stays swappable.
:meth:`World.adjacency` survives for analytics and tests; the sparse
backend materializes it on demand.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

import numpy as np

from ..mobility.base import Area, MobilityModel
from ..obs.registry import Registry
from ..sim.kernel import Simulator
from .energy import EnergyModel
from .topology import (
    DEFAULT_DIST_CACHE,
    UNREACHABLE,
    TopologyBackend,
    make_topology,
)

__all__ = ["World", "UNREACHABLE"]


class World:
    """Physical layer state shared by all nodes.

    Parameters
    ----------
    sim:
        The discrete-event simulator (the world reads ``sim.now``).
    mobility:
        Mobility model for all ``n`` nodes.
    radio_range:
        Unit-disk communication radius in metres (paper: 10 m).
    energy:
        Optional energy ledger; defaults to an infinite-capacity model.
    snapshot_interval:
        Connectivity snapshots older than this many seconds are
        recomputed; younger ones are reused.  0 (default) means exact
        per-timestamp snapshots.  At the paper's <= 1 m/s speeds a
        0.25 s quantum moves a node <= 0.25 m (2.5 % of the radio
        range), a negligible error that removes the snapshot recompute
        from event-burst hot paths.
    topology:
        Connectivity backend: ``"dense"`` (reference, default),
        ``"sparse"`` (grid-indexed, for large n), or a
        :class:`~repro.net.topology.TopologyBackend` subclass.
    topology_delta:
        Legacy lane selector: ``True`` (default) -> delta lane,
        ``False`` -> full-rebuild reference lane.  Superseded by
        ``topology_refresh`` but kept working.
    topology_refresh:
        Snapshot-refresh lane: ``"predictive"`` (kinetic horizons from
        the mobility plane), ``"delta"`` (position diffing) or
        ``"full"`` (from-scratch reference).  Overrides
        ``topology_delta`` when given.  All lanes are bit-identical
        (``tests/test_topology_delta.py``,
        ``tests/test_topology_kinetic.py``).
    dist_cache_size:
        LRU bound on memoized per-source hop-distance vectors.
    registry:
        Observability registry shared with the topology backend; the
        simulator's registry is used when not supplied.
    """

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        *,
        radio_range: float = 10.0,
        energy: Optional[EnergyModel] = None,
        snapshot_interval: float = 0.0,
        topology: Union[str, Type[TopologyBackend]] = "dense",
        topology_delta: Optional[bool] = None,
        topology_refresh: Optional[str] = None,
        dist_cache_size: int = DEFAULT_DIST_CACHE,
        registry: Optional[Registry] = None,
    ) -> None:
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if snapshot_interval < 0:
            raise ValueError(f"snapshot_interval must be >= 0, got {snapshot_interval}")
        self.snapshot_interval = float(snapshot_interval)
        if registry is None:
            registry = getattr(sim, "registry", None)
        self.registry = registry if registry is not None else Registry()
        self.sim = sim
        self.mobility = mobility
        self.n = mobility.n
        self.radio_range = float(radio_range)
        self.energy = energy if energy is not None else EnergyModel(self.n)
        if self.energy.n != self.n:
            raise ValueError(
                f"energy model sized for {self.energy.n} nodes, world has {self.n}"
            )
        # Per-timestamp position cache.
        self._pos_time = -1.0
        self._pos: np.ndarray = np.empty((self.n, 2))
        #: nodes administratively removed (churn experiments)
        self._down = np.zeros(self.n, dtype=bool)
        #: incremental up-set: ids that are neither down nor depleted.
        #: is_up() is a plain set lookup (no per-call numpy coercion);
        #: set_down() and check_depletion() keep it current.
        self._up_ids: set = set(range(self.n)) - {
            int(i) for i in np.flatnonzero(self.energy.depleted())
        }
        # A charge that drains a node flips is_up immediately (the
        # pre-incremental semantics read the ledger live on every call).
        self.energy.on_depleted = self._up_ids.discard
        #: the pluggable connectivity backend
        self.topology: TopologyBackend = make_topology(
            topology,
            self,
            dist_cache_size=dist_cache_size,
            delta=topology_delta,
            refresh=topology_refresh,
        )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """(n,2) positions at the current simulation time (cached)."""
        t = self.sim.now
        if t != self._pos_time:
            self._pos = self.mobility.positions(t)
            self._pos_time = t
        return self._pos

    def down_mask(self) -> np.ndarray:
        """Boolean (n,) mask of administratively-down nodes (read-only)."""
        return self._down

    def invalidate(self) -> None:
        """Force the topology backend to recompute on the next query."""
        self.topology.invalidate()

    @property
    def adjacency_epoch(self) -> int:
        """Counter advanced whenever the radio edge set may have changed.

        Memoize graph-derived state against this, never against
        timestamps: the epoch stands still across snapshot refreshes
        that provably kept the adjacency (see DESIGN.md).
        """
        return self.topology.adjacency_epoch

    # ------------------------------------------------------------------
    # connectivity queries (delegated to the backend)
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Boolean (n,n) in-range matrix at the current time.

        ``adj[i, j]`` is True iff ``i != j``, both nodes are up, and
        their distance is <= the radio range.  Analytics/debugging
        surface: the sparse backend materializes this on demand, so hot
        paths must use :meth:`link` / :meth:`neighbors` instead.
        """
        return self.topology.adjacency_matrix()

    def csr(self):
        """CSR adjacency ``(indptr, indices)`` of the current snapshot.

        The zero-copy surface the vectorized graph kernels
        (:mod:`repro.metrics.graphfast`) run on; do not mutate, and
        re-fetch whenever :attr:`adjacency_epoch` advances.
        """
        return self.topology.csr()

    def link(self, i: int, j: int) -> bool:
        """Whether a radio link ``i``--``j`` exists right now."""
        return self.topology.link(i, j)

    def neighbors(self, i: int) -> np.ndarray:
        """Node ids within radio range of ``i`` right now (ascending)."""
        return self.topology.neighbors(i)

    def degrees(self) -> np.ndarray:
        """(n,) radio degree of every node right now."""
        return self.topology.degrees()

    def link_count(self) -> int:
        """Number of undirected radio links right now."""
        return self.topology.link_count()

    def hops_from(self, src: int) -> np.ndarray:
        """Ad-hoc hop distance from ``src`` to every node (cached BFS).

        Returns an int array; unreachable nodes get :data:`UNREACHABLE`.
        """
        return self.topology.hops_from(src)

    def hop_distance(self, a: int, b: int) -> int:
        """Hops between ``a`` and ``b`` now; UNREACHABLE if disconnected."""
        return self.topology.hop_distance(a, b)

    def reachable(self, a: int, b: int) -> bool:
        """Whether a multi-hop path currently exists between the nodes."""
        return self.topology.reachable(a, b)

    # ------------------------------------------------------------------
    # churn / energy
    # ------------------------------------------------------------------
    def is_up(self, i: int) -> bool:
        """A node is up if not administratively down and not depleted.

        O(1) set lookup on the incrementally-maintained up-set -- this
        runs once per frame copy, so it must not touch numpy scalars.
        """
        return i in self._up_ids

    def up_ids(self) -> frozenset:
        """The current up-set (ids neither down nor depleted), frozen."""
        return frozenset(self._up_ids)

    def set_down(self, i: int, down: bool = True) -> None:
        """Administratively kill (or revive) a node; invalidates caches."""
        i = int(i)
        self._down[i] = down
        if down:
            self._up_ids.discard(i)
        elif self.energy.alive(i):
            # Revival only brings a node back if its battery isn't drained.
            self._up_ids.add(i)
        self.topology.invalidate()

    def check_depletion(self) -> None:
        """Mark energy-depleted nodes as down (call after charging).

        O(1) when nothing crossed the capacity threshold (always, for
        infinite-capacity runs) and O(changed) otherwise: the energy
        ledger records threshold crossings at charge time and this drains
        them.
        """
        for i in self.energy.poll_depleted():
            if not self._down[i]:
                self.set_down(i)
            else:
                # Already administratively down: just ensure it cannot
                # come back up while depleted.
                self._up_ids.discard(i)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "nodes": self.n,
            "down": int(self._down.sum()),
            "depleted": int(self.energy.depleted().sum()),
            "radio_range": self.radio_range,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<World n={self.n} range={self.radio_range} "
            f"topology={self.topology.name} t={self.sim.now:.1f}>"
        )
