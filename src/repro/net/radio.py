"""Unit-disk radio channel.

The channel is collision-free (see DESIGN.md §4 for why this
substitution preserves the paper's compared effects): a transmission
reaches exactly the nodes within ``radio_range`` of the sender at the
moment of transmission, after a fixed per-hop ``latency``.

Energy is charged per the world's :class:`~repro.net.energy.EnergyModel`
-- once per transmission for the sender and once per delivered copy for
each receiver (broadcasts charge every listener: radios cannot refuse to
hear).  Depleted or administratively-down nodes neither send nor
receive.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs.registry import Registry
from ..sim.kernel import Simulator
from .packet import BROADCAST, Frame
from .world import World

__all__ = ["Channel", "NetNode"]

#: Per-hop propagation + processing latency in seconds.  Small relative
#: to every protocol timer in the paper, but non-zero so event ordering
#: reflects hop counts.
DEFAULT_LATENCY = 0.002


class NetNode:
    """A node's network interface: frame dispatch by ``kind``.

    Protocol layers (AODV, flooding, the p2p overlay) register handlers
    for the frame kinds they own.
    """

    __slots__ = ("nid", "channel", "_handlers")

    def __init__(self, nid: int, channel: "Channel") -> None:
        self.nid = nid
        self.channel = channel
        self._handlers: Dict[str, Callable[[Frame], None]] = {}

    def register(self, kind: str, handler: Callable[[Frame], None]) -> None:
        """Install ``handler`` for frames tagged ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ValueError(f"node {self.nid}: handler for {kind!r} already set")
        self._handlers[kind] = handler

    def on_frame(self, frame: Frame) -> None:
        """Dispatch a delivered frame to its registered handler."""
        handler = self._handlers.get(frame.kind)
        if handler is not None:
            handler(frame)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NetNode {self.nid} kinds={sorted(self._handlers)}>"


class Channel:
    """Delivers frames between in-range nodes with latency and energy cost.

    Parameters
    ----------
    sim, world:
        Kernel and physical world.
    latency:
        Per-hop delivery latency in seconds.
    on_deliver:
        Optional observer called as ``on_deliver(node_id, frame)`` for
        every delivered frame -- the metrics layer hooks in here.
    batched:
        When True (default), a broadcast schedules ONE kernel event
        carrying the frozen receiver list instead of one event per
        receiver; the batch dispatches copies in ascending-nid order, so
        every delivery, energy charge, RNG draw and counter update
        happens in exactly the order the per-receiver reference produces
        (see DESIGN.md §5 for the equivalence argument).  ``False``
        keeps the per-receiver reference path for A/B tests.
    registry:
        Observability registry for the channel counters; a private one
        is created when not supplied.
    """

    #: layer label the channel's metrics carry
    LAYER = "radio"

    def __init__(
        self,
        sim: Simulator,
        world: World,
        *,
        latency: float = DEFAULT_LATENCY,
        on_deliver: Optional[Callable[[int, Frame], None]] = None,
        batched: bool = True,
        registry: Optional[Registry] = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.world = world
        self.latency = float(latency)
        self.on_deliver = on_deliver
        self.batched = bool(batched)
        self.nodes: List[NetNode] = [NetNode(i, self) for i in range(world.n)]
        if registry is None:
            registry = getattr(world, "registry", None)
        self.registry = registry if registry is not None else Registry()
        # Registered counters; the old attribute names survive as
        # read-through properties.
        self._c_sent = self.registry.counter("net.frames_sent", layer=self.LAYER)
        self._c_delivered = self.registry.counter("net.frames_delivered", layer=self.LAYER)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def frames_sent(self) -> int:
        """Frames put on air (deprecated view of ``net.frames_sent``)."""
        return self._c_sent.value

    @property
    def frames_delivered(self) -> int:
        """Frame copies delivered (deprecated view of ``net.frames_delivered``)."""
        return self._c_delivered.value

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "frames_sent": self._c_sent.value,
            "frames_delivered": self._c_delivered.value,
        }

    # ------------------------------------------------------------------
    def unicast(self, frame: Frame) -> bool:
        """Send ``frame`` to its one-hop destination.

        Returns ``True`` if the destination was in range (delivery is
        then scheduled); ``False`` otherwise.  The sender pays the
        transmission cost either way -- the radio does not know in
        advance whether anyone is listening.
        """
        src, dst = frame.src, frame.dst
        if dst == BROADCAST:
            raise ValueError("use broadcast() for broadcast frames")
        if not self.world.is_up(src):
            return False
        self.world.energy.charge_tx(src, frame.size)
        self._c_sent.inc()
        ok = self.world.link(src, dst) and self.world.is_up(dst)
        if ok:
            self.sim.schedule(self.latency, self._deliver, dst, frame)
        self.world.check_depletion()
        return ok

    def broadcast(self, frame: Frame) -> int:
        """Send ``frame`` to every node in range; returns receiver count.

        The receiver set (up neighbors, ascending nid) is frozen at send
        time.  On the batched fast lane the whole set rides ONE kernel
        event (``weight=len(receivers)`` keeps ``events_dispatched``
        comparable); the reference lane schedules one event per receiver.
        Per-copy semantics -- the liveness re-check, energy charge and
        depletion check at delivery time -- are identical on both lanes
        because the batch dispatches through the same :meth:`_deliver`.
        """
        world = self.world
        src = frame.src
        if not world.is_up(src):
            return 0
        world.energy.charge_tx(src, frame.size)
        self._c_sent.inc()
        is_up = world.is_up
        receivers = [dst for dst in map(int, world.neighbors(src)) if is_up(dst)]
        if receivers:
            if self.batched and len(receivers) > 1:
                self.sim.schedule(
                    self.latency,
                    self._deliver_batch,
                    tuple(receivers),
                    frame,
                    weight=len(receivers),
                )
            else:
                schedule = self.sim.schedule
                for dst in receivers:
                    schedule(self.latency, self._deliver, dst, frame)
        world.check_depletion()
        return len(receivers)

    # ------------------------------------------------------------------
    def _deliver_batch(self, receivers: tuple, frame: Frame) -> None:
        # One kernel event, k logical deliveries.  Copies land in
        # ascending-nid order -- the exact order the reference lane's
        # consecutive-seq events dispatch in -- and each copy runs the
        # full per-receiver protocol (liveness re-check, rx charge,
        # depletion check), so a receiver depleting mid-batch silences
        # later copies exactly as it would per-event.
        deliver = self._deliver
        for dst in receivers:
            deliver(dst, frame)

    def _deliver(self, dst: int, frame: Frame) -> None:
        # Re-check liveness at delivery time (node may have died in flight).
        if not self.world.is_up(dst):
            return
        self.world.energy.charge_rx(dst, frame.size)
        self._c_delivered.inc()
        if self.on_deliver is not None:
            self.on_deliver(dst, frame)
        self.nodes[dst].on_frame(frame)
        self.world.check_depletion()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Channel n={len(self.nodes)} sent={self.frames_sent} "
            f"delivered={self.frames_delivered}>"
        )
