"""Per-node energy accounting.

The paper repeatedly motivates its algorithms by the energy cost of
radio traffic ("each message transmitted or received consumes energy,
which is a restrict resource in a mobile ad-hoc network").  We use the
standard linear first-order radio model (Heinzelman-style):

* transmitting ``b`` bytes costs ``tx_fixed + tx_per_byte * b``
* receiving   ``b`` bytes costs ``rx_fixed + rx_per_byte * b``

The absolute constants are not calibrated to specific hardware -- only
*relative* consumption across algorithms matters for the reproduction --
but the defaults are in the right ballpark for early-2000s 802.11 radios
(microjoules per byte).

Nodes may be given a finite ``capacity``; once it is exhausted the node
is *depleted* and the world stops delivering to/from it.  This powers
the churn/lifetime extension experiments (§8 future work).
"""

from __future__ import annotations

import numpy as np

__all__ = ["EnergyModel"]


class EnergyModel:
    """Vectorized energy ledger for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    capacity:
        Initial energy per node in joules; ``float('inf')`` (default)
        disables depletion.
    tx_fixed, tx_per_byte, rx_fixed, rx_per_byte:
        Cost model constants (joules / joules-per-byte).
    """

    def __init__(
        self,
        n: int,
        *,
        capacity: float = float("inf"),
        tx_fixed: float = 50e-6,
        tx_per_byte: float = 4e-6,
        rx_fixed: float = 25e-6,
        rx_per_byte: float = 2e-6,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need n > 0, got {n}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n = int(n)
        self.capacity = float(capacity)
        self.tx_fixed = tx_fixed
        self.tx_per_byte = tx_per_byte
        self.rx_fixed = rx_fixed
        self.rx_per_byte = rx_per_byte
        self.consumed = np.zeros(self.n)
        self.tx_count = np.zeros(self.n, dtype=np.int64)
        self.rx_count = np.zeros(self.n, dtype=np.int64)

    # ------------------------------------------------------------------
    def charge_tx(self, node: int, size: int) -> None:
        """Charge ``node`` for transmitting ``size`` bytes."""
        self.consumed[node] += self.tx_fixed + self.tx_per_byte * size
        self.tx_count[node] += 1

    def charge_rx(self, node: int, size: int) -> None:
        """Charge ``node`` for receiving ``size`` bytes."""
        self.consumed[node] += self.rx_fixed + self.rx_per_byte * size
        self.rx_count[node] += 1

    # ------------------------------------------------------------------
    def remaining(self, node: int) -> float:
        """Energy left for ``node`` (may be ``inf``)."""
        return self.capacity - float(self.consumed[node])

    def depleted(self) -> np.ndarray:
        """Boolean mask of nodes that have run out of energy."""
        return self.consumed >= self.capacity

    def alive(self, node: int) -> bool:
        """Whether ``node`` still has energy to participate."""
        return float(self.consumed[node]) < self.capacity

    def total_consumed(self) -> float:
        """Network-wide consumed energy (joules)."""
        return float(self.consumed.sum())

    def stats(self) -> dict:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "consumed_joules": self.total_consumed(),
            "tx_count": int(self.tx_count.sum()),
            "rx_count": int(self.rx_count.sum()),
            "depleted": int(self.depleted().sum()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EnergyModel n={self.n} total={self.total_consumed():.6f}J "
            f"depleted={int(self.depleted().sum())}>"
        )
