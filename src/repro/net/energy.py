"""Per-node energy accounting.

The paper repeatedly motivates its algorithms by the energy cost of
radio traffic ("each message transmitted or received consumes energy,
which is a restrict resource in a mobile ad-hoc network").  We use the
standard linear first-order radio model (Heinzelman-style):

* transmitting ``b`` bytes costs ``tx_fixed + tx_per_byte * b``
* receiving   ``b`` bytes costs ``rx_fixed + rx_per_byte * b``

The absolute constants are not calibrated to specific hardware -- only
*relative* consumption across algorithms matters for the reproduction --
but the defaults are in the right ballpark for early-2000s 802.11 radios
(microjoules per byte).

Nodes may be given a finite ``capacity``; once it is exhausted the node
is *depleted* and the world stops delivering to/from it.  This powers
the churn/lifetime extension experiments (§8 future work).

Hot-path contract
-----------------
Liveness queries run once per frame copy, so they must not touch numpy
scalars.  The ledger detects capacity crossings *at charge time* and
maintains a plain-Python set of depleted node ids: :meth:`alive` is a
set lookup, and :meth:`poll_depleted` hands the world only the nodes
that crossed since the last poll -- a no-op for infinite-capacity runs
and O(changed) otherwise.  ``consumed`` must therefore only be mutated
through ``charge_tx`` / ``charge_rx`` (or followed by :meth:`resync`).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["EnergyModel"]


class EnergyModel:
    """Vectorized energy ledger for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    capacity:
        Initial energy per node in joules; ``float('inf')`` (default)
        disables depletion.
    tx_fixed, tx_per_byte, rx_fixed, rx_per_byte:
        Cost model constants (joules / joules-per-byte).
    """

    def __init__(
        self,
        n: int,
        *,
        capacity: float = float("inf"),
        tx_fixed: float = 50e-6,
        tx_per_byte: float = 4e-6,
        rx_fixed: float = 25e-6,
        rx_per_byte: float = 2e-6,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need n > 0, got {n}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n = int(n)
        self.capacity = float(capacity)
        self.tx_fixed = tx_fixed
        self.tx_per_byte = tx_per_byte
        self.rx_fixed = rx_fixed
        self.rx_per_byte = rx_per_byte
        self.consumed = np.zeros(self.n)
        self.tx_count = np.zeros(self.n, dtype=np.int64)
        self.rx_count = np.zeros(self.n, dtype=np.int64)
        #: whether depletion can happen at all (skips every threshold check)
        self.finite = math.isfinite(self.capacity)
        # Incremental depletion state: ids that crossed the threshold,
        # and the subset not yet handed out by poll_depleted().
        self._depleted_ids: set = set()
        self._newly_depleted: List[int] = []
        #: immediate threshold-crossing hook (the world points this at
        #: its up-set so ``is_up`` flips the instant a charge drains a
        #: node, matching the pre-incremental live-read semantics)
        self.on_depleted: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    def charge_tx(self, node: int, size: int) -> None:
        """Charge ``node`` for transmitting ``size`` bytes."""
        self.consumed[node] += self.tx_fixed + self.tx_per_byte * size
        self.tx_count[node] += 1
        if self.finite and self.consumed[node] >= self.capacity:
            self._mark_depleted(node)

    def charge_rx(self, node: int, size: int) -> None:
        """Charge ``node`` for receiving ``size`` bytes."""
        self.consumed[node] += self.rx_fixed + self.rx_per_byte * size
        self.rx_count[node] += 1
        if self.finite and self.consumed[node] >= self.capacity:
            self._mark_depleted(node)

    def _mark_depleted(self, node: int) -> None:
        node = int(node)
        if node not in self._depleted_ids:
            self._depleted_ids.add(node)
            self._newly_depleted.append(node)
            if self.on_depleted is not None:
                self.on_depleted(node)

    # ------------------------------------------------------------------
    def poll_depleted(self) -> Tuple[int, ...]:
        """Nodes that crossed the capacity threshold since the last poll.

        O(1) when nothing changed (the common case, and always for
        infinite capacity); O(changed) otherwise.  The world drains this
        after charging to keep its up-set current.
        """
        if not self._newly_depleted:
            return ()
        out = tuple(self._newly_depleted)
        self._newly_depleted.clear()
        return out

    def resync(self) -> Tuple[int, ...]:
        """Rebuild the depletion set from ``consumed`` (after bulk edits).

        Returns the newly discovered depleted nodes; they are also
        queued for the next :meth:`poll_depleted`.
        """
        if not self.finite:
            return ()
        found = [
            int(i)
            for i in np.flatnonzero(self.consumed >= self.capacity)
            if int(i) not in self._depleted_ids
        ]
        for i in found:
            self._mark_depleted(i)
        return tuple(found)

    # ------------------------------------------------------------------
    def remaining(self, node: int) -> float:
        """Energy left for ``node`` (may be ``inf``)."""
        return self.capacity - float(self.consumed[node])

    def depleted(self) -> np.ndarray:
        """Boolean mask of nodes that have run out of energy."""
        return self.consumed >= self.capacity

    def alive(self, node: int) -> bool:
        """Whether ``node`` still has energy to participate.

        O(1): no numpy scalar coercion -- a flag check for infinite
        capacity, a set lookup otherwise.
        """
        return not self.finite or node not in self._depleted_ids

    def total_consumed(self) -> float:
        """Network-wide consumed energy (joules)."""
        return float(self.consumed.sum())

    def stats(self) -> dict:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        return {
            "consumed_joules": self.total_consumed(),
            "tx_count": int(self.tx_count.sum()),
            "rx_count": int(self.rx_count.sum()),
            "depleted": int(self.depleted().sum()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EnergyModel n={self.n} total={self.total_consumed():.6f}J "
            f"depleted={int(self.depleted().sum())}>"
        )
