"""Link-layer frames.

A :class:`Frame` is what actually crosses the (simulated) air between
two radios that are in range of each other.  Higher layers (AODV
control, AODV-routed data, flooded discovery messages) put their own
message objects in ``payload`` and tag the frame with a ``kind`` so
receivers can dispatch without isinstance chains.

Sizes are in bytes and only matter for the energy model; they default to
a small control-message size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Frame", "BROADCAST", "DEFAULT_FRAME_BYTES"]

#: Pseudo-address for 1-hop broadcast frames.
BROADCAST = -1

#: Default frame size (bytes) used for control traffic.
DEFAULT_FRAME_BYTES = 64

_uid = itertools.count()


@dataclass(slots=True)
class Frame:
    """One link-layer transmission.

    Attributes
    ----------
    src:
        Transmitting node id.
    dst:
        Receiving node id, or :data:`BROADCAST`.
    kind:
        Dispatch tag, e.g. ``"aodv"``, ``"data"``, ``"flood"``.
    payload:
        Upper-layer message object.
    size:
        Bytes on air (energy accounting).
    uid:
        Globally unique frame id (diagnostics).
    """

    src: int
    dst: int
    kind: str
    payload: Any
    size: int = DEFAULT_FRAME_BYTES
    uid: int = field(default_factory=lambda: next(_uid))
