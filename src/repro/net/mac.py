"""Contention MAC: airtime, carrier sensing and receiver-side collisions.

DESIGN.md §4 substitutes the paper's ns-2 802.11 stack with a
collision-free channel and argues the compared effects survive.  This
module lets the repository *measure* that argument instead of asserting
it: :class:`CsmaChannel` is a drop-in Channel replacement where

* every frame occupies airtime (``preamble + size / bitrate``);
* transmitters carrier-sense: if any neighbour is mid-transmission, the
  frame is deferred by a random backoff (up to ``max_backoff_slots``
  slots) and retried, up to ``max_retries`` times, then dropped;
* receivers experience collisions: two transmissions overlapping in
  time at a receiver destroy each other's copy at that receiver
  (capture-less model).

The `abl_mac` bench runs the paper's workload on both channels and
checks the figure orderings survive contention.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from .packet import BROADCAST, Frame
from .radio import Channel
from .world import World

__all__ = ["CsmaChannel"]


class CsmaChannel(Channel):
    """Channel with airtime, carrier sensing, backoff and collisions.

    Parameters
    ----------
    bitrate:
        Link speed in bits/s (default 1 Mb/s, early-802.11 ballpark).
    preamble:
        Fixed per-frame overhead in seconds.
    slot:
        Backoff slot length in seconds.
    max_backoff_slots / max_retries:
        Contention window and retry budget before dropping.
    seed:
        Backoff randomness (deterministic).

    MAC counters (``net.collisions``, ``net.backoffs``,
    ``net.drops_contention``, ``net.airtime_seconds`` histogram) carry
    ``layer="csma"``; the old attribute names remain as read-through
    properties.
    """

    LAYER = "csma"

    def __init__(
        self,
        sim: Simulator,
        world: World,
        *,
        bitrate: float = 1e6,
        preamble: float = 192e-6,
        slot: float = 20e-6,
        max_backoff_slots: int = 31,
        max_retries: int = 4,
        seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(sim, world, **kwargs)
        if bitrate <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate}")
        self.bitrate = float(bitrate)
        self.preamble = float(preamble)
        self.slot = float(slot)
        self.max_backoff_slots = int(max_backoff_slots)
        self.max_retries = int(max_retries)
        import numpy as np

        self._rng = np.random.default_rng(seed)
        #: node -> end time of its current transmission (air busy)
        self._tx_until: Dict[int, float] = {}
        #: receiver -> list of (start, end, frame, src) arrivals in flight
        self._arrivals: Dict[int, List[Tuple[float, float, Frame]]] = {}
        self._c_collisions = self.registry.counter("net.collisions", layer=self.LAYER)
        self._c_backoffs = self.registry.counter("net.backoffs", layer=self.LAYER)
        self._c_drops = self.registry.counter("net.drops_contention", layer=self.LAYER)
        self._h_airtime = self.registry.histogram("net.airtime_seconds", layer=self.LAYER)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def collisions(self) -> int:
        """Receiver-side collisions (deprecated view of ``net.collisions``)."""
        return self._c_collisions.value

    @property
    def backoffs(self) -> int:
        """Carrier-sense backoffs (deprecated view of ``net.backoffs``)."""
        return self._c_backoffs.value

    @property
    def drops_contention(self) -> int:
        """Frames dropped after retry exhaustion (deprecated view)."""
        return self._c_drops.value

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out.update(
            collisions=self._c_collisions.value,
            backoffs=self._c_backoffs.value,
            drops_contention=self._c_drops.value,
        )
        return out

    # ------------------------------------------------------------------
    def airtime(self, frame: Frame) -> float:
        """Seconds the frame occupies the channel."""
        return self.preamble + (frame.size * 8.0) / self.bitrate

    def _channel_busy(self, node: int) -> bool:
        """Carrier sense: any in-range transmitter currently on air?"""
        now = self.sim.now
        for other, until in self._tx_until.items():
            if until > now and other != node and self.world.link(node, other):
                return True
        return False

    # ------------------------------------------------------------------
    # public API (mirrors Channel)
    # ------------------------------------------------------------------
    def unicast(self, frame: Frame) -> bool:
        if frame.dst == BROADCAST:
            raise ValueError("use broadcast() for broadcast frames")
        if not self.world.is_up(frame.src):
            return False
        in_range = self.world.link(frame.src, frame.dst) and self.world.is_up(frame.dst)
        self._try_send(frame, attempt=0)
        # Like the base channel, report reachability at send time; the
        # MAC may still destroy the copy (upper layers use timeouts).
        return in_range

    def broadcast(self, frame: Frame) -> int:
        if not self.world.is_up(frame.src):
            return 0
        receivers = [int(d) for d in self.world.neighbors(frame.src) if self.world.is_up(int(d))]
        self._try_send(frame, attempt=0)
        return len(receivers)

    # ------------------------------------------------------------------
    # MAC machinery
    # ------------------------------------------------------------------
    def _try_send(self, frame: Frame, attempt: int) -> None:
        if not self.world.is_up(frame.src):
            return
        if self._channel_busy(frame.src):
            if attempt >= self.max_retries:
                self._c_drops.inc()
                return
            self._c_backoffs.inc()
            backoff = (1 + int(self._rng.integers(self.max_backoff_slots))) * self.slot
            self.sim.schedule(backoff, self._try_send, frame, attempt + 1)
            return
        self._transmit(frame)

    def _transmit(self, frame: Frame) -> None:
        now = self.sim.now
        duration = self.airtime(frame)
        end = now + duration
        self._tx_until[frame.src] = end
        self._h_airtime.observe(duration)
        self.world.energy.charge_tx(frame.src, frame.size)
        self._c_sent.inc()
        is_up = self.world.is_up
        if frame.dst == BROADCAST:
            receivers = [d for d in map(int, self.world.neighbors(frame.src)) if is_up(d)]
        else:
            receivers = (
                [frame.dst]
                if self.world.link(frame.src, frame.dst) and is_up(frame.dst)
                else []
            )
        # All copies of one transmission complete at the same instant, so
        # the surviving registrations can share ONE completion event
        # (ascending-nid order == the reference's consecutive-seq order).
        registered = [
            dst for dst in receivers if self._register_arrival(dst, now, end, frame)
        ]
        if registered:
            if self.batched and len(registered) > 1:
                self.sim.schedule(
                    end - now,
                    self._complete_arrivals,
                    tuple(registered),
                    now,
                    end,
                    weight=len(registered),
                )
            else:
                for dst in registered:
                    self.sim.schedule(end - now, self._complete_arrival, dst, now, end)

    def _register_arrival(self, dst: int, start: float, end: float, frame: Frame) -> bool:
        """Record an in-flight copy; returns False if it collided."""
        queue = self._arrivals.setdefault(dst, [])
        # Receiver-side collision: overlap with any in-flight arrival
        # destroys both copies (no capture).
        for i, (s, e, other) in enumerate(queue):
            if s < end and start < e and e > self.sim.now:
                queue[i] = (s, e, None)  # poison the other copy
                self._c_collisions.inc()
                return False  # this copy dies too (not registered)
        queue.append((start, end, frame))
        return True

    def _complete_arrivals(self, dsts: tuple, start: float, end: float) -> None:
        for dst in dsts:
            self._complete_arrival(dst, start, end)

    def _complete_arrival(self, dst: int, start: float, end: float) -> None:
        queue = self._arrivals.get(dst, [])
        for i, (s, e, frame) in enumerate(queue):
            if s == start and e == end:
                queue.pop(i)
                if frame is not None:
                    self._deliver(dst, frame)
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CsmaChannel sent={self.frames_sent} delivered={self.frames_delivered} "
            f"collisions={self.collisions} backoffs={self.backoffs}>"
        )
