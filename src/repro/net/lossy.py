"""Lossy radio: probabilistic reception near the range edge.

The unit-disk model (reception iff distance <= range) is the standard
MANET abstraction but real radios degrade gradually.  The smooth-disk
refinement keeps reception certain inside a solid core and decays the
delivery probability linearly toward the range edge:

    p(d) = 1                                  for d <= solid * range
    p(d) = 1 - (1 - edge_p) * (d - s) / (r - s)   for s < d <= range

Per-copy losses are drawn from a dedicated deterministic stream, so
runs remain reproducible.  Use ``ScenarioConfig(mac="lossy")`` to put a
whole scenario on it; upper layers need no changes (they already treat
every message as droppable).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.kernel import Simulator
from .packet import BROADCAST, Frame
from .radio import Channel
from .world import World

__all__ = ["LossyChannel"]


class LossyChannel(Channel):
    """Channel with distance-dependent reception probability.

    Metrics carry ``layer="lossy"``.

    Parameters
    ----------
    solid:
        Fraction of the radio range with guaranteed reception.
    edge_p:
        Delivery probability exactly at the range edge.
    seed:
        Loss-draw randomness (deterministic).
    """

    LAYER = "lossy"

    def __init__(
        self,
        sim: Simulator,
        world: World,
        *,
        solid: float = 0.8,
        edge_p: float = 0.3,
        seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(sim, world, **kwargs)
        if not 0 < solid <= 1:
            raise ValueError(f"solid must be in (0, 1], got {solid}")
        if not 0 <= edge_p <= 1:
            raise ValueError(f"edge_p must be in [0, 1], got {edge_p}")
        self.solid = float(solid)
        self.edge_p = float(edge_p)
        self._rng = np.random.default_rng(seed)
        self._c_losses = self.registry.counter("net.losses", layer=self.LAYER)

    @property
    def losses(self) -> int:
        """Copies lost to the range-edge draw (deprecated view of ``net.losses``)."""
        return self._c_losses.value

    def stats(self):
        out = super().stats()
        out["losses"] = self._c_losses.value
        return out

    # ------------------------------------------------------------------
    def delivery_probability(self, src: int, dst: int) -> float:
        """p(reception) for the current positions of src and dst."""
        pos = self.world.positions()
        d = float(np.hypot(*(pos[dst] - pos[src])))
        r = self.world.radio_range
        s = self.solid * r
        if d <= s:
            return 1.0
        if d > r:
            return 0.0
        return 1.0 - (1.0 - self.edge_p) * (d - s) / (r - s)

    def _accept(self, src: int, dst: int) -> bool:
        p = self.delivery_probability(src, dst)
        if p >= 1.0:
            return True
        if self._rng.random() < p:
            return True
        self._c_losses.inc()
        return False

    # ------------------------------------------------------------------
    def unicast(self, frame: Frame) -> bool:
        if frame.dst == BROADCAST:
            raise ValueError("use broadcast() for broadcast frames")
        if not self.world.is_up(frame.src):
            return False
        self.world.energy.charge_tx(frame.src, frame.size)
        self._c_sent.inc()
        ok = (
            self.world.link(frame.src, frame.dst)
            and self.world.is_up(frame.dst)
            and self._accept(frame.src, frame.dst)
        )
        if ok:
            self.sim.schedule(self.latency, self._deliver, frame.dst, frame)
        self.world.check_depletion()
        return ok

    def broadcast(self, frame: Frame) -> int:
        # Loss draws happen at SEND time in ascending-nid order on both
        # lanes, so the RNG stream is consumed identically whether the
        # surviving receiver set then rides one batch event or one event
        # per copy.
        world = self.world
        src = frame.src
        if not world.is_up(src):
            return 0
        world.energy.charge_tx(src, frame.size)
        self._c_sent.inc()
        receivers = [
            dst
            for dst in map(int, world.neighbors(src))
            if world.is_up(dst) and self._accept(src, dst)
        ]
        if receivers:
            if self.batched and len(receivers) > 1:
                self.sim.schedule(
                    self.latency,
                    self._deliver_batch,
                    tuple(receivers),
                    frame,
                    weight=len(receivers),
                )
            else:
                for dst in receivers:
                    self.sim.schedule(self.latency, self._deliver, dst, frame)
        world.check_depletion()
        return len(receivers)
