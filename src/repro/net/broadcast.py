"""Controlled multi-hop broadcast (TTL-limited flooding with dedup).

The paper's authors patched ns-2's AODV with "a controlled broadcast
function such that each node has a cache to keep track of the broadcast
messages received.  This mechanism avoids forwarding the same message
several times."  This module is that mechanism: every flooded message
carries a globally unique ``(origin, seq)`` id; each node forwards a
given id at most once, and forwarding stops when the hop budget is
spent.

Upper layers (p2p discovery, AODV RREQ) use a :class:`FloodManager`
per node and receive deliveries through a callback that also reports the
hop count the copy travelled -- which is how peers learn their ad-hoc
distance to a discovered neighbour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.registry import Registry
from .packet import DEFAULT_FRAME_BYTES, Frame
from .radio import Channel, NetNode
from .suppression import RebroadcastPolicy

__all__ = ["FloodMessage", "FloodManager"]

FloodId = Tuple[int, int]

#: Default bound on remembered flood ids per node.  A flood id only
#: matters while copies of that flood are still in flight (a handful of
#: hop latencies), so the cache needs to cover the set of *active*
#: floods, not the full history of a 3600 s run.  The default is sized
#: generously above any burst the paper's workloads produce.
DEFAULT_SEEN_LIMIT = 4096


@dataclass(slots=True)
class FloodMessage:
    """Envelope for a flooded payload.

    Attributes
    ----------
    fid:
        Unique flood id ``(origin, seq)``.
    origin:
        Originating node.
    hops:
        Hops travelled by THIS copy (0 when leaving the origin).
    budget:
        Remaining hop budget; a node only re-broadcasts if, after
        incrementing ``hops``, budget remains.
    payload:
        Upper-layer message.
    """

    fid: FloodId
    origin: int
    hops: int
    budget: int
    payload: Any


class FloodManager:
    """Per-node controlled-broadcast agent.

    Parameters
    ----------
    node:
        The owning network node.
    channel:
        The radio channel.
    kind:
        Frame kind to claim; lets several independent flood planes
        coexist (e.g. ``"p2p.flood"`` vs ``"aodv.rreq"``).
    deliver:
        Callback ``deliver(origin, payload, hops)`` invoked exactly once
        per flood id heard (first copy wins, matching the dedup cache).
    count_duplicate:
        Optional callback invoked for each suppressed duplicate copy
        (metrics; the radio energy was already charged by the channel).
    seen_limit:
        Bound on the dedup cache: the oldest flood ids are evicted FIFO
        once more than this many are remembered, so long runs hold
        O(active floods) ids instead of growing without limit.
    registry:
        Observability registry; counters are labeled
        ``plane=<kind>, node=<nid>``.  Defaults to the channel's
        registry, so a whole simulation's flood planes aggregate in one
        place.
    policy:
        Optional :class:`~repro.net.suppression.RebroadcastPolicy`
        deciding whether/when a first copy is re-broadcast.  ``None``
        (and any policy whose ``reference`` flag is set) keeps the
        historical always-forward fast path, operation for operation.
    """

    def __init__(
        self,
        node: NetNode,
        channel: Channel,
        kind: str,
        deliver: Optional[Callable[[int, Any, int], None]] = None,
        count_duplicate: Optional[Callable[[int, Any], None]] = None,
        *,
        seen_limit: int = DEFAULT_SEEN_LIMIT,
        registry: Optional[Registry] = None,
        policy: Optional[RebroadcastPolicy] = None,
    ) -> None:
        if seen_limit < 1:
            raise ValueError(f"seen_limit must be >= 1, got {seen_limit}")
        self.node = node
        self.channel = channel
        self.kind = kind
        self.deliver = deliver
        self.count_duplicate = count_duplicate
        self.seen_limit = int(seen_limit)
        self._seq = 0
        self._inserts = 0
        # FIFO dedup cache: insertion-ordered ids, oldest evicted first.
        self._seen: "OrderedDict[FloodId, None]" = OrderedDict()
        #: the configured policy (introspection); ``_policy`` is the hot
        #: path view with reference policies folded to None so the flood
        #: lane pays no indirection.
        self.policy = policy
        self._policy = None if policy is None or policy.reference else policy
        if registry is None:
            registry = getattr(channel, "registry", None)
        self.registry = registry if registry is not None else Registry()
        labels = {"plane": kind, "node": node.nid}
        self._c_evictions = self.registry.counter("flood.evictions", **labels)
        self._c_originated = self.registry.counter("flood.originated", **labels)
        self._c_forwarded = self.registry.counter("flood.forwarded", **labels)
        self._c_duplicates = self.registry.counter("flood.duplicates", **labels)
        # Live cache-pressure views: fill fraction of the dedup cache and
        # the fraction of remembered ids that have been evicted so far.
        self.registry.gauge(
            "flood.cache_occupancy", fn=self._occupancy, **labels
        )
        self.registry.gauge(
            "flood.eviction_rate", fn=self._eviction_rate, **labels
        )
        node.register(kind, self._on_frame)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def evictions(self) -> int:
        """Dedup-cache evictions (deprecated view of ``flood.evictions``)."""
        return self._c_evictions.value

    def _occupancy(self) -> float:
        """Dedup-cache fill fraction (0..1 of ``seen_limit``)."""
        return len(self._seen) / self.seen_limit

    def _eviction_rate(self) -> float:
        """Fraction of remembered flood ids evicted before they aged out."""
        if self._inserts == 0:
            return 0.0
        return self._c_evictions.value / self._inserts

    def stats(self) -> Dict[str, float]:
        """Uniform counter snapshot (see the ``stats()`` protocol)."""
        out = {
            "evictions": self._c_evictions.value,
            "originated": self._c_originated.value,
            "forwarded": self._c_forwarded.value,
            "duplicates": self._c_duplicates.value,
            "cache_size": len(self._seen),
            "cache_occupancy": self._occupancy(),
            "eviction_rate": self._eviction_rate(),
        }
        if self.policy is not None:
            for k, v in self.policy.stats().items():
                out[f"policy_{k}"] = v
        return out

    def _remember(self, fid: FloodId) -> None:
        self._inserts += 1
        self._seen[fid] = None
        if len(self._seen) > self.seen_limit:
            self._seen.popitem(last=False)
            self._c_evictions.inc()

    # ------------------------------------------------------------------
    def originate(self, payload: Any, nhops: int, size: int = DEFAULT_FRAME_BYTES) -> FloodId:
        """Flood ``payload`` to every node within ``nhops`` ad-hoc hops.

        Returns the flood id.  ``nhops`` must be >= 1 (a 0-hop flood
        reaches nobody and is rejected to catch caller bugs).
        """
        if nhops < 1:
            raise ValueError(f"nhops must be >= 1, got {nhops}")
        fid = (self.node.nid, self._seq)
        self._seq += 1
        self._c_originated.inc()
        self._remember(fid)  # the origin never re-forwards its own flood
        msg = FloodMessage(fid=fid, origin=self.node.nid, hops=0, budget=int(nhops), payload=payload)
        self.channel.broadcast(
            Frame(src=self.node.nid, dst=-1, kind=self.kind, payload=msg, size=size)
        )
        return fid

    # ------------------------------------------------------------------
    def _transmit(self, frame: Frame) -> None:
        """Count and broadcast one (possibly policy-delayed) forward."""
        self._c_forwarded.inc()
        self.channel.broadcast(frame)

    def _on_frame(self, frame: Frame) -> None:
        msg: FloodMessage = frame.payload
        if msg.fid in self._seen:
            self._c_duplicates.inc()
            if self._policy is not None:
                self._policy.duplicate(msg.fid)
            if self.count_duplicate is not None:
                self.count_duplicate(msg.origin, msg.payload)
            return
        self._remember(msg.fid)
        hops_here = msg.hops + 1
        if self._policy is not None:
            self._policy.overhear(msg.origin, hops_here)
        if self.deliver is not None:
            self.deliver(msg.origin, msg.payload, hops_here)
        remaining = msg.budget - 1
        if remaining > 0:
            fwd = FloodMessage(
                fid=msg.fid,
                origin=msg.origin,
                hops=hops_here,
                budget=remaining,
                payload=msg.payload,
            )
            out = Frame(
                src=self.node.nid, dst=-1, kind=self.kind, payload=fwd, size=frame.size
            )
            if self._policy is None:
                self._transmit(out)
            else:
                self._policy.forward(msg.fid, lambda: self._transmit(out))

    # ------------------------------------------------------------------
    def reset_cache(self) -> None:
        """Forget seen flood ids (tests / very long runs)."""
        self._seen.clear()

    @property
    def cache_size(self) -> int:
        """Number of flood ids remembered by the dedup cache."""
        return len(self._seen)
