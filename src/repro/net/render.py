"""ASCII rendering of the physical world and overlay.

A debugging aid in the spirit of nam (ns-2's animator), minus the GUI:
draw node positions on a character grid, optionally marking p2p members,
masters, or any labelling the caller wants, plus a link summary.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .world import World

__all__ = ["render_world", "render_overlay_summary"]


def render_world(
    world: World,
    *,
    width: int = 60,
    height: int = 24,
    label: Optional[Callable[[int], str]] = None,
) -> str:
    """Draw the current node positions on a character grid.

    ``label(i)`` returns a single character for node ``i`` (default:
    last digit of the id; down nodes render as ``x``).  Nodes sharing a
    cell render as ``+``.
    """
    pos = world.positions()
    area_w = world.mobility.area.width
    area_h = world.mobility.area.height
    grid = [[" "] * width for _ in range(height)]
    for i in range(world.n):
        cx = int(pos[i, 0] / area_w * (width - 1))
        cy = int(pos[i, 1] / area_h * (height - 1))
        row = height - 1 - cy  # y grows upward
        ch = "x" if not world.is_up(i) else (label(i) if label else str(i % 10))
        grid[row][cx] = "+" if grid[row][cx] != " " else ch[0]
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    stats = (
        f"{world.n} nodes, {world.link_count()} radio links, "
        f"range {world.radio_range:g} m, t={world.sim.now:.1f}s"
    )
    return f"{border}\n{body}\n{border}\n{stats}"


def render_overlay_summary(overlay) -> str:
    """One line per member: connections and role (for Hybrid)."""
    from ..core.algorithms import HybridAlgorithm

    lines = []
    for nid, servent in sorted(overlay.servents.items()):
        alg = servent.algorithm
        extra = ""
        if isinstance(alg, HybridAlgorithm):
            extra = f" [{alg.state.value}"
            if alg.slaves.count:
                extra += f", {alg.slaves.count} slaves"
            extra += "]"
        peers = ",".join(str(p) for p in servent.connections.peers()) or "-"
        lines.append(f"  node {nid:3d}: -> {peers}{extra}")
    return "\n".join(lines)
